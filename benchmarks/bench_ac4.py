"""Benchmark: AC-4 support counting vs the interval AC-3 worklist.

The ROADMAP pain case for the AC-3 worklist is label-free transitive queries
(``Child+`` / ``Following``, no label atoms, so every domain starts as the
whole tree) over large random trees: whenever the constraint graph makes
domains interact -- ``Following`` chains, and especially cyclic combinations
of ``Child+`` and ``Following`` -- the worklist needs many revise passes, and
every pass re-scans both whole domains and rebuilds their sorted views.  The
AC-4 engine (:mod:`repro.evaluation.ac4`) pays one support-counting
initialisation and then only deletion-driven decrements, so its total work is
bounded by the number of (pair, support) relationships actually broken.

Two query groups are measured:

* ``pain_*`` -- the slow-convergence shapes above.  The committed headline
  (``min_speedup``) is the minimum AC-4 speedup over this group and must meet
  the >= 5x acceptance bar; in practice the cyclic shapes come in at 100-400x.
* ``ablation_*`` -- shapes where the AC-3 worklist already converges in a few
  passes (pure ``Child+`` chains).  There the bulk set-comprehension scans of
  AC-3 are competitive and AC-4's per-deletion bookkeeping can even lose
  ground (~0.7-1x); the entries are reported to keep the trade-off honest,
  and are excluded from the headline.

Every instance also measures the ``hybrid`` propagator (one bulk AC-3 revise
sweep, then AC-4 support counting on the shrunken domains); its job is to
close the ablation gap while keeping the pain-case wins, reported in the
``ablation_hybrid`` section.

Run standalone (``python benchmarks/bench_ac4.py``) to regenerate
``BENCH_ac4.json``; fixpoint equality of the two engines is asserted on every
measured instance, and against the Horn-SAT baseline on the smoke sizes.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import pytest
from bench_config import SMOKE, scaled

from repro.evaluation import (
    maximal_arc_consistent,
    maximal_arc_consistent_ac4,
    maximal_arc_consistent_horn,
    maximal_arc_consistent_hybrid,
)
from repro.queries import parse_query
from repro.trees import TreeStructure, random_tree

SIZES = scaled((1_000, 10_000), (300, 1_000))


def _chain(axis: str, length: int) -> str:
    return "Q <- " + ", ".join(f"{axis}(x{i}, x{i + 1})" for i in range(length))


#: Label-free transitive queries on which the AC-3 worklist converges slowly.
PAIN_QUERIES = {
    "pain_following_chain8": _chain("Following", 8),
    "pain_diamond": (
        "Q <- Child+(x, y), Child+(x, z), Following(y, z), Child+(y, w), Child+(z, w)"
    ),
    "pain_wedge": "Q <- Child+(x, z), Following(y, z), Child+(y, w), Following(z, w)",
    "pain_following_cycle": "Q <- Following(x, y), Following(y, z), Following(z, x)",
}

#: Fast-converging shapes kept to report where AC-3 remains competitive.
ABLATION_QUERIES = {
    "ablation_childplus_chain6": _chain("Child+", 6),
    "ablation_childplus_chain12": _chain("Child+", 12),
    "ablation_mix_chain": (
        "Q <- Child+(a, b), Following(b, c), Child+(c, d), Following(d, e)"
    ),
}

QUERIES = {**PAIN_QUERIES, **ABLATION_QUERIES}


def _tree(size: int):
    return random_tree(size, alphabet=(), seed=42)


def _median_time(function, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def _as_sets(domains):
    return None if domains is None else {v: set(nodes) for v, nodes in domains.items()}


def run(sizes=SIZES, repeats: int = 3) -> dict:
    """Measure both propagators on every (size, query) combination."""
    results = []
    for size in sizes:
        tree = _tree(size)
        structure = TreeStructure(tree)
        structure.index  # the O(n) index build is shared and paid up front
        for name, text in QUERIES.items():
            query = parse_query(text)
            ac3_domains = maximal_arc_consistent(query, structure)
            ac4_domains = maximal_arc_consistent_ac4(query, structure)
            hybrid_domains = maximal_arc_consistent_hybrid(query, structure)
            if _as_sets(ac3_domains) != _as_sets(ac4_domains):
                raise AssertionError(f"AC-3/AC-4 fixpoint mismatch on {name} (n={size})")
            if _as_sets(ac3_domains) != _as_sets(hybrid_domains):
                raise AssertionError(
                    f"AC-3/hybrid fixpoint mismatch on {name} (n={size})"
                )
            if size <= 1_000:
                horn_domains = maximal_arc_consistent_horn(query, structure)
                if _as_sets(ac3_domains) != _as_sets(horn_domains):
                    raise AssertionError(f"Horn fixpoint mismatch on {name} (n={size})")
            ac3 = _median_time(lambda: maximal_arc_consistent(query, structure), repeats)
            ac4 = _median_time(
                lambda: maximal_arc_consistent_ac4(query, structure), repeats
            )
            hybrid = _median_time(
                lambda: maximal_arc_consistent_hybrid(query, structure), repeats
            )
            results.append(
                {
                    "tree_size": size,
                    "query": name,
                    "pain_case": name in PAIN_QUERIES,
                    "ac3_seconds": ac3,
                    "ac4_seconds": ac4,
                    "hybrid_seconds": hybrid,
                    "speedup": ac3 / ac4 if ac4 > 0 else float("inf"),
                    "hybrid_speedup": ac3 / hybrid if hybrid > 0 else float("inf"),
                    "empty_fixpoint": ac3_domains is None,
                }
            )
            print(
                f"n={size:>6} {name:<26} ac3={ac3:.4f}s ac4={ac4:.4f}s "
                f"hybrid={hybrid:.4f}s speedup={results[-1]['speedup']:.1f}x "
                f"hybrid_speedup={results[-1]['hybrid_speedup']:.1f}x"
            )
    largest = max(sizes)
    headline = min(
        entry["speedup"]
        for entry in results
        if entry["tree_size"] == largest and entry["pain_case"]
    )
    ablation_at_largest = [
        entry
        for entry in results
        if entry["tree_size"] == largest and not entry["pain_case"]
    ]
    return {
        "benchmark": "arc consistency: AC-4 support counting vs interval AC-3 worklist",
        "sizes": list(sizes),
        "repeats": repeats,
        "results": results,
        "headline": {
            "tree_size": largest,
            "min_speedup": headline,
            "claim": (
                "AC-4 >= 5x faster than interval AC-3 on label-free "
                "slow-convergence transitive queries"
            ),
            "holds": headline >= 5.0,
        },
        # The ROADMAP gap: AC-4 loses to AC-3's bulk scans on fast-converging
        # pure Child+ chains; the hybrid's opening bulk sweep should keep it
        # at parity there while preserving AC-4's pain-case wins.
        "ablation_hybrid": {
            "tree_size": largest,
            "min_ac4_speedup": min(e["speedup"] for e in ablation_at_largest),
            "min_hybrid_speedup": min(e["hybrid_speedup"] for e in ablation_at_largest),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_ac4.json", help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {args.out}; headline min pain-case speedup on "
        f"n={report['headline']['tree_size']}: {report['headline']['min_speedup']:.1f}x"
    )
    if not report["headline"]["holds"]:
        print("FAIL: the >=5x speedup claim does not hold at these sizes")
        return 1
    return 0


# -- pytest-benchmark cases ----------------------------------------------------

SMALLEST = min(SIZES)
BENCH_TREE = _tree(SMALLEST)


@pytest.mark.parametrize("name", sorted(PAIN_QUERIES))
def test_ac4_pain_queries(benchmark, name):
    query = parse_query(PAIN_QUERIES[name])
    structure = TreeStructure(BENCH_TREE)
    benchmark(lambda: maximal_arc_consistent_ac4(query, structure))


@pytest.mark.parametrize("name", sorted(PAIN_QUERIES) if not SMOKE else sorted(PAIN_QUERIES)[:1])
def test_ac3_pain_queries(benchmark, name):
    query = parse_query(PAIN_QUERIES[name])
    structure = TreeStructure(BENCH_TREE)
    benchmark(lambda: maximal_arc_consistent(query, structure))


def test_ac4_speedup_meets_claim():
    """A relaxed wall-clock guard against losing the speedup entirely.

    The real >=5x claim is enforced by ``main`` (run by CI's bench-smoke job);
    this pytest variant uses a 2x margin at the smallest size so it stays
    robust on loaded machines, while still catching a regression that makes
    AC-4 no faster than the AC-3 worklist on its pain cases.
    """
    structure = TreeStructure(BENCH_TREE)
    query = parse_query(PAIN_QUERIES["pain_wedge"])
    ac3 = _median_time(lambda: maximal_arc_consistent(query, structure), 3)
    ac4 = _median_time(lambda: maximal_arc_consistent_ac4(query, structure), 3)
    assert ac3 >= 2.0 * ac4


if __name__ == "__main__":
    raise SystemExit(main())
