"""Benchmark: columnar axis kernels vs the per-candidate bisection paths.

The interval index answers "does candidate ``u`` still have a support in
domain ``S``?" either per candidate (a bisection probe per watched node, the
``columnar=False`` ablation) or in bulk: one staircase merge over the sorted
rank columns answers the question for *every* watched node in a single pass
of C-level ``array`` traversals (:mod:`repro.trees.columnar`).  The AC-3
worklist re-asks that question on every revise pass, so slow-convergence
shapes multiply whatever the per-pass primitive costs.

Two entry groups are measured, both as ``columnar=True`` vs the
``columnar=False`` per-candidate ablation of the *same* fixpoint:

* ``pain_*`` -- label-free ``Following`` chains, the worst revise-pass
  multipliers for the AC-3 worklist.  The committed headline
  (``min_speedup``) is the minimum columnar speedup over this group at the
  largest size and must meet the >= 5x acceptance bar.
* ``ablation_*`` -- entries kept to report where the columnar kernels win
  less, excluded from the headline: mixed ``Child+`` / ``Following`` chains
  (~3-5x), pure ``Child+`` chains (~2-3x), the hybrid propagator (~2x), and
  bag materialization through the decomposition engine, where the bulk tail
  emission trims constant factors only (~1-1.5x).  The former
  ``ablation_ac4_init`` entry measured at parity by design (AC-4's
  ``Following`` trackers are threshold-based in both modes) and was retired
  along with the columnar counter-init path itself.

Byte-identity between the two modes is asserted on every measured instance,
and the SQLite accel-table backend (:mod:`repro.backends.sqlite`) is
cross-checked against both on a fixed small document.

Run standalone (``python benchmarks/bench_columnar.py``) to regenerate
``BENCH_columnar.json``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import pytest
from bench_config import SMOKE, scaled

from repro.decomposition.yannakakis import evaluate_answers
from repro.evaluation import (
    maximal_arc_consistent,
    maximal_arc_consistent_hybrid,
)
from repro.queries import parse_query
from repro.trees import TreeStructure, random_tree

# The 5_000 size is shared between the full and smoke grids on purpose:
# check_regression.py matches entries on (query, tree_size), so the smoke run
# needs at least one size present in the committed full-size baseline.
SIZES = scaled((5_000, 100_000), (2_000, 5_000))

#: Node count of the fixed labeled document used for the SQLite cross-check.
CROSSCHECK_SIZE = scaled(5_000, 1_000)


def _chain(axis: str, length: int) -> str:
    return "Q <- " + ", ".join(f"{axis}(x{i}, x{i + 1})" for i in range(length))


#: Label-free Following chains: many revise passes, every pass re-scans whole
#: domains, so the per-pass staircase merge vs bisection gap compounds.
PAIN_QUERIES = {
    "pain_following_chain8": _chain("Following", 8),
    "pain_following_chain12": _chain("Following", 12),
}

#: AC-3 shapes where the worklist converges quickly, so fewer passes amortise
#: the columnar win; reported honestly, excluded from the headline.
ABLATION_AC3_QUERIES = {
    "ablation_mix_chain5": (
        "Q <- Child+(a, b), Following(b, c), Child+(c, d), Following(d, e), Child+(e, f)"
    ),
    "ablation_childplus_chain6": _chain("Child+", 6),
}

AC3_QUERIES = {**PAIN_QUERIES, **ABLATION_AC3_QUERIES}

#: The query whose AC-4 init / hybrid sweep is measured in both modes.
PROPAGATOR_ABLATION_QUERY = "pain_following_chain8"

#: Acyclic k-ary query driving the bag-materialization ablation: the last bag
#: variable carries no residual checks, so the columnar path emits each
#: head-prefix's tail slice in bulk.
BAG_QUERY = "Q(x, y) <- A(x), Child+(x, y), B(y)"


def _tree(size: int):
    return random_tree(size, alphabet=(), seed=42)


def _labeled_tree(size: int):
    return random_tree(size, alphabet=("A", "B", "C"), seed=42)


def _median_time(function, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def _as_sets(domains):
    return None if domains is None else {v: set(nodes) for v, nodes in domains.items()}


def _entry(size, name, kind, pain, slow, fast):
    entry = {
        "tree_size": size,
        "query": name,
        "kind": kind,
        "pain_case": pain,
        "per_candidate_seconds": slow,
        "columnar_seconds": fast,
        "speedup": slow / fast if fast > 0 else float("inf"),
    }
    print(
        f"n={size:>6} {name:<28} {kind:<12} per_candidate={slow:.4f}s "
        f"columnar={fast:.4f}s speedup={entry['speedup']:.1f}x"
    )
    return entry


def _measure_fixpoint(fixpoint, query, structure, repeats):
    """Byte-identity check plus median timings for one fixpoint, both modes."""
    fast_domains = fixpoint(query, structure, columnar=True)
    slow_domains = fixpoint(query, structure, columnar=False)
    if _as_sets(fast_domains) != _as_sets(slow_domains):
        raise AssertionError(f"columnar/per-candidate fixpoint mismatch: {query}")
    fast = _median_time(lambda: fixpoint(query, structure, columnar=True), repeats)
    slow = _median_time(lambda: fixpoint(query, structure, columnar=False), repeats)
    return slow, fast


def _crosscheck_sqlite(size: int) -> int:
    """Columnar, per-candidate and SQLite answers agree on a fixed document."""
    from repro.backends.sqlite import SQLiteBackend

    tree = _labeled_tree(size)
    structure = TreeStructure(tree)
    query = parse_query(BAG_QUERY)
    columnar = sorted(evaluate_answers(query, structure, columnar=True))
    per_candidate = sorted(evaluate_answers(query, structure, columnar=False))
    with SQLiteBackend() as backend:
        backend.register_tree("doc", tree)
        sql = sorted(backend.evaluate("doc", query))
    if not (repr(columnar) == repr(per_candidate) == repr(sql)):
        raise AssertionError("cross-backend answer mismatch on the bag query")
    return len(columnar)


def run(sizes=SIZES, repeats: int = 3) -> dict:
    """Measure columnar vs per-candidate paths on every (size, entry) pair."""
    results = []
    for size in sizes:
        structure = TreeStructure(_tree(size))
        structure.index  # the O(n) index build is shared and paid up front
        for name, text in AC3_QUERIES.items():
            query = parse_query(text)
            slow, fast = _measure_fixpoint(
                maximal_arc_consistent, query, structure, repeats
            )
            results.append(
                _entry(size, name, "ac3_worklist", name in PAIN_QUERIES, slow, fast)
            )
        # Hybrid on the chain shape: the ablation that shows where the
        # columnar flag changes less (its AC-4 stage's Following trackers are
        # threshold-based in both modes; the retired ac4_init entry measured
        # at parity by design and is no longer carried).
        query = parse_query(AC3_QUERIES[PROPAGATOR_ABLATION_QUERY])
        slow, fast = _measure_fixpoint(
            maximal_arc_consistent_hybrid, query, structure, repeats
        )
        results.append(_entry(size, "ablation_hybrid", "hybrid", False, slow, fast))
        # Bag materialization through the decomposition engine on a labeled
        # tree: identical row sets, bulk tail emission vs per-row recursion.
        labeled = TreeStructure(_labeled_tree(size))
        labeled.index
        bag_query = parse_query(BAG_QUERY)
        fast_rows = evaluate_answers(bag_query, labeled, columnar=True)
        slow_rows = evaluate_answers(bag_query, labeled, columnar=False)
        if repr(sorted(fast_rows)) != repr(sorted(slow_rows)):
            raise AssertionError(f"bag materialization mismatch (n={size})")
        fast = _median_time(
            lambda: evaluate_answers(bag_query, labeled, columnar=True), repeats
        )
        slow = _median_time(
            lambda: evaluate_answers(bag_query, labeled, columnar=False), repeats
        )
        entry = _entry(size, "ablation_pair_bag", "bag_rows", False, slow, fast)
        entry["rows"] = len(fast_rows)
        results.append(entry)
    crosscheck_rows = _crosscheck_sqlite(CROSSCHECK_SIZE)
    print(f"sqlite cross-check: {crosscheck_rows} rows byte-identical at n={CROSSCHECK_SIZE}")
    largest = max(sizes)
    headline = min(
        entry["speedup"]
        for entry in results
        if entry["tree_size"] == largest and entry["pain_case"]
    )
    ablation_at_largest = [
        entry
        for entry in results
        if entry["tree_size"] == largest and not entry["pain_case"]
    ]
    return {
        "benchmark": "columnar axis kernels vs per-candidate bisection paths",
        "sizes": list(sizes),
        "repeats": repeats,
        "results": results,
        "headline": {
            "tree_size": largest,
            "min_speedup": headline,
            "claim": (
                "columnar AC-3 worklist >= 5x faster than the per-candidate "
                "bisection path on label-free Following chains"
            ),
            "holds": headline >= 5.0,
        },
        # Where the kernels do NOT dominate, kept honest and out of the
        # headline: AC-4 init is parity by design, bag emission trims
        # constant factors only.
        "ablation": {
            "tree_size": largest,
            "min_speedup": min(e["speedup"] for e in ablation_at_largest),
            "max_speedup": max(e["speedup"] for e in ablation_at_largest),
        },
        "sqlite_crosscheck": {
            "tree_size": CROSSCHECK_SIZE,
            "rows": crosscheck_rows,
            "byte_identical": True,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_columnar.json", help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {args.out}; headline min pain-case speedup on "
        f"n={report['headline']['tree_size']}: {report['headline']['min_speedup']:.1f}x"
    )
    if not report["headline"]["holds"]:
        print("FAIL: the >=5x speedup claim does not hold at these sizes")
        return 1
    return 0


# -- pytest-benchmark cases ----------------------------------------------------

SMALLEST = min(SIZES)
BENCH_TREE = _tree(SMALLEST)


@pytest.mark.parametrize("name", sorted(PAIN_QUERIES))
def test_columnar_pain_queries(benchmark, name):
    query = parse_query(PAIN_QUERIES[name])
    structure = TreeStructure(BENCH_TREE)
    benchmark(lambda: maximal_arc_consistent(query, structure, columnar=True))


@pytest.mark.parametrize(
    "name", sorted(PAIN_QUERIES)[:1] if SMOKE else sorted(PAIN_QUERIES)
)
def test_per_candidate_pain_queries(benchmark, name):
    query = parse_query(PAIN_QUERIES[name])
    structure = TreeStructure(BENCH_TREE)
    benchmark(lambda: maximal_arc_consistent(query, structure, columnar=False))


def test_cross_backend_byte_identity_smoke():
    """The three backends agree on the bag query on a small fixed document."""
    assert _crosscheck_sqlite(1_000) > 0


def test_columnar_speedup_meets_claim():
    """A relaxed wall-clock guard against losing the speedup entirely.

    The real >=5x claim is enforced by ``main`` (run by CI's bench-smoke job
    and gated by ``check_regression.py`` against the committed baseline);
    this pytest variant uses a 2x margin at the smallest size so it stays
    robust on loaded machines, while still catching a regression that makes
    the columnar worklist no faster than the per-candidate path.
    """
    structure = TreeStructure(BENCH_TREE)
    query = parse_query(PAIN_QUERIES["pain_following_chain8"])
    fast = _median_time(lambda: maximal_arc_consistent(query, structure, columnar=True), 3)
    slow = _median_time(lambda: maximal_arc_consistent(query, structure, columnar=False), 3)
    assert slow >= 2.0 * fast


if __name__ == "__main__":
    raise SystemExit(main())
