"""Shared benchmark configuration: full runs vs CI smoke runs.

Every ``bench_*.py`` file sizes its instances through :func:`scaled`, which
returns the first argument normally and the second when the environment
variable ``BENCH_SMOKE`` is set to a non-empty value other than ``0``.  CI
runs the whole suite in smoke mode (seconds per file) and uploads the
resulting ``BENCH_*.json`` files as artifacts, so the performance trajectory
accumulates without paying for full-size runs on every push.

Importing this module also makes ``src/`` importable, so the bench files work
both under pytest (where ``conftest.py`` already fixes the path) and as plain
scripts.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: True when running in CI smoke mode (BENCH_SMOKE=1).
SMOKE: bool = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def scaled(full, smoke):
    """Pick the full-size or smoke-size variant of a benchmark parameter."""
    return smoke if SMOKE else full
