"""Benchmark: decomposition (Yannakakis) engine vs the backtracking fallback.

Until this subsystem existed, the planner sent *every* cyclic query over an
NP-hard signature to backtracking -- for k-ary answer enumeration that means
one pinned Boolean evaluation (a full propagation fixpoint plus search) per
candidate head tuple.  The decomposition engine instead materializes the bags
of a width-2 tree decomposition from the AC fixpoint domains (projected onto
the join-tree columns, interval-index driven), runs the bottom-up/top-down
semijoin passes and reads all answers off one join-tree traversal:
polynomial, and one propagation fixpoint *total* instead of one per
candidate.

Two query groups over random 16-label trees:

* ``pain_*`` (the headline set) -- satisfiable width-2 cyclic queries over
  NP-hard signatures ({Child+, Following} and {Child+, NextSibling+}):
  triangles, fused double triangles, sibling triangles.  The committed
  headline is the *minimum* decomposition speedup over this group at the
  largest size and must meet the >= 5x acceptance bar; measured 188x-598x
  at 10k nodes since union-of-ranges bag pruning (the wedge-follow shape
  is the committed minimum).
* ``ablation_*`` -- shapes kept to report where the win shrinks, excluded
  from the headline: the four-cycle (its decomposition has a mid-bag local
  existential, once genuinely quadratic in the subtree sizes at ~4.5x; the
  union-of-ranges window merge lifted it to ~39x) and an AC-refutable
  unsatisfiable diamond (arc consistency already empties the domains, so
  both engines terminate immediately, ~1x).

Answer sets are cross-checked byte-identical (as sorted lists) between the
two engines on every measured instance -- across *all four* propagators at
the smaller sizes, and with the default AC-4 propagator at every size (the
backtracking side is too slow to re-measure four times at 10k).

Run standalone (``python benchmarks/bench_decomposition.py``) to regenerate
``BENCH_decomposition.json``; ``BENCH_SMOKE=1`` shrinks the sizes for CI.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import pytest
from bench_config import SMOKE, scaled

from repro.evaluation import Engine, choose_engine, compile_query, evaluate
from repro.queries import parse_query
from repro.trees import TreeStructure, random_tree

SIZES = scaled((1_000, 10_000), (300, 1_000))

#: Labels are deliberately plentiful (16): head candidates stay in the
#: hundreds at 10k nodes, which is exactly the regime where backtracking's
#: per-candidate pinned evaluations hurt, while the existential variables
#: remain label-free (whole-tree domains).
LABELS = tuple(f"L{i:02d}" for i in range(16))

#: Satisfiable width-2 cyclic queries over NP-hard signatures (the headline).
PAIN_QUERIES = {
    "pain_triangle": "Q(x) <- L00(x), Child+(x, y), Child+(x, z), Following(y, z)",
    "pain_double_triangle": (
        "Q(x) <- L01(x), Child+(x, y), Child+(x, z), Following(y, z), "
        "Child+(z, u), Child+(x, u)"
    ),
    "pain_sibling_triangle": (
        "Q(x) <- L04(x), Child+(x, y), Child+(x, z), NextSibling+(y, z)"
    ),
    "pain_wedge_follow": (
        "Q(x) <- L05(x), Child+(x, y), Following(y, z), Child+(x, z), "
        "Following(z, w), Child+(x, w)"
    ),
}

#: Reported but excluded from the headline (see the module docstring).
ABLATION_QUERIES = {
    "ablation_four_cycle": (
        "Q(x) <- L02(x), Child+(x, y), Child+(x, z), Following(y, w), Child+(z, w)"
    ),
    "ablation_unsat_diamond": (
        "Q(x) <- L03(x), Child+(x, y), Child+(x, z), Following(y, z), "
        "Child+(y, w), Child+(z, w)"
    ),
}

QUERIES = {**PAIN_QUERIES, **ABLATION_QUERIES}

#: Sizes up to which the byte-identity cross-check runs on every propagator
#: (including the Horn-SAT ground truth); above it AC-4 alone is re-checked.
FULL_CROSSCHECK_LIMIT = 1_000


def _tree(size: int):
    return random_tree(size, alphabet=LABELS, seed=42)


def _median_time(function, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def _crosscheck(query, structure, size: int) -> None:
    propagators = (
        ("ac4", "ac3", "horn", "hybrid") if size <= FULL_CROSSCHECK_LIMIT else ("ac4",)
    )
    for propagator in propagators:
        decomposition_answers = sorted(
            evaluate(query, structure, engine=Engine.DECOMPOSITION, propagator=propagator)
        )
        backtracking_answers = sorted(
            evaluate(query, structure, engine=Engine.BACKTRACKING, propagator=propagator)
        )
        if repr(decomposition_answers) != repr(backtracking_answers):
            raise AssertionError(
                f"answer mismatch on {query.name} (n={size}, propagator={propagator})"
            )


def run(sizes=SIZES, repeats: int = 2) -> dict:
    """Measure both engines on every (size, query) combination."""
    results = []
    for size in sizes:
        tree = _tree(size)
        structure = TreeStructure(tree)
        structure.index  # the O(n) index build is shared and paid up front
        for name, text in QUERIES.items():
            query = parse_query(text).with_name(name)
            compiled = compile_query(query)
            # The planner must actually route these shapes to the new engine.
            assert choose_engine(query) is Engine.DECOMPOSITION, name
            assert compiled.decomposition.width == 2, name
            _crosscheck(query, structure, size)
            decomposition_seconds = _median_time(
                lambda: evaluate(query, structure, engine=Engine.DECOMPOSITION),
                repeats,
            )
            backtracking_seconds = _median_time(
                lambda: evaluate(query, structure, engine=Engine.BACKTRACKING),
                repeats,
            )
            answers = len(evaluate(query, structure, engine=Engine.DECOMPOSITION))
            results.append(
                {
                    "tree_size": size,
                    "query": name,
                    "pain_case": name in PAIN_QUERIES,
                    "width": compiled.decomposition.width,
                    "answers": answers,
                    "backtracking_seconds": backtracking_seconds,
                    "decomposition_seconds": decomposition_seconds,
                    "speedup": (
                        backtracking_seconds / decomposition_seconds
                        if decomposition_seconds > 0
                        else float("inf")
                    ),
                }
            )
            print(
                f"n={size:>6} {name:<26} dec={decomposition_seconds:.4f}s "
                f"bt={backtracking_seconds:.4f}s "
                f"speedup={results[-1]['speedup']:.1f}x answers={answers}"
            )
    largest = max(sizes)
    headline = min(
        entry["speedup"]
        for entry in results
        if entry["tree_size"] == largest and entry["pain_case"]
    )
    ablation_at_largest = [
        entry
        for entry in results
        if entry["tree_size"] == largest and not entry["pain_case"]
    ]
    return {
        "benchmark": (
            "cyclic width-2 queries: decomposition (Yannakakis) engine vs the "
            "planner's backtracking fallback"
        ),
        "sizes": list(sizes),
        "repeats": repeats,
        "labels": len(LABELS),
        "results": results,
        "headline": {
            "tree_size": largest,
            "min_speedup": headline,
            "claim": (
                "decomposition >= 5x faster than the backtracking fallback on "
                "satisfiable width-2 cyclic queries over NP-hard signatures"
            ),
            "holds": headline >= 5.0,
        },
        "ablation": {
            "tree_size": largest,
            "min_speedup": min(e["speedup"] for e in ablation_at_largest),
            "note": (
                "four-cycle: a mid-bag local existential forces a genuinely "
                "quadratic bag relation; unsat diamond: arc consistency "
                "refutes it before either engine starts"
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_decomposition.json", help="output JSON path")
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {args.out}; headline min pain-case speedup on "
        f"n={report['headline']['tree_size']}: {report['headline']['min_speedup']:.1f}x"
    )
    if not report["headline"]["holds"]:
        if SMOKE:
            # The win grows with tree size (backtracking pays one fixpoint per
            # head candidate, the decomposition engine one in total), so the
            # smoke grid cannot support the full-size claim; the committed
            # BENCH_decomposition.json asserts it at 10k nodes, and
            # check_regression.py guards the smoke-size speedups entry-wise.
            print(
                "NOTE: smoke sizes -- the >=5x claim is asserted at the "
                "committed full size, not here"
            )
            return 0
        print("FAIL: the >=5x speedup claim does not hold at these sizes")
        return 1
    return 0


# -- pytest-benchmark cases ----------------------------------------------------

SMALLEST = min(SIZES)
BENCH_TREE = _tree(SMALLEST)


@pytest.mark.parametrize("name", sorted(PAIN_QUERIES))
def test_decomposition_pain_queries(benchmark, name):
    query = parse_query(PAIN_QUERIES[name])
    structure = TreeStructure(BENCH_TREE)
    benchmark(lambda: evaluate(query, structure, engine=Engine.DECOMPOSITION))


@pytest.mark.parametrize(
    "name", sorted(PAIN_QUERIES) if not SMOKE else sorted(PAIN_QUERIES)[:1]
)
def test_backtracking_pain_queries(benchmark, name):
    query = parse_query(PAIN_QUERIES[name])
    structure = TreeStructure(BENCH_TREE)
    benchmark(lambda: evaluate(query, structure, engine=Engine.BACKTRACKING))


def test_decomposition_speedup_meets_claim():
    """A relaxed wall-clock guard against losing the speedup entirely.

    The real >=5x claim is enforced by ``main`` (run by CI's bench-smoke job);
    this pytest variant uses a 2x margin at the smallest size so it stays
    robust on loaded machines, while still catching a regression that makes
    the decomposition engine no faster than backtracking on its pain cases.
    """
    structure = TreeStructure(BENCH_TREE)
    query = parse_query(PAIN_QUERIES["pain_sibling_triangle"])
    backtracking = _median_time(
        lambda: evaluate(query, structure, engine=Engine.BACKTRACKING), 3
    )
    decomposition = _median_time(
        lambda: evaluate(query, structure, engine=Engine.DECOMPOSITION), 3
    )
    assert backtracking >= 2.0 * decomposition


def test_answers_byte_identical_across_engines():
    """The bench-level cross-check, kept as a cheap always-on test."""
    structure = TreeStructure(BENCH_TREE)
    for text in {**PAIN_QUERIES, **ABLATION_QUERIES}.values():
        query = parse_query(text)
        _crosscheck(query, structure, SMALLEST)


if __name__ == "__main__":
    raise SystemExit(main())
