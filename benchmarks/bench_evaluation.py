"""Benchmark: engine comparison on the application workloads (Section 1).

Compares the planner's engines on realistic queries -- the Figure 1
linguistics query over a synthetic treebank corpus and the XML auction
queries -- covering acyclic (XPath-like) and cyclic (join) shapes.
"""

from __future__ import annotations

import pytest
from bench_config import scaled

from repro.evaluation import Engine, evaluate, is_satisfied
from repro.trees import TreeStructure
from repro.workloads import (
    auction_document,
    busy_auction_query,
    described_items_query,
    figure1_query,
    items_with_payment_query,
    random_corpus,
    verb_with_object_query,
)

CORPUS = TreeStructure(random_corpus(scaled(25, 8), seed=0))
AUCTION = TreeStructure(
    auction_document(
        num_items=scaled(40, 8),
        num_people=scaled(20, 4),
        num_bids=scaled(40, 8),
        seed=0,
    )
)

LINGUISTIC_QUERIES = {
    "figure1": figure1_query(),
    "verb_object": verb_with_object_query(),
}

XML_QUERIES = {
    "items_with_payment": items_with_payment_query(),
    "described_items": described_items_query(),
    "busy_auction": busy_auction_query(),
}


@pytest.mark.parametrize("name", sorted(LINGUISTIC_QUERIES))
def test_linguistics_answers_planner(benchmark, name):
    query = LINGUISTIC_QUERIES[name]
    benchmark(lambda: evaluate(query, CORPUS))


@pytest.mark.parametrize("name", sorted(LINGUISTIC_QUERIES))
def test_linguistics_boolean_backtracking(benchmark, name):
    query = LINGUISTIC_QUERIES[name]
    benchmark(lambda: is_satisfied(query, CORPUS, engine=Engine.BACKTRACKING))


@pytest.mark.parametrize("name", sorted(XML_QUERIES))
def test_xml_answers_planner(benchmark, name):
    query = XML_QUERIES[name]
    benchmark(lambda: evaluate(query, AUCTION))


@pytest.mark.parametrize("name", ["items_with_payment", "described_items"])
def test_xml_acyclic_engine(benchmark, name):
    query = XML_QUERIES[name]
    benchmark(lambda: is_satisfied(query, AUCTION, engine=Engine.ACYCLIC))
