"""Benchmark ``fig4`` / Theorem 5.1: the 1-in-3 3SAT reduction in practice.

Times (a) building the reduction (tree + query), (b) deciding the reduction
query with the exact selection-enumeration procedure, and (c) deciding it with
unrestricted backtracking -- the effort of (b) and (c) grows combinatorially
with the number of clauses, the empirical face of query-complexity
NP-hardness.
"""

from __future__ import annotations

import pytest
from bench_config import scaled

from repro.evaluation.backtracking import boolean_query_holds as bt_holds
from repro.hardness import (
    decide_by_selection,
    reduce_instance,
    satisfiable_instance,
    solve_backtracking,
    unsatisfiable_instance,
)


@pytest.mark.parametrize("clauses", scaled([2, 4, 6], [2, 4]))
def test_build_reduction(benchmark, clauses):
    instance = satisfiable_instance(clauses + 2, clauses, seed=clauses)
    result = benchmark(lambda: reduce_instance(instance, "tau4"))
    assert result.query.size() > 0


@pytest.mark.parametrize("clauses", scaled([2, 3, 4], [2]))
def test_decide_reduction_by_selection(benchmark, clauses):
    instance = satisfiable_instance(clauses + 2, clauses, seed=clauses)
    reduction = reduce_instance(instance, "tau4")
    assert benchmark(lambda: decide_by_selection(reduction)) is not None


@pytest.mark.parametrize("clauses", scaled([2, 3], [2]))
def test_decide_reduction_by_backtracking(benchmark, clauses):
    instance = satisfiable_instance(clauses + 2, clauses, seed=clauses)
    reduction = reduce_instance(instance, "tau4")
    structure = reduction.structure()
    assert benchmark(lambda: bt_holds(reduction.query, structure)) is True


def test_unsatisfiable_reduction_by_selection(benchmark):
    reduction = reduce_instance(unsatisfiable_instance(), "tau4")
    assert benchmark(lambda: decide_by_selection(reduction)) is None


@pytest.mark.parametrize("num_variables,num_clauses", scaled([(6, 4), (8, 6), (10, 8)], [(6, 4)]))
def test_plain_sat_solver(benchmark, num_variables, num_clauses):
    """Baseline: solving the 1-in-3 instance directly (no tree detour)."""
    instance = satisfiable_instance(num_variables, num_clauses, seed=num_clauses)
    assert benchmark(lambda: solve_backtracking(instance)) is not None
