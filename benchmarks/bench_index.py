"""Benchmark ``prop3.1``: interval-index vs enumeration arc consistency.

The tentpole claim of the AxisIndex subsystem (:mod:`repro.trees.index`) is
that answering "does this candidate have an axis witness in the opposite
domain?" from pre/post rank arrays turns one arc-consistency revise pass from
O(|domain| * n) into O(|domain| log n) for the transitive axes.  This file
measures exactly that, two ways:

* as pytest-benchmark cases (run with ``--benchmark-only``), and
* as a standalone script (``python benchmarks/bench_index.py``) that times
  :func:`repro.evaluation.arc_consistency.maximal_arc_consistent` with
  ``use_index=True`` vs ``use_index=False`` on random trees and writes the
  results -- including the headline speedup on the largest tree -- to
  ``BENCH_index.json``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

import pytest
from bench_config import scaled

from repro.evaluation import maximal_arc_consistent
from repro.queries import parse_query
from repro.trees import TreeStructure, random_tree

SIZES = scaled((1_000, 10_000), (300, 1_000))

QUERIES = {
    "acyclic_chain": (
        "Q <- A(x), Child+(x, y), B(y), Following(y, z), C(z), NextSibling+(z, w)"
    ),
    "cyclic_labelled": (
        "Q <- A(x), Child+(x, y), B(y), Following(y, z), C(z), "
        "Child+(z, w), A(w), Child+(x, w)"
    ),
}


def _tree(size: int):
    return random_tree(size, alphabet=("A", "B", "C"), seed=42)


def _time_arc_consistency(tree, query, use_index: bool, repeats: int) -> float:
    """Median wall time over ``repeats`` runs, each on a fresh structure.

    A fresh :class:`TreeStructure` per run gives each run an empty
    ``AxisOracle`` cache, so the enumeration path is not flattered by
    re-enumerations cached during a previous run.
    """
    timings = []
    for _ in range(repeats):
        structure = TreeStructure(tree)
        structure.index  # the O(n) index build is shared and paid up front
        start = time.perf_counter()
        maximal_arc_consistent(query, structure, use_index=use_index)
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def run(sizes=SIZES, repeats: int = 3) -> dict:
    """Measure both revise strategies for every (size, query) combination."""
    results = []
    for size in sizes:
        tree = _tree(size)
        for name, text in QUERIES.items():
            query = parse_query(text)
            interval = _time_arc_consistency(tree, query, True, repeats)
            # The enumeration path is O(n^2)-ish: one repeat on big trees.
            enum_repeats = repeats if size <= 1_000 else 1
            enumeration = _time_arc_consistency(tree, query, False, enum_repeats)
            results.append(
                {
                    "tree_size": size,
                    "query": name,
                    "interval_seconds": interval,
                    "enumeration_seconds": enumeration,
                    "speedup": enumeration / interval if interval > 0 else float("inf"),
                }
            )
            print(
                f"n={size:>6} {name:<16} interval={interval:.4f}s "
                f"enumeration={enumeration:.4f}s speedup={results[-1]['speedup']:.1f}x"
            )
    largest = max(sizes)
    headline = min(
        entry["speedup"] for entry in results if entry["tree_size"] == largest
    )
    return {
        "benchmark": "arc consistency: interval index vs relation enumeration",
        "sizes": list(sizes),
        "repeats": repeats,
        "results": results,
        "headline": {
            "tree_size": largest,
            "min_speedup": headline,
            "claim": "interval-based arc consistency >= 5x faster",
            "holds": headline >= 5.0,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_index.json", help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {args.out}; headline min speedup on n={report['headline']['tree_size']}: "
        f"{report['headline']['min_speedup']:.1f}x"
    )
    if not report["headline"]["holds"]:
        print("FAIL: the >=5x speedup claim does not hold at these sizes")
        return 1
    return 0


# -- pytest-benchmark cases ----------------------------------------------------

SMALLEST = min(SIZES)
BENCH_TREE = _tree(SMALLEST)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_interval_arc_consistency(benchmark, name):
    query = parse_query(QUERIES[name])
    benchmark(lambda: maximal_arc_consistent(query, TreeStructure(BENCH_TREE), use_index=True))


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_enumeration_arc_consistency(benchmark, name):
    query = parse_query(QUERIES[name])
    benchmark(lambda: maximal_arc_consistent(query, TreeStructure(BENCH_TREE), use_index=False))


def test_speedup_meets_claim():
    """A relaxed wall-clock guard against losing the speedup entirely.

    The real >=5x claim is enforced by ``main`` (run by CI's bench-smoke job,
    which fails if the headline does not hold); this pytest variant uses a 2x
    margin so it stays robust on loaded machines at the smallest size, while
    still catching a regression that makes the interval path no faster than
    enumeration.
    """
    tree = _tree(SMALLEST)
    query = parse_query(QUERIES["acyclic_chain"])
    interval = _time_arc_consistency(tree, query, True, 3)
    enumeration = _time_arc_consistency(tree, query, False, 3)
    assert enumeration >= 2.0 * interval


if __name__ == "__main__":
    raise SystemExit(main())
