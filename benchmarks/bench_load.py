"""Benchmark: front-end burst throughput over persistent HTTP connections.

The load harness (``scripts/service_load.py``) asserts SLOs against real
server processes; this benchmark measures the same request path in-process,
where pytest-benchmark can time it repeatably: a burst of concurrent
``POST /query`` requests over persistent HTTP/1.1 connections against

* the threaded front end (:func:`repro.service.make_server` over a
  :class:`~repro.service.executor.BatchExecutor`), and
* the asyncio front end (:class:`~repro.service.AsyncServerThread` over the
  same executor class),

both warm (documents resident, query cache primed by a prior pass).  Each
burst is ``connections x rounds`` requests drawn round-robin from the mixed
workload; every response must answer 200.  This times the full stack --
socket, HTTP parsing, executor dispatch, JSON rendering, metrics and
plan-accounting hooks -- so regressions in the observability layer's
per-request overhead surface here as well as in ``bench_service.py``.

Run standalone (``python benchmarks/bench_load.py``) for a one-shot
throughput print; under pytest the cases feed the benchmark suite.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.client import HTTPConnection

import pytest
from bench_config import scaled

from repro.service import AsyncServerThread, BatchExecutor, make_server
from repro.trees import to_xml
from repro.workloads import auction_document, random_corpus

#: Burst shape: (connections, requests per connection); smoke stays tiny.
CONNECTIONS, ROUNDS = scaled((4, 16), (2, 4))

WORKLOAD = [
    {"doc": "auction", "query": "Q(i) <- item(i), Child(i, p), payment(p)"},
    {"doc": "auction", "xpath": "//description//listitem"},
    {"doc": "corpus", "query": "Q(x) <- NP(x), Child(x, y), NN(y)"},
    {"doc": "corpus", "xpath": "//NP[NN]", "propagator": "ac3"},
]
BODIES = [json.dumps(request).encode("utf-8") for request in WORKLOAD]


def build_executor() -> BatchExecutor:
    executor = BatchExecutor()
    executor.store.register_xml("auction", to_xml(auction_document(num_items=12, seed=7)))
    executor.store.register_xml("corpus", to_xml(random_corpus(num_sentences=8, seed=7)))
    return executor


def run_burst(host: str, port: int, connections: int = CONNECTIONS, rounds: int = ROUNDS) -> None:
    """``connections x rounds`` requests over persistent connections; all must 200."""
    errors: list[str] = []

    def client(index: int) -> None:
        connection = HTTPConnection(host, port, timeout=30)
        try:
            connection.connect()
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            for position in range(rounds):
                body = BODIES[(index + position) % len(BODIES)]
                connection.request("POST", "/query", body, {"Content-Type": "application/json"})
                response = connection.getresponse()
                response.read()
                if response.status != 200:
                    errors.append(f"client {index}: HTTP {response.status}")
                    return
        finally:
            connection.close()

    threads = [threading.Thread(target=client, args=(index,)) for index in range(connections)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise AssertionError(f"burst failed: {errors}")


@pytest.fixture(scope="module")
def threaded_server():
    executor = build_executor()
    httpd = make_server(executor, host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    run_burst(host, port, connections=1, rounds=len(BODIES))  # warm the caches
    try:
        yield host, port
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)
        executor.close()


@pytest.fixture(scope="module")
def async_server():
    executor = build_executor()
    with AsyncServerThread(executor) as handle:
        host, port = handle.address
        run_burst(host, port, connections=1, rounds=len(BODIES))  # warm the caches
        yield host, port
    executor.close()


def test_load_burst_threaded_frontend(benchmark, threaded_server):
    host, port = threaded_server
    benchmark(lambda: run_burst(host, port))


def test_load_burst_async_frontend(benchmark, async_server):
    host, port = async_server
    benchmark(lambda: run_burst(host, port))


def main() -> int:
    for label in ("threaded", "async"):
        executor = build_executor()
        if label == "threaded":
            httpd = make_server(executor, host="127.0.0.1", port=0)
            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            host, port = httpd.server_address[:2]
        else:
            handle = AsyncServerThread(executor).start()
            host, port = handle.address
        try:
            run_burst(host, port, connections=1, rounds=len(BODIES))
            started = time.perf_counter()
            run_burst(host, port)
            elapsed = time.perf_counter() - started
            total = CONNECTIONS * ROUNDS
            print(f"{label}: {total} requests in {elapsed:.3f}s -> {total / elapsed:.1f} q/s")
        finally:
            if label == "threaded":
                httpd.shutdown()
                httpd.server_close()
                thread.join(timeout=5)
            else:
                handle.stop()
            executor.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
