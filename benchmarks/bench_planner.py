"""Benchmark: cost-based routing vs every applicable static choice.

The routing pain set is chosen so that **no single static choice wins**: each
entry makes a different fixed configuration lose, so any static rule -- in
particular the pre-planner one, which sends every width-2 cyclic query to the
decomposition engine and every accel-only query through the plain join-tree
CTE lowering -- is the worst choice on at least one entry.

Gating entries (the headline; all four must pass both bars):

* ``route_enum_wedge`` -- k-ary enumeration of a width-2 cyclic wedge over a
  16-label tree.  Backtracking pays one pinned Boolean evaluation per head
  candidate and loses by orders of magnitude; the cost router's bag-row
  estimates (~1e4) sit far below the candidate-product estimate (~1e6), so
  it picks decomposition.
* ``route_bool_cycle4`` -- Boolean satisfiability of a fully *unlabeled*
  four-cycle.  Here the static rule's own pick (width 2 -> decomposition)
  loses ~100x: every bag relation is quadratic in the unlabeled domains,
  while backtracking is one propagation fixpoint plus a first-witness probe.
  The cost router sees bag-row estimates in the millions vs two fixpoints
  and picks backtracking.
* ``route_sql_chain`` / ``route_sql_fan`` -- accel-only documents (SQL is
  the only engine), where the choice left is the lowering: the flat
  single-block join multiplies the tuple space by every witness variable's
  candidate set and loses 50-500x to the join-tree lowering; the cost
  router's flat-join estimate exceeds the bag-sum estimate, so it lowers
  ``"tree"``.

Per entry we measure cost routing plus every *applicable* static
configuration (forced engines on resident documents, forced lowerings on
accel-only ones; ``routing="static"`` itself coincides with the
``decomposition`` / ``tree`` column on these shapes).  The committed
headline asserts, at every measured size:

* cost routing is >= 5x faster than the worst static choice
  (``speedup`` -- the number ``check_regression.py`` tracks), and
* cost routing is never > 1.2x slower than the best static choice
  (it pays only the plan lookup, cached per stats bucket in serving), and
* at least two different static choices win somewhere (the pain-set
  property).

The plan is computed once per (query, document) outside the timed loop,
matching a warm server: ``QueryCache.plan_for`` memoizes plans per
(canonical query, stats bucket), so steady-state serving does not re-plan.
Answers are cross-checked byte-identical across cost routing and every
static configuration on every measured instance.

``ablation_*`` entries are kept honest and out of the headline: TEMP-table
materialization on the dense labeled four-cycle (SQLite auto-indexes
materialized CTE subqueries, so ~1x) and the hybrid-vs-AC-4 propagator pick
on an unlabeled ``Child+`` chain (a mild, not 5x, win).

Run standalone (``python benchmarks/bench_planner.py``) to regenerate
``BENCH_planner.json``; ``BENCH_SMOKE=1`` shrinks the sizes for CI.
"""

from __future__ import annotations

import argparse
import json
import time

import pytest
from bench_config import SMOKE, scaled

from repro.backends.sqlite import SQLiteBackend
from repro.evaluation import Engine, evaluate
from repro.planning import DocumentStats, plan_query
from repro.queries import parse_query
from repro.trees import TreeStructure, random_tree

#: 16 labels for the resident entries (heads in the hundreds, existentials
#: label-free) -- the bench_decomposition regime where routing matters.
LABELS = tuple(f"L{i:02d}" for i in range(16))

# The smallest size of each grid is shared between full and smoke runs on
# purpose: check_regression.py matches entries on (query, tree_size), so the
# smoke run needs a size present in the committed full-size baseline.
RESIDENT_SIZES = scaled((1_000, 4_000), (1_000,))
SQL_SIZES = scaled((500, 1_000), (500,))

#: Gating entries: (query text, "resident" | "accel", sizes).  The flat
#: lowering on the fan shape is >30s past 500 nodes, so that entry stays at
#: one size.
GATING_ENTRIES = {
    "route_enum_wedge": (
        "Q(x) <- L05(x), Child+(x, y), Following(y, z), Child+(x, z), "
        "Following(z, w), Child+(x, w)",
        "resident",
        RESIDENT_SIZES,
    ),
    "route_bool_cycle4": (
        "Q <- Child+(a, b), Following(b, c), Child+(d, c), Following(a, d)",
        "resident",
        RESIDENT_SIZES,
    ),
    "route_sql_chain": (
        "Q(x0) <- A(x0), Child+(x0, x1), B(x1), Following(x1, x2), C(x2), "
        "Child+(x2, x3), A(x3)",
        "accel",
        SQL_SIZES,
    ),
    "route_sql_fan": (
        "Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z), B(y), C(z), "
        "Following(x, w), B(w), NextSibling+(x, v), C(v)",
        "accel",
        (min(SQL_SIZES),),
    ),
}

#: Dense labeled four-cycle for the materialization ablation (both variants
#: must enumerate the cyclic core; SQLite auto-indexes the materialized
#: subquery either way, so the TEMP-table variant is ~1x, not a win).
ABLATION_CYCLE4_SQL = (
    "Q(a) <- A(a), Child+(a, b), B(b), Following(b, c), C(c), "
    "Child+(d, c), A(d), Following(a, d)"
)

#: Unlabeled chain for the propagator ablation: both endpoints of each
#: ``Child+`` edge are full-domain, exactly where ``choose_propagator``
#: prefers the interval hybrid over AC-4's quadratic support seeding.
ABLATION_PROPAGATOR = "Q(x) <- Child+(x, y), Child+(y, z)"


def _resident_tree(size: int):
    return random_tree(size, alphabet=LABELS, seed=42)


def _accel_tree(size: int):
    return random_tree(size, alphabet=("A", "B", "C"), seed=42)


def _best_time(function, repeats: int) -> float:
    """Minimum over ``repeats`` runs.

    The 1.2x bar compares the cost-routed run against the best static run of
    the *same* deterministic code path, so scheduler noise is one-sided and
    the minimum is the faithful estimator -- a median-of-3 at millisecond
    scale flaps past 1.2x on loaded CI machines.  The >= 5x speedups have
    20x+ margins and are insensitive to the choice.
    """
    return min(
        _timed(function) for _ in range(repeats)
    )


def _timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def _entry(size, name, kind, cost_seconds, cost_choice, static_seconds):
    best = min(static_seconds, key=static_seconds.get)
    worst = max(static_seconds, key=static_seconds.get)
    entry = {
        "tree_size": size,
        "query": name,
        "kind": kind,
        "pain_case": kind == "gating",
        "cost_seconds": cost_seconds,
        "cost_choice": cost_choice,
        "static_seconds": static_seconds,
        "best_static": best,
        "worst_static": worst,
        "speedup": static_seconds[worst] / cost_seconds if cost_seconds > 0 else float("inf"),
        "vs_best": cost_seconds / static_seconds[best] if static_seconds[best] > 0 else 0.0,
    }
    statics = " ".join(f"{k}={v:.4f}s" for k, v in static_seconds.items())
    print(
        f"n={size:>5} {name:<24} cost={cost_seconds:.4f}s ({cost_choice}) {statics} "
        f"speedup={entry['speedup']:.1f}x vs_best={entry['vs_best']:.2f}x"
    )
    return entry


def _measure_resident(name, text, size, repeats):
    """Cost routing vs forced-engine statics on a resident document."""
    query = parse_query(text)
    tree = _resident_tree(size)
    structure = TreeStructure(tree)
    plan = plan_query(query, DocumentStats.of_tree(tree))
    reference = sorted(evaluate(query, structure, engine=plan.engine, propagator=plan.propagator))
    static_seconds = {}
    for engine in (Engine.DECOMPOSITION, Engine.BACKTRACKING):
        answers = sorted(evaluate(query, structure, engine=engine))
        if repr(answers) != repr(reference):
            raise AssertionError(f"answer mismatch on {name} (n={size}, engine={engine.value})")
        static_seconds[engine.value] = _best_time(
            lambda: evaluate(query, structure, engine=engine), repeats
        )
    cost_seconds = _best_time(
        lambda: evaluate(query, structure, engine=plan.engine, propagator=plan.propagator),
        repeats,
    )
    return _entry(size, name, "gating", cost_seconds, plan.engine.value, static_seconds)


def _measure_accel(name, text, size, repeats):
    """Cost routing vs forced-lowering statics on an accel-only document."""
    query = parse_query(text)
    tree = _accel_tree(size)
    plan = plan_query(query, DocumentStats.of_tree(tree), accel_only=True)
    with SQLiteBackend() as backend:
        backend.register_tree("doc", tree)
        reference = backend.evaluate(
            "doc", query, lowering=plan.lowering, materialize=plan.materialize
        )
        static_seconds = {}
        for lowering in ("tree", "flat"):
            if backend.evaluate("doc", query, lowering=lowering) != reference:
                raise AssertionError(
                    f"answer mismatch on {name} (n={size}, lowering={lowering})"
                )
            static_seconds[lowering] = _best_time(
                lambda: backend.evaluate("doc", query, lowering=lowering), repeats
            )
        cost_seconds = _best_time(
            lambda: backend.evaluate(
                "doc", query, lowering=plan.lowering, materialize=plan.materialize
            ),
            repeats,
        )
    choice = plan.lowering + ("+materialize" if plan.materialize else "")
    return _entry(size, name, "gating", cost_seconds, choice, static_seconds)


def _measure_materialize_ablation(size, repeats):
    """TEMP-table materialization vs plain CTEs on the dense four-cycle."""
    query = parse_query(ABLATION_CYCLE4_SQL)
    tree = _accel_tree(size)
    with SQLiteBackend() as backend:
        backend.register_tree("doc", tree)
        cte = backend.evaluate("doc", query, lowering="tree")
        temp = backend.evaluate("doc", query, lowering="tree", materialize=True)
        if cte != temp:
            raise AssertionError(f"materialize answer mismatch (n={size})")
        static_seconds = {
            "cte": _best_time(
                lambda: backend.evaluate("doc", query, lowering="tree"), repeats
            ),
            "temp_table": _best_time(
                lambda: backend.evaluate("doc", query, lowering="tree", materialize=True),
                repeats,
            ),
        }
    return _entry(
        size,
        "ablation_cycle4_sql",
        "ablation",
        static_seconds["temp_table"],
        "temp_table",
        static_seconds,
    )


def _measure_propagator_ablation(size, repeats):
    """The cost router's hybrid pick vs the AC-4 default on unlabeled chains."""
    query = parse_query(ABLATION_PROPAGATOR)
    tree = _resident_tree(size)
    structure = TreeStructure(tree)
    plan = plan_query(query, DocumentStats.of_tree(tree))
    if sorted(evaluate(query, structure, propagator="hybrid")) != sorted(
        evaluate(query, structure, propagator="ac4")
    ):
        raise AssertionError(f"propagator answer mismatch (n={size})")
    static_seconds = {
        propagator: _best_time(
            lambda: evaluate(query, structure, propagator=propagator), repeats
        )
        for propagator in ("ac4", "hybrid")
    }
    return _entry(
        size,
        "ablation_propagator",
        "ablation",
        static_seconds[plan.propagator.value],
        plan.propagator.value,
        static_seconds,
    )


def run(repeats: int = 3) -> dict:
    """Measure every entry, assert byte-identity, and compute the headline."""
    results = []
    for name, (text, mode, sizes) in GATING_ENTRIES.items():
        for size in sizes:
            if mode == "resident":
                results.append(_measure_resident(name, text, size, repeats))
            else:
                results.append(_measure_accel(name, text, size, repeats))
    for size in SQL_SIZES:
        results.append(_measure_materialize_ablation(size, repeats))
    for size in RESIDENT_SIZES:
        results.append(_measure_propagator_ablation(size, repeats))

    gating = [entry for entry in results if entry["kind"] == "gating"]
    min_speedup = min(entry["speedup"] for entry in gating)
    max_vs_best = max(entry["vs_best"] for entry in gating)
    winners = sorted({entry["best_static"] for entry in gating})
    return {
        "benchmark": "cost-based routing vs static engine/lowering choices",
        "sizes": {
            "resident": list(RESIDENT_SIZES),
            "accel": list(SQL_SIZES),
        },
        "repeats": repeats,
        "results": results,
        "headline": {
            "min_speedup_vs_worst_static": min_speedup,
            "max_slowdown_vs_best_static": max_vs_best,
            "best_statics": winners,
            "claim": (
                "cost routing is >= 5x faster than the worst static choice and "
                "never > 1.2x slower than the best one, on a pain set where no "
                "single static choice wins"
            ),
            "holds": min_speedup >= 5.0 and max_vs_best <= 1.2 and len(winners) >= 2,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_planner.json", help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    headline = report["headline"]
    print(
        f"wrote {args.out}; min speedup vs worst static "
        f"{headline['min_speedup_vs_worst_static']:.1f}x, max slowdown vs best "
        f"{headline['max_slowdown_vs_best_static']:.2f}x, winners {headline['best_statics']}"
    )
    if SMOKE:
        print("note: BENCH_SMOKE=1 -- do not commit smoke numbers as the baseline")
    if not report["headline"]["holds"]:
        print("FAIL: the cost-routing headline claim does not hold")
        return 1
    return 0


# -- pytest-benchmark cases ----------------------------------------------------

SMALLEST_RESIDENT = min(RESIDENT_SIZES)
BENCH_TREE = _resident_tree(SMALLEST_RESIDENT)
BENCH_STRUCTURE = TreeStructure(BENCH_TREE)
BENCH_STATS = DocumentStats.of_tree(BENCH_TREE)


@pytest.mark.parametrize("name", ["route_enum_wedge", "route_bool_cycle4"])
def test_cost_routed_evaluation(benchmark, name):
    query = parse_query(GATING_ENTRIES[name][0])
    plan = plan_query(query, BENCH_STATS)
    benchmark(
        lambda: evaluate(
            query, BENCH_STRUCTURE, engine=plan.engine, propagator=plan.propagator
        )
    )


def test_plan_query_overhead(benchmark):
    """Planning itself must stay negligible next to any evaluation."""
    query = parse_query(GATING_ENTRIES["route_enum_wedge"][0])
    plan_query(query, BENCH_STATS)  # warm the compile cache
    benchmark(lambda: plan_query(query, BENCH_STATS))


def test_cost_router_picks_each_side():
    """The pain set routes to different choices per entry, as designed."""
    wedge = plan_query(parse_query(GATING_ENTRIES["route_enum_wedge"][0]), BENCH_STATS)
    cycle = plan_query(parse_query(GATING_ENTRIES["route_bool_cycle4"][0]), BENCH_STATS)
    assert wedge.engine is Engine.DECOMPOSITION
    assert cycle.engine is Engine.BACKTRACKING
    accel_tree = _accel_tree(min(SQL_SIZES))
    chain = plan_query(
        parse_query(GATING_ENTRIES["route_sql_chain"][0]),
        DocumentStats.of_tree(accel_tree),
        accel_only=True,
    )
    assert chain.engine is Engine.SQL and chain.lowering == "tree"


def test_cost_routing_beats_worst_static():
    """A relaxed wall-clock guard against losing the routing win entirely.

    The real >= 5x claim is enforced by ``main`` (run by CI's bench-smoke job
    and gated by ``check_regression.py`` against the committed baseline);
    this pytest variant uses a 2x margin on the boolean four-cycle -- whose
    full-size gap is ~100x -- so it stays robust on loaded machines.
    """
    query = parse_query(GATING_ENTRIES["route_bool_cycle4"][0])
    plan = plan_query(query, BENCH_STATS)
    assert plan.engine is Engine.BACKTRACKING
    cost = _best_time(
        lambda: evaluate(query, BENCH_STRUCTURE, engine=plan.engine), 3
    )
    worst = _best_time(
        lambda: evaluate(query, BENCH_STRUCTURE, engine=Engine.DECOMPOSITION), 3
    )
    assert worst >= 2.0 * cost


if __name__ == "__main__":
    raise SystemExit(main())
