"""Benchmark ``thm3.5``: near-linear scaling of the X-property evaluator.

Measures the Theorem 3.5 algorithm while scaling (a) the tree and (b) the
query, plus two ablations called out in DESIGN.md:

* worklist arc consistency vs the literal Horn program of Proposition 3.1,
* lazy axis access vs materialised axis relations.
"""

from __future__ import annotations

import pytest
from bench_config import scaled

from repro.evaluation.arc_consistency import (
    maximal_arc_consistent,
    maximal_arc_consistent_horn,
)
from repro.evaluation.xprop_evaluator import boolean_query_holds
from repro.hardness import random_cyclic_query
from repro.trees import TreeStructure, random_tree
from repro.trees.axes import Axis, materialise

QUERY = random_cyclic_query(
    (Axis.CHILD_PLUS, Axis.CHILD_STAR), num_variables=8, num_extra_atoms=4, seed=0
)

TREE_SIZES = scaled((100, 200, 400, 800), (50, 100))
MEDIUM_SIZE = scaled(200, 100)
VARIABLE_COUNTS = scaled([4, 8, 16, 32], [4, 8])

TREES = {
    size: random_tree(size, alphabet=("A", "B", "C"), seed=size)
    for size in set(TREE_SIZES) | {MEDIUM_SIZE}
}


@pytest.mark.parametrize("size", sorted(TREE_SIZES))
def test_tree_scaling(benchmark, size):
    structure = TreeStructure(TREES[size])
    benchmark(lambda: boolean_query_holds(QUERY, structure))


@pytest.mark.parametrize("num_variables", VARIABLE_COUNTS)
def test_query_scaling(benchmark, num_variables):
    structure = TreeStructure(TREES[MEDIUM_SIZE])
    query = random_cyclic_query(
        (Axis.CHILD_PLUS, Axis.CHILD_STAR),
        num_variables=num_variables,
        num_extra_atoms=num_variables // 2,
        seed=num_variables,
    )
    benchmark(lambda: boolean_query_holds(query, structure))


@pytest.mark.parametrize("size", scaled([50, 100, 200], [50, 100]))
def test_ablation_arc_consistency_worklist(benchmark, size):
    structure = TreeStructure(random_tree(size, alphabet=("A", "B", "C"), seed=7 * size))
    benchmark(lambda: maximal_arc_consistent(QUERY, structure))


@pytest.mark.parametrize("size", scaled([50, 100, 200], [50, 100]))
def test_ablation_arc_consistency_horn(benchmark, size):
    structure = TreeStructure(random_tree(size, alphabet=("A", "B", "C"), seed=7 * size))
    benchmark(lambda: maximal_arc_consistent_horn(QUERY, structure))


@pytest.mark.parametrize("size", scaled([100, 200], [50, 100]))
def test_ablation_materialised_axis_relations(benchmark, size):
    """Cost of materialising the binary relations (the design we avoided)."""
    tree = TREES[size]

    def materialise_all():
        return {
            axis: materialise(tree, axis)
            for axis in (Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING)
        }

    benchmark(materialise_all)
