"""Benchmark ``thm6.6/6.10/prop6.14`` and ``fig8``: the CQ -> APQ rewriting.

Times the rewriting itself on (a) the Figure 8 introduction query, (b) random
cyclic queries per signature family, (c) the Theorem 6.10 literal variant, and
(d) the linear-time Proposition 6.14 rewriting for {Child, NextSibling}.
"""

from __future__ import annotations

import pytest
from bench_config import scaled

from repro.hardness import random_cyclic_query
from repro.rewriting import (
    rewrite_child_nextsibling_apq,
    to_apq,
    to_apq_theorem_610,
)
from repro.trees.axes import Axis
from repro.workloads import figure1_query

SIGNATURE_FAMILIES = {
    "child_childplus": (Axis.CHILD, Axis.CHILD_PLUS),
    "childstar_nsplus": (Axis.CHILD_STAR, Axis.NEXT_SIBLING_PLUS),
    "child_following": (Axis.CHILD, Axis.FOLLOWING),
}


def test_figure8_intro_query(benchmark):
    query = figure1_query()
    apq = benchmark(lambda: to_apq(query))
    assert apq.is_acyclic()


@pytest.mark.parametrize("family", sorted(SIGNATURE_FAMILIES))
def test_random_cyclic_queries(benchmark, family):
    query = random_cyclic_query(
        SIGNATURE_FAMILIES[family],
        num_variables=4,
        num_extra_atoms=1,
        alphabet=("A", "B"),
        seed=11,
    )
    apq = benchmark(lambda: to_apq(query))
    assert apq.is_acyclic()


def test_theorem_610_literal_variant(benchmark):
    query = random_cyclic_query(
        (Axis.CHILD_STAR, Axis.CHILD),
        num_variables=4,
        num_extra_atoms=1,
        alphabet=("A", "B"),
        seed=3,
    )
    apq = benchmark(lambda: to_apq_theorem_610(query))
    assert apq.is_acyclic()


@pytest.mark.parametrize("num_variables", scaled([4, 6, 8], [4]))
def test_prop614_linear_rewriting(benchmark, num_variables):
    query = random_cyclic_query(
        (Axis.CHILD, Axis.NEXT_SIBLING),
        num_variables=num_variables,
        num_extra_atoms=2,
        alphabet=("A", "B"),
        seed=num_variables,
    )
    apq = benchmark(lambda: rewrite_child_nextsibling_apq(query))
    assert apq.size() <= query.size()
