"""Benchmark: serving-layer amortization -- warm resident path vs cold path.

The serving subsystem (:mod:`repro.service`) exists to amortize per-tree and
per-query artifacts across requests: the XML parse, tree finalisation and
interval-index build happen once per *document*, and parse -> canonicalize ->
compile -> plan happens once per *query equivalence class*.  This benchmark
measures exactly that amortization on a mixed workload drawn from
``repro.workloads`` (the XMark-style auction documents and the linguistics
corpus), at nominal document sizes of 1k and 10k nodes:

* **cold path** -- every request pays everything: a fresh
  :class:`~repro.service.executor.BatchExecutor` (fresh store, empty query
  cache, cleared global compile/canonicalization caches), document
  registration from XML text, then the evaluation;
* **warm path** -- one executor with both documents resident and the cache
  warmed by a single prior pass; requests are then batch-executed over the
  thread pool.

Acceptance (ISSUE 3): warm-path batch throughput >= 10x cold-path at the 10k
nominal size.  Every measured request is also cross-checked for byte-identical
answers (through the JSON rendering) against a direct sequential
:func:`repro.evaluation.planner.evaluate` call; the 1k workload includes every
propagator (``ac4``, ``ac3``, ``horn``, ``hybrid``), the 10k workload drops
``horn`` whose clause materialization is quadratic at that size.

A second mode (ISSUE 4) compares the two serving *backends* head to head:
the thread-pool :class:`~repro.service.executor.BatchExecutor` (GIL-bound:
one process, shared artifacts) vs the process-sharded
:class:`~repro.service.shards.ShardedExecutor` (N worker processes, documents
routed by stable hash of their id).  Both execute the identical warm batch;
results are cross-checked byte-identical to each other and to sequential
``evaluate()``.  The >= 1.5x sharded-over-threaded throughput claim is only
meaningful on a multi-core runner -- on a single core the shards serialize on
the one CPU and pay IPC on top -- so the headline records ``cores`` and
evaluates the claim only when at least two cores are visible.

Run standalone (``python benchmarks/bench_service.py``) to regenerate
``BENCH_service.json``; per-request ``(query, tree_size)`` speedup entries
feed ``check_regression.py`` like the other benchmarks (smoke runs share the
1k nominal size with the committed full run).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import statistics
import time

import pytest
from bench_config import SMOKE, scaled

from repro.evaluation import evaluate
from repro.evaluation.compile import compile_query
from repro.observability.accounting import ACCOUNTING
from repro.observability.metrics import SLOW_LOG
from repro.observability.profiler import PROFILER
from repro.queries import parse_query, xpath_to_cq
from repro.queries.canonical import canonicalize
from repro.queries.simplify import simplify_query
from repro.service import BatchExecutor, Request, ShardedExecutor, shard_for
from repro.service import core as service_core
from repro.trees import TreeStructure, to_xml
from repro.workloads import auction_document, random_corpus

#: Nominal document sizes; smoke shares the 1k grid point with the full run.
SIZES = scaled((1_000, 10_000), (1_000,))

#: Generator parameters calibrated to the nominal sizes (actuals within ~6%).
AUCTION_PARAMS = {1_000: dict(num_items=55, num_people=30, num_bids=85),
                  10_000: dict(num_items=560, num_people=300, num_bids=850)}
CORPUS_PARAMS = {1_000: dict(num_sentences=45), 10_000: dict(num_sentences=440)}


def build_documents(nominal: int) -> dict[str, object]:
    """The two workload documents for one nominal size."""
    return {
        "auction": auction_document(seed=42, **AUCTION_PARAMS[nominal]),
        "corpus": random_corpus(seed=42, **CORPUS_PARAMS[nominal]),
    }


def build_workload(nominal: int) -> list[Request]:
    """The mixed request batch: datalog + XPath, monadic + Boolean, propagators.

    ``horn`` requests only appear at the 1k size (its Horn-program
    materialization is quadratic in the tree, which is the point of the other
    propagators); the all-propagator byte-identity acceptance check therefore
    runs on the 1k workload.
    """
    requests = [
        # Auction: XPath-style monadic queries and a cyclic Boolean join.
        Request(doc="auction", query="Q(i) <- item(i), Child(i, p), payment(p)"),
        # Alpha-renamed twin of the previous query: must hit the same entry.
        Request(doc="auction", query="R(it) <- payment(pay), item(it), Child(it, pay)",
                propagator="hybrid"),
        Request(doc="auction", xpath="//description//listitem"),
        Request(doc="auction", xpath="//person[profile/interest]", propagator="ac3"),
        Request(doc="auction", query=(
            "Q <- open_auction(a), Child(a, b1), bidder(b1), "
            "Child(a, b2), bidder(b2), Following(b1, b2)")),
        Request(doc="auction", query=(
            "Q(i) <- item(i), Child(i, d), description(d), Child+(d, l), listitem(l)")),
        # Corpus: linguistics-flavoured navigation.
        Request(doc="corpus", query="Q(x) <- NP(x), Child(x, y), NN(y)"),
        Request(doc="corpus", xpath="//NP[NN]"),  # same class as the previous one?
        Request(doc="corpus", query="Q(v) <- VP(v), Child(v, w), VB(w)",
                propagator="hybrid"),
        Request(doc="corpus", query="Q <- NP(x), Following(x, y), PP(y)"),
        Request(doc="corpus", xpath="//VP[VB]/NP", propagator="ac3"),
        # Byte-identical resubmission: exercises the parse cache.
        Request(doc="auction", query="Q(i) <- item(i), Child(i, p), payment(p)"),
    ]
    if nominal <= 1_000:
        requests.extend([
            Request(doc="auction", query="Q(i) <- item(i), Child(i, p), payment(p)",
                    propagator="horn"),
            Request(doc="corpus", query="Q(x) <- NP(x), Child(x, y), NN(y)",
                    propagator="horn"),
        ])
    return requests


def _request_query(request: Request):
    if request.xpath is not None:
        return xpath_to_cq(request.xpath)
    return parse_query(request.query)


def _median_time(function, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def _clear_global_query_caches() -> None:
    """Reset the process-wide memoizations the cold path must not inherit."""
    compile_query.cache_clear()
    canonicalize.cache_clear()
    simplify_query.cache_clear()


def _cold_once(request: Request, doc_id: str, xml_text: str) -> None:
    """One fully cold request: fresh executor, registration, evaluation."""
    _clear_global_query_caches()
    executor = BatchExecutor()
    executor.store.register_xml(doc_id, xml_text)
    result = executor.execute(request)
    if not result.ok:
        raise AssertionError(f"cold request failed: {result.error}")


def check_byte_identical(executor: BatchExecutor, requests, documents) -> None:
    """Batch answers must render byte-identically to sequential evaluate()."""
    results = executor.execute_batch(requests)
    for request, result in zip(requests, results):
        if not result.ok:
            raise AssertionError(f"request failed: {result.error}")
        direct = sorted(
            evaluate(
                _request_query(request),
                TreeStructure(documents[request.doc]),
                # "auto" is resolved by the planner; cross-check against the
                # propagator the serving layer actually chose.
                propagator=result.propagator,
            )
        )
        batch_bytes = json.dumps(result.to_json_dict()["answers"]).encode()
        direct_bytes = json.dumps([list(answer) for answer in direct]).encode()
        if batch_bytes != direct_bytes:
            raise AssertionError(
                f"answers diverge from sequential evaluate() for {request} "
                f"({result.propagator})"
            )


#: How many times the mixed workload is replicated per backend-comparison
#: batch: a bigger batch amortizes dispatch overhead on both backends and
#: gives the shards enough work to overlap.
BATCH_REPLICAS = 4


def balanced_doc_ids(doc_ids, shards: int) -> dict[str, str]:
    """Stable ids that spread the benchmark documents round-robin over shards.

    Routing is by content hash of the id, and with only *two* documents the
    hash may well put both on one shard -- at which point the benchmark would
    measure coin-flip luck, not the architecture.  Real fleets hold many
    documents, so the law of large numbers balances them; here we pin a
    balanced layout by suffixing ids until each lands on its round-robin
    shard.
    """
    mapping = {}
    for position, doc_id in enumerate(sorted(doc_ids)):
        suffix = 0
        while True:
            candidate = doc_id if suffix == 0 else f"{doc_id}~{suffix}"
            if shard_for(candidate, shards) == position % shards:
                mapping[doc_id] = candidate
                break
            suffix += 1
    return mapping


def run_sharded(sizes=SIZES, repeats: int = 3, shards: int = 2) -> dict:
    """Thread backend vs process-sharded backend on the identical warm batch."""
    cores = os.cpu_count() or 1
    entries = []
    headline = None
    for nominal in sizes:
        documents = build_documents(nominal)
        xml_texts = {doc_id: to_xml(tree) for doc_id, tree in documents.items()}
        mapping = balanced_doc_ids(xml_texts, shards)
        base_requests = build_workload(nominal) * BATCH_REPLICAS
        requests = [
            dataclasses.replace(request, doc=mapping[request.doc])
            for request in base_requests
        ]

        threaded = BatchExecutor()
        for doc_id, text in xml_texts.items():
            threaded.store.register_xml(mapping[doc_id], text)
        sharded = ShardedExecutor(shards=shards)
        for doc_id, text in xml_texts.items():
            sharded.register_payload({"doc": mapping[doc_id], "xml": text})
        try:
            # Warm both, then cross-check: sharded results must be
            # byte-identical to the threaded backend's and to sequential
            # evaluate() (via the same JSON rendering).
            threaded_results = threaded.execute_batch(requests)
            sharded_results = sharded.execute_batch(requests)
            for request, ours, theirs in zip(requests, threaded_results, sharded_results):
                if not (ours.ok and theirs.ok):
                    raise AssertionError(f"backend request failed: {ours.error or theirs.error}")
                served = json.dumps(theirs.to_json_dict()["answers"]).encode()
                if served != json.dumps(ours.to_json_dict()["answers"]).encode():
                    raise AssertionError(f"backends diverge for {request}")
                direct = sorted(
                    evaluate(
                        _request_query(request),
                        TreeStructure(documents[next(
                            original for original, mapped in mapping.items()
                            if mapped == request.doc
                        )]),
                        propagator=ours.propagator,
                    )
                )
                if served != json.dumps([list(answer) for answer in direct]).encode():
                    raise AssertionError(f"sharded answers diverge from evaluate() for {request}")

            threaded_seconds = _median_time(lambda: threaded.execute_batch(requests), repeats)
            sharded_seconds = _median_time(lambda: sharded.execute_batch(requests), repeats)
        finally:
            sharded.close()
            threaded.close()
        entry = {
            "tree_size": nominal,
            "query": "sharded_vs_threaded_batch",
            "text": f"mixed workload x{BATCH_REPLICAS} ({len(requests)} requests), "
                    f"{shards} shards",
            "shards": shards,
            "requests": len(requests),
            "threaded_seconds": threaded_seconds,
            "sharded_seconds": sharded_seconds,
            "threaded_qps": len(requests) / threaded_seconds,
            "sharded_qps": len(requests) / sharded_seconds,
            "speedup": threaded_seconds / sharded_seconds,
        }
        entries.append(entry)
        print(
            f"n={nominal:>6} sharded({shards}) {entry['sharded_qps']:.1f} q/s vs "
            f"threaded {entry['threaded_qps']:.1f} q/s -> {entry['speedup']:.2f}x "
            f"({cores} core(s))"
        )
        if headline is None or nominal > headline["tree_size"]:
            headline = {
                "tree_size": nominal,
                "shards": shards,
                "cores": cores,
                "threaded_qps": entry["threaded_qps"],
                "sharded_qps": entry["sharded_qps"],
                "speedup": entry["speedup"],
                "claim": (
                    "sharded batch throughput >= 1.5x the threaded executor on "
                    "the 10k-node mixed workload on a multi-core runner"
                ),
                # On one core the shards serialize on the CPU and pay IPC on
                # top; the claim is only evaluated where it is meaningful.
                "holds": (entry["speedup"] >= 1.5) if cores >= 2 else None,
            }
            if cores < 2:
                headline["note"] = (
                    f"measured on a single-core machine ({cores} core visible): "
                    "the >=1.5x multi-core claim is recorded but not evaluated"
                )
    return {"results": entries, "headline": headline}


def _strip_observability() -> list:
    """Shadow the per-request observability hooks with instance-level no-ops.

    Setting an attribute on the metric *instances* shadows the bound class
    methods without touching the classes, so ``delattr`` restores the real
    hooks exactly.  This is the "stripped" arm of the overhead measurement:
    the serving path runs identically except that counters, histograms, the
    plan-accounting ledger and the slow log all cost one no-op call.
    """
    stubs = [
        (service_core.REQUESTS_TOTAL, "inc", lambda **labels: None),
        (service_core.REQUEST_SECONDS, "observe", lambda value, **labels: None),
        (service_core.PLAN_CHOICES, "inc", lambda **labels: None),
        (service_core.PLAN_ESTIMATED_COST, "observe", lambda value, **labels: None),
        (ACCOUNTING, "record", lambda **kwargs: None),
        (SLOW_LOG, "maybe_record", lambda *args, **kwargs: None),
    ]
    for target, name, stub in stubs:
        setattr(target, name, stub)
    return stubs


def _restore_observability(stubs: list) -> None:
    for target, name, _ in stubs:
        delattr(target, name)


def _hook_cost_seconds(iterations: int = 5_000) -> float:
    """Directly measured cost of one request's worth of observability hooks.

    Calls exactly what the serving path calls per successful request --
    planner counters, the cost histograms, the plan-accounting ledger, the
    request counter/histogram and the slow-log check -- in a tight loop.
    Averaging over thousands of calls makes this stable at the microsecond
    scale, where end-to-end A/B medians on a busy single-core runner jitter
    by more than the quantity being measured.
    """
    stage_ms = {"plan": 0.1, "execute": 0.9}
    started = time.perf_counter()
    for _ in range(iterations):
        service_core.PLAN_CHOICES.inc(routing="cost_model", engine="xproperty", lowering="none")
        service_core.PLAN_ESTIMATED_COST.observe(1234.5, engine="xproperty")
        service_core.PLAN_COST_PER_SECOND.observe(1234.5 / 0.001, engine="xproperty")
        ACCOUNTING.record(
            query_key="bench:hook",
            query_text="Q(x) <- A(x)",
            doc="bench",
            rows=10,
            elapsed_ms=1.0,
            stage_ms=stage_ms,
            engine="xproperty",
            propagator="ac4",
            lowering="none",
            routing="cost_model",
            stats_bucket="resident",
            estimated_cost=1234.5,
            estimated_rows=10.0,
        )
        service_core.REQUESTS_TOTAL.inc(status="ok")
        service_core.REQUEST_SECONDS.observe(0.001, engine="xproperty", propagator="ac4")
        SLOW_LOG.maybe_record(
            1.0,
            doc="bench",
            query_key="bench:hook",
            engine="xproperty",
            propagator="ac4",
            ok=True,
            lowering="none",
            routing="cost_model",
            estimated_cost=1234.5,
            drift=1.01,
        )
    elapsed = time.perf_counter() - started
    # Scrub the synthetic traffic out of the process-global telemetry.
    ACCOUNTING.clear()
    SLOW_LOG.clear()
    return elapsed / iterations


def run_observability(repeats: int = 3) -> dict:
    """Observability tax: what the closed-loop telemetry costs per request.

    Two measurements, one gate:

    * **direct hook cost** (gated) -- one request's worth of metrics +
      plan-accounting + slow-log calls, timed in a tight loop and divided by
      the warm per-request latency of the mixed workload.  The claim is that
      this always-on layer costs under 5% of a warm request.
    * **end-to-end A/B** (recorded) -- interleaved best-of-``rounds`` warm
      batch times instrumented vs hook-stripped vs actively profiled.  On a
      busy single-core runner these medians jitter by several percent --
      more than the overhead itself -- so they corroborate rather than gate.

    The gate is evaluated on full runs only; smoke records the numbers.
    """
    nominal = min(SIZES)
    documents = build_documents(nominal)
    requests = build_workload(nominal)
    executor = BatchExecutor()
    for doc_id, tree in documents.items():
        executor.store.register_xml(doc_id, to_xml(tree))
    executor.execute_batch(requests)  # warm caches before any timing
    rounds = max(repeats * 5, 15)
    arms: dict = {"instrumented": [], "stripped": [], "profiled": []}
    try:
        hook_seconds = _hook_cost_seconds()
        # Interleave the arms round-robin so slow environmental drift (CPU
        # frequency, co-tenants) hits all three arms equally.
        for _ in range(rounds):
            arms["instrumented"].append(
                _median_time(lambda: executor.execute_batch(requests), 1)
            )
            stubs = _strip_observability()
            try:
                arms["stripped"].append(
                    _median_time(lambda: executor.execute_batch(requests), 1)
                )
            finally:
                _restore_observability(stubs)
            if not PROFILER.start():
                raise AssertionError("profiler refused to start during the overhead run")
            try:
                arms["profiled"].append(
                    _median_time(lambda: executor.execute_batch(requests), 1)
                )
            finally:
                PROFILER.stop()
                PROFILER.reset()
    finally:
        executor.close()

    instrumented, stripped, profiled = (
        min(arms[arm]) for arm in ("instrumented", "stripped", "profiled")
    )
    warm_request_seconds = instrumented / len(requests)
    metrics_overhead = hook_seconds / warm_request_seconds
    report = {
        "tree_size": nominal,
        "requests": len(requests),
        "rounds": rounds,
        "hook_cost_us": hook_seconds * 1e6,
        "warm_request_us": warm_request_seconds * 1e6,
        "metrics_overhead": metrics_overhead,
        "instrumented_seconds": instrumented,
        "stripped_seconds": stripped,
        "profiled_seconds": profiled,
        "ab_overhead": instrumented / stripped - 1.0,
        "profiler_overhead": profiled / instrumented - 1.0,
        "claim": "metrics + plan-accounting hook cost < 5% of a warm request",
        "holds": None if SMOKE else metrics_overhead < 0.05,
    }
    print(
        f"observability: hooks {hook_seconds * 1e6:.1f}us/request over warm "
        f"{warm_request_seconds * 1e6:.0f}us -> {metrics_overhead:.2%} overhead; "
        f"A/B batch: instrumented={instrumented * 1000:.2f}ms "
        f"stripped={stripped * 1000:.2f}ms ({report['ab_overhead']:+.1%}) "
        f"profiled={profiled * 1000:.2f}ms ({report['profiler_overhead']:+.1%})"
    )
    return report


def run(sizes=SIZES, repeats: int = 3) -> dict:
    results = []
    headline = None
    for nominal in sizes:
        documents = build_documents(nominal)
        xml_texts = {doc_id: to_xml(tree) for doc_id, tree in documents.items()}
        actual_sizes = {doc_id: len(tree) for doc_id, tree in documents.items()}
        requests = build_workload(nominal)

        # Warm executor: documents resident, caches warmed by one full pass,
        # answers cross-checked against direct evaluation along the way.
        warm_executor = BatchExecutor()
        for doc_id, text in xml_texts.items():
            warm_executor.store.register_xml(doc_id, text)
        check_byte_identical(warm_executor, requests, documents)

        per_request = []
        cold_total = 0.0
        warm_total = 0.0
        for position, request in enumerate(requests):
            cold = _median_time(
                lambda: _cold_once(request, request.doc, xml_texts[request.doc]),
                repeats,
            )
            # Warm calls are microseconds; a larger repeat pool keeps the
            # median stable enough for the CI regression diff on busy runners.
            warm = _median_time(lambda: warm_executor.execute(request), max(repeats, 9))
            cold_total += cold
            warm_total += warm
            entry = {
                "tree_size": nominal,
                "query": f"req{position:02d}_{request.doc}_{request.propagator}",
                "text": request.xpath or str(request.query),
                "cold_seconds": cold,
                "warm_seconds": warm,
                "speedup": cold / warm if warm > 0 else float("inf"),
            }
            per_request.append(entry)
            print(
                f"n={nominal:>6} {entry['query']:<28} cold={cold:.4f}s "
                f"warm={warm:.5f}s speedup={entry['speedup']:.1f}x"
            )

        # Throughput: cold path is inherently sequential (every request
        # rebuilds the world); the warm path batches over the thread pool.
        batch_seconds = _median_time(
            lambda: warm_executor.execute_batch(requests), repeats
        )
        cold_qps = len(requests) / cold_total
        warm_qps = len(requests) / batch_seconds
        size_report = {
            "nominal_size": nominal,
            "actual_sizes": actual_sizes,
            "requests": len(requests),
            "cold_seconds_total": cold_total,
            "warm_seconds_sequential_total": warm_total,
            "warm_seconds_batch": batch_seconds,
            "cold_qps": cold_qps,
            "warm_qps": warm_qps,
            "throughput_speedup": warm_qps / cold_qps,
            "cache_stats": warm_executor.cache.stats(),
        }
        results.append({"per_request": per_request, **size_report})
        print(
            f"n={nominal:>6} cold={cold_qps:.1f} q/s warm={warm_qps:.1f} q/s "
            f"-> {size_report['throughput_speedup']:.1f}x"
        )
        if headline is None or nominal > headline["tree_size"]:
            headline = {
                "tree_size": nominal,
                "cold_qps": cold_qps,
                "warm_qps": warm_qps,
                "speedup": size_report["throughput_speedup"],
                "claim": (
                    "warm-path batch throughput >= 10x cold-path "
                    "(fresh store + empty cache) on the mixed workload"
                ),
                "holds": size_report["throughput_speedup"] >= 10.0,
            }

    flat_entries = [entry for size_report in results for entry in size_report["per_request"]]
    return {
        "benchmark": "serving layer: warm resident path vs cold per-request rebuild",
        "sizes": list(sizes),
        "repeats": repeats,
        "results": flat_entries,
        "by_size": results,
        "headline": headline,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_service.json", help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--shards", type=int, default=2, help="worker processes for the sharded mode"
    )
    parser.add_argument(
        "--mode",
        choices=("all", "amortization", "sharded", "observability"),
        default="all",
        help="which benchmark modes to run",
    )
    args = parser.parse_args(argv)
    report: dict = {"benchmark": "serving layer", "sizes": list(SIZES), "repeats": args.repeats}
    if args.mode in ("all", "amortization"):
        report.update(run(repeats=args.repeats))
    if args.mode in ("all", "sharded"):
        sharded_report = run_sharded(repeats=args.repeats, shards=args.shards)
        report["sharded"] = sharded_report
        report.setdefault("results", [])
        report["results"] = list(report["results"]) + sharded_report["results"]
    if args.mode in ("all", "observability"):
        report["observability"] = run_observability(repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    failed = False
    headline = report.get("headline")
    if headline is not None:
        print(
            f"wrote {args.out}; amortization headline at n={headline['tree_size']}: "
            f"cold {headline['cold_qps']:.1f} q/s vs warm {headline['warm_qps']:.1f} q/s "
            f"({headline['speedup']:.1f}x)"
        )
        if headline["tree_size"] < 10_000:
            # The acceptance bars are set at the 10k nominal size; smoke runs
            # only measure the shared 1k grid point, where cold registration
            # is too cheap for the bar to be meaningful.
            print("note: >=10x claim is only enforced at the 10k nominal size")
        elif not headline["holds"]:
            print("FAIL: the >=10x warm-over-cold claim does not hold at these sizes")
            failed = True
    sharded_headline = report.get("sharded", {}).get("headline")
    if sharded_headline is not None:
        print(
            f"sharded headline at n={sharded_headline['tree_size']}: "
            f"{sharded_headline['sharded_qps']:.1f} q/s over {sharded_headline['shards']} "
            f"shard(s) vs threaded {sharded_headline['threaded_qps']:.1f} q/s "
            f"({sharded_headline['speedup']:.2f}x, {sharded_headline['cores']} core(s))"
        )
        if sharded_headline["holds"] is None:
            print(f"note: {sharded_headline.get('note', 'sharded claim not evaluated')}")
        elif sharded_headline["tree_size"] >= 10_000 and not sharded_headline["holds"]:
            print("FAIL: the >=1.5x sharded-over-threaded claim does not hold")
            failed = True
    observability = report.get("observability")
    if observability is not None:
        if observability["holds"] is None:
            print("note: the <5% observability-overhead gate is only enforced on full runs")
        elif not observability["holds"]:
            print(
                f"FAIL: metrics + accounting overhead "
                f"{observability['metrics_overhead']:.1%} exceeds the 5% gate"
            )
            failed = True
    return 1 if failed else 0


# -- pytest-benchmark cases ----------------------------------------------------

SMALLEST = min(SIZES)
_DOCS = build_documents(SMALLEST)
_XML = {doc_id: to_xml(tree) for doc_id, tree in _DOCS.items()}
_REQUESTS = build_workload(SMALLEST)


@pytest.fixture(scope="module")
def warm_executor():
    executor = BatchExecutor()
    for doc_id, text in _XML.items():
        executor.store.register_xml(doc_id, text)
    executor.execute_batch(_REQUESTS)  # warm the caches
    return executor


def test_service_warm_batch(benchmark, warm_executor):
    results = benchmark(lambda: warm_executor.execute_batch(_REQUESTS))
    assert all(result.ok for result in results)


def test_service_warm_single_query(benchmark, warm_executor):
    request = _REQUESTS[0]
    result = benchmark(lambda: warm_executor.execute(request))
    assert result.ok


@pytest.mark.parametrize("doc_id", sorted(_XML) if not SMOKE else sorted(_XML)[:1])
def test_service_cold_registration(benchmark, doc_id):
    def register():
        executor = BatchExecutor()
        executor.store.register_xml(doc_id, _XML[doc_id])
        return executor

    executor = benchmark(register)
    assert len(executor.store) == 1


@pytest.fixture(scope="module")
def sharded_executor():
    executor = ShardedExecutor(shards=2)
    mapping = balanced_doc_ids(_XML, 2)
    requests = [dataclasses.replace(r, doc=mapping[r.doc]) for r in _REQUESTS]
    for doc_id, text in _XML.items():
        executor.register_payload({"doc": mapping[doc_id], "xml": text})
    executor.execute_batch(requests)  # warm the per-shard caches
    yield executor, requests
    executor.close()


def test_service_sharded_batch(benchmark, sharded_executor):
    executor, requests = sharded_executor
    results = benchmark(lambda: executor.execute_batch(requests))
    assert all(result.ok for result in results)


def test_batch_answers_byte_identical_to_sequential_evaluate(warm_executor):
    """The acceptance cross-check, runnable as a plain test at smoke size."""
    check_byte_identical(warm_executor, _REQUESTS, _DOCS)


def test_sharded_answers_byte_identical_to_threaded(warm_executor, sharded_executor):
    """The backends must serve byte-identical answers for the same workload."""
    executor, requests = sharded_executor
    threaded_results = warm_executor.execute_batch(_REQUESTS)
    sharded_results = executor.execute_batch(requests)
    for ours, theirs in zip(threaded_results, sharded_results):
        assert ours.ok and theirs.ok
        assert json.dumps(ours.to_json_dict()["answers"]) == json.dumps(
            theirs.to_json_dict()["answers"]
        )


if __name__ == "__main__":
    raise SystemExit(main())
