"""Benchmark: join-tree SQL lowering vs the flat-join lowering, plus the
out-of-core soak that proves streamed answers run in bounded memory.

Three sections, all emitted into ``BENCH_sqlite.json``:

* ``results``/``headline`` -- the PR 6 flat lowering joins every query
  variable in one SELECT, so each witness-only variable multiplies the
  enumerated tuple space by its candidate-set size.  The join-tree lowering
  (``lowering="tree"``) reduces bag-by-bag along the reduced, head-rooted
  decomposition: witness variables collapse to threshold aggregates or
  first-witness ``EXISTS`` probes and never join.  ``pain_*`` entries are the
  shapes that lowering targets -- long labeled ``Following``/``Child+``
  chains and width-2 cyclic cores with witness dangles -- and the committed
  headline (minimum tree-over-flat speedup at the largest size) must meet
  the >= 5x acceptance bar.  ``ablation_*`` entries are kept honest and out
  of the headline: a dense 4-cycle where both lowerings must enumerate the
  cyclic core (~1x) and a two-variable pair query where the lowerings emit
  essentially the same join (parity).
* ``crosscheck`` -- byte-identity of the tree lowering against the
  in-memory engines (planner evaluation and the decomposition engine's
  Yannakakis enumeration) at 10k-100k nodes.
* ``soak`` -- a 1M-node document registered into a *file-backed* accel
  database and dropped from memory (the out-of-core serving configuration).
  The same query is answered twice: streamed through the server-side cursor
  (``stream_answers``, ``fetchmany`` batches) with answers consumed and
  discarded, and fully materialized into a list.  ``tracemalloc`` peaks for
  the two phases must differ by >= 4x -- streaming keeps peak memory at the
  batch size, not the result size.  ``resource.ru_maxrss`` is recorded for
  the whole process as corroboration.  Wall clock is reported alongside the
  memory claim: the same query is timed through the fastest resident
  enumeration path -- the decomposition engine's Yannakakis answer
  enumeration, the same in-memory reference the cross-check uses for k-ary
  heads -- at the same scale (``inmemory_seconds`` / ``sql_over_inmemory``),
  so the report shows what out-of-core answering costs in seconds, not just
  what it saves in bytes.

Byte-identity between the two lowerings is asserted on every measured pain
and ablation instance.  Run standalone
(``python benchmarks/bench_sqlite.py``) to regenerate ``BENCH_sqlite.json``;
``BENCH_SMOKE=1`` shrinks every section for CI.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import resource
import statistics
import tempfile
import time
import tracemalloc

import pytest
from bench_config import SMOKE, scaled

from repro.backends.sqlite import SQLiteBackend
from repro.decomposition.yannakakis import evaluate_answers
from repro.evaluation.planner import evaluate
from repro.queries import parse_query
from repro.trees import TreeStructure, random_tree
from repro.trees.node import Node
from repro.trees.tree import Tree

# The 500 size is shared between the full and smoke grids on purpose:
# check_regression.py matches entries on (query, tree_size), so the smoke run
# needs at least one size present in the committed full-size baseline.
SIZES = scaled((500, 1_000), (500,))

#: Sizes for the byte-identity cross-check against the in-memory engines.
CROSSCHECK_SIZES = scaled((10_000, 100_000), (2_000, 5_000))

#: Node count of the out-of-core soak document.
SOAK_NODES = scaled(1_000_000, 50_000)

#: The soak query: one answer per labeled parent/child edge, ~n/3 rows.
SOAK_QUERY = "Q(x, y) <- A(x), Child(x, y)"

#: Shapes the join-tree lowering targets: every non-head variable is
#: witness-only, so the flat join's tuple space is larger by the product of
#: their candidate-set sizes while the tree lowering reduces each to a
#: threshold aggregate or a first-witness EXISTS.
PAIN_QUERIES = {
    "pain_following_chain3": (
        "Q(x0) <- A(x0), Following(x0, x1), B(x1), Following(x1, x2), C(x2)"
    ),
    "pain_mixed_chain4": (
        "Q(x0) <- A(x0), Child+(x0, x1), B(x1), Following(x1, x2), C(x2), "
        "Child+(x2, x3), A(x3)"
    ),
    "pain_triangle_w2": (
        "Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z), B(y), C(z)"
    ),
    "pain_triangle_fan": (
        "Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z), B(y), C(z), "
        "Following(x, w), B(w), NextSibling+(x, v), C(v)"
    ),
}

#: Where the join tree does NOT dominate, kept honest and out of the
#: headline: the dense 4-cycle forces both lowerings to enumerate the cyclic
#: core's pairs (near parity), and the two-variable pair query lowers to
#: essentially the same single join either way.
ABLATION_QUERIES = {
    "ablation_cycle4": (
        "Q(a) <- A(a), Child+(a, b), B(b), Following(b, c), C(c), "
        "Child+(d, c), A(d), Following(a, d)"
    ),
    "ablation_pair_child": "Q(x, y) <- A(x), Child(x, y), B(y)",
}

ALL_QUERIES = {**PAIN_QUERIES, **ABLATION_QUERIES}

#: Cross-check queries and which in-memory engine produces the reference
#: answers: the planner's propagation path for the monadic shapes, the
#: decomposition engine's Yannakakis enumeration for the k-ary pair.
CROSSCHECK_QUERIES = {
    "monadic_childplus": ("Q(x) <- A(x), Child+(x, y), B(y)", "planner"),
    "monadic_following": ("Q(x) <- A(x), Following(x, y), B(y)", "planner"),
    "pair_childplus": ("Q(x, y) <- A(x), Child+(x, y), B(y)", "yannakakis"),
}


def _tree(size: int):
    return random_tree(size, alphabet=("A", "B", "C"), seed=42)


def _median_time(function, repeats: int) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return statistics.median(timings)


def _entry(size, name, kind, pain, flat, tree):
    entry = {
        "tree_size": size,
        "query": name,
        "kind": kind,
        "pain_case": pain,
        "flat_seconds": flat,
        "tree_seconds": tree,
        "speedup": flat / tree if tree > 0 else float("inf"),
    }
    print(
        f"n={size:>6} {name:<24} {kind:<10} flat={flat:.4f}s "
        f"tree={tree:.4f}s speedup={entry['speedup']:.1f}x"
    )
    return entry


def _measure_lowering(backend, doc_id, query, repeats):
    """Byte-identity check plus median timings for one query, both lowerings."""
    tree_rows = backend.evaluate(doc_id, query, lowering="tree")
    flat_rows = backend.evaluate(doc_id, query, lowering="flat")
    if tree_rows != flat_rows:
        raise AssertionError(f"tree/flat lowering mismatch: {query}")
    tree = _median_time(lambda: backend.evaluate(doc_id, query, lowering="tree"), repeats)
    flat = _median_time(lambda: backend.evaluate(doc_id, query, lowering="flat"), repeats)
    return flat, tree


def _crosscheck_in_memory(size: int) -> dict:
    """The tree lowering agrees with the in-memory engines at ``size`` nodes."""
    tree = _tree(size)
    structure = TreeStructure(tree)
    rows_by_query = {}
    with SQLiteBackend() as backend:
        backend.register_tree("doc", tree)
        for name, (text, engine) in CROSSCHECK_QUERIES.items():
            query = parse_query(text)
            if engine == "planner":
                reference = sorted(evaluate(query, structure))
            else:
                reference = sorted(evaluate_answers(query, structure))
            sql = sorted(backend.evaluate("doc", query, lowering="tree"))
            streamed = list(backend.stream_answers("doc", query))
            if not (repr(reference) == repr(sql) == repr(streamed)):
                raise AssertionError(f"in-memory/SQL answer mismatch: {name} (n={size})")
            rows_by_query[name] = len(sql)
    print(f"crosscheck n={size:>7}: {rows_by_query} byte-identical")
    return rows_by_query


def _synthetic_tree(size: int, seed: int = 42) -> Tree:
    """A ``size``-node tree built in O(size) for the out-of-core soak.

    ``random_tree`` rebuilds its eligible-parent list per node (quadratic --
    unusable at 1M), so the soak attaches each node to a uniformly random
    member of a bounded window of recently added nodes instead.  Label
    frozensets are shared across nodes to keep the build itself cheap.
    """
    rng = random.Random(seed)
    labels = [frozenset({"A"}), frozenset({"B"}), frozenset({"C"})]
    root = Node(labels[0])
    window = [root]
    for count in range(1, size):
        parent = window[rng.randrange(len(window))]
        child = parent.add_child(Node(labels[count % 3]))
        window.append(child)
        if len(window) > 64:
            window.pop(0)
    return Tree(root)


def _soak(nodes: int) -> dict:
    """Register an out-of-core document, stream vs materialize one query.

    Also times the same query through the resident Yannakakis enumeration
    before the tree is dropped: the memory claim (streaming stays bounded)
    says nothing about wall clock, so the report records what out-of-core
    answering costs in seconds relative to keeping the document resident.
    The reference is ``evaluate_answers`` -- the same one the cross-check
    uses for k-ary heads -- because the planner's static x-property tier
    enumerates k-ary answers per candidate tuple and is quadratic here
    (minutes at 20k nodes vs ~0.5s at 100k for the Yannakakis path).
    """
    query = parse_query(SOAK_QUERY)
    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "soak.db")
        build_start = time.perf_counter()
        tree = _synthetic_tree(nodes)
        build_seconds = time.perf_counter() - build_start
        with SQLiteBackend(db_path) as backend:
            register_start = time.perf_counter()
            backend.register_tree("soak", tree)
            register_seconds = time.perf_counter() - register_start
            # Wall-clock reference point at the same scale: the resident
            # in-memory path (structure build + evaluation counted
            # separately, so the recurring per-query cost is visible).
            structure_start = time.perf_counter()
            structure = TreeStructure(tree)
            structure.index
            structure_seconds = time.perf_counter() - structure_start
            inmemory_start = time.perf_counter()
            inmemory_rows = len(evaluate_answers(query, structure))
            inmemory_seconds = time.perf_counter() - inmemory_start
            del structure
            # Drop the in-memory tree: from here on the document exists only
            # in the accel database -- the accel-only serving configuration.
            del tree
            gc.collect()

            tracemalloc.start()
            stream_start = time.perf_counter()
            rows = 0
            for _ in backend.stream_answers("soak", query):
                rows += 1
            stream_seconds = time.perf_counter() - stream_start
            _, streamed_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

            tracemalloc.start()
            materialized = list(backend.stream_answers("soak", query))
            _, materialized_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            if len(materialized) != rows:
                raise AssertionError("streamed and materialized row counts differ")
            if inmemory_rows != rows:
                raise AssertionError("in-memory and streamed row counts differ")
            del materialized
            gc.collect()
            db_bytes = os.path.getsize(db_path)
    soak = {
        "nodes": nodes,
        "query": SOAK_QUERY,
        "rows": rows,
        "build_seconds": build_seconds,
        "register_seconds": register_seconds,
        "stream_seconds": stream_seconds,
        "structure_seconds": structure_seconds,
        "inmemory_seconds": inmemory_seconds,
        "sql_over_inmemory": (
            stream_seconds / inmemory_seconds if inmemory_seconds else float("inf")
        ),
        "db_bytes": db_bytes,
        "streamed_peak_bytes": streamed_peak,
        "materialized_peak_bytes": materialized_peak,
        "peak_ratio": materialized_peak / streamed_peak if streamed_peak else float("inf"),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "bounded": streamed_peak * 4 <= materialized_peak,
    }
    print(
        f"soak n={nodes}: {rows} rows, streamed peak "
        f"{streamed_peak / 1e6:.1f}MB vs materialized "
        f"{materialized_peak / 1e6:.1f}MB ({soak['peak_ratio']:.1f}x), "
        f"bounded={soak['bounded']}, wall clock SQL {stream_seconds:.2f}s vs "
        f"in-memory {inmemory_seconds:.2f}s ({soak['sql_over_inmemory']:.1f}x)"
    )
    return soak


def run(sizes=SIZES, repeats: int = 3) -> dict:
    """Measure tree vs flat lowerings, cross-check, and run the soak."""
    results = []
    for size in sizes:
        tree = _tree(size)
        with SQLiteBackend() as backend:
            backend.register_tree("doc", tree)
            for name, text in ALL_QUERIES.items():
                query = parse_query(text)
                flat, fast = _measure_lowering(backend, "doc", query, repeats)
                pain = name in PAIN_QUERIES
                kind = "pain" if pain else "ablation"
                results.append(_entry(size, name, kind, pain, flat, fast))
    crosscheck = {size: _crosscheck_in_memory(size) for size in CROSSCHECK_SIZES}
    soak = _soak(SOAK_NODES)
    largest = max(sizes)
    headline = min(
        entry["speedup"]
        for entry in results
        if entry["tree_size"] == largest and entry["pain_case"]
    )
    ablation_at_largest = [
        entry
        for entry in results
        if entry["tree_size"] == largest and not entry["pain_case"]
    ]
    return {
        "benchmark": "join-tree SQL lowering vs flat join + out-of-core soak",
        "sizes": list(sizes),
        "repeats": repeats,
        "results": results,
        "headline": {
            "tree_size": largest,
            "min_speedup": headline,
            "claim": (
                "join-tree lowering >= 5x faster than the flat-join lowering "
                "on labeled chain and width-2 cyclic pain queries"
            ),
            "holds": headline >= 5.0 and soak["bounded"],
        },
        "ablation": {
            "tree_size": largest,
            "min_speedup": min(e["speedup"] for e in ablation_at_largest),
            "max_speedup": max(e["speedup"] for e in ablation_at_largest),
        },
        "crosscheck": {
            "sizes": list(CROSSCHECK_SIZES),
            "rows": {str(size): rows for size, rows in crosscheck.items()},
            "byte_identical": True,
        },
        "soak": soak,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sqlite.json", help="output JSON path")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(
        f"wrote {args.out}; headline min pain-case speedup on "
        f"n={report['headline']['tree_size']}: {report['headline']['min_speedup']:.1f}x; "
        f"soak peak ratio {report['soak']['peak_ratio']:.1f}x"
    )
    if not report["headline"]["holds"]:
        print("FAIL: the >=5x speedup / bounded-memory soak claim does not hold")
        return 1
    return 0


# -- pytest-benchmark cases ----------------------------------------------------

SMALLEST = min(SIZES)
BENCH_TREE = _tree(SMALLEST)


def _bench_backend():
    backend = SQLiteBackend()
    backend.register_tree("doc", BENCH_TREE)
    return backend


@pytest.mark.parametrize("name", sorted(PAIN_QUERIES))
def test_tree_lowering_pain_queries(benchmark, name):
    query = parse_query(PAIN_QUERIES[name])
    with _bench_backend() as backend:
        benchmark(lambda: backend.evaluate("doc", query, lowering="tree"))


@pytest.mark.parametrize(
    "name", ["pain_mixed_chain4"] if SMOKE else sorted(PAIN_QUERIES)
)
def test_flat_lowering_pain_queries(benchmark, name):
    query = parse_query(PAIN_QUERIES[name])
    with _bench_backend() as backend:
        benchmark(lambda: backend.evaluate("doc", query, lowering="flat"))


def test_join_tree_byte_identity_smoke():
    """Tree lowering, flat lowering and the in-memory engines agree."""
    rows = _crosscheck_in_memory(1_000)
    assert all(count > 0 for count in rows.values())


def test_streamed_soak_bounded_memory():
    """Streaming keeps peak memory well below full materialization.

    50k nodes is the smallest size where the materialized answer list
    dwarfs the streamed path's fixed floor (one fetchmany batch plus
    cursor machinery) by the required margin.
    """
    soak = _soak(50_000)
    assert soak["rows"] > 0
    assert soak["bounded"]


def test_tree_speedup_meets_claim():
    """A relaxed wall-clock guard against losing the speedup entirely.

    The real >=5x claim is enforced by ``main`` (run by CI's bench-smoke job
    and gated by ``check_regression.py`` against the committed baseline);
    this pytest variant uses a 2x margin at the smallest size so it stays
    robust on loaded machines, while still catching a regression that makes
    the join-tree lowering no faster than the flat join.
    """
    query = parse_query(PAIN_QUERIES["pain_following_chain3"])
    with _bench_backend() as backend:
        tree = _median_time(lambda: backend.evaluate("doc", query, lowering="tree"), 3)
        flat = _median_time(lambda: backend.evaluate("doc", query, lowering="flat"), 3)
    assert flat >= 2.0 * tree


if __name__ == "__main__":
    raise SystemExit(main())
