"""Benchmark ``fig9`` / Theorem 7.1: the succinctness blow-up on D_n.

Times the CQ -> APQ rewriting of the n-diamond queries (the produced APQ size
grows exponentially in n, so the rewriting time does as well) and the
evaluation of D_n on the PS(n, p) scattered path structures.
"""

from __future__ import annotations

import pytest
from bench_config import scaled

from repro.evaluation import evaluate_on_tree
from repro.rewriting import to_apq
from repro.succinctness import all_ps_structures, diamond_query, ps_structure


@pytest.mark.parametrize("n", scaled([1, 2, 3, 4], [1, 2]))
def test_rewrite_diamond_to_apq(benchmark, n):
    query = diamond_query(n)
    apq = benchmark(lambda: to_apq(query))
    assert apq.is_acyclic()
    assert len(apq) >= 1


@pytest.mark.parametrize("n", scaled([2, 3, 4], [2]))
def test_evaluate_diamond_on_one_ps_structure(benchmark, n):
    query = diamond_query(n)
    tree = ps_structure(n, 3, tuple(bool(i % 2) for i in range(n)))
    result = benchmark(lambda: evaluate_on_tree(query, tree))
    assert result


@pytest.mark.parametrize("n", scaled([2, 3], [2]))
def test_evaluate_diamond_on_all_ps_structures(benchmark, n):
    query = diamond_query(n)
    trees = [tree for _choices, tree in all_ps_structures(n, 2)]

    def run() -> bool:
        return all(evaluate_on_tree(query, tree) for tree in trees)

    assert benchmark(run)
