"""Benchmark ``table1``: the two sides of the dichotomy (Table I).

The classification itself is instantaneous; what the paper's Table I claims is
a *complexity gap*, which these benchmarks make measurable:

* ``test_tractable_*`` -- cyclic queries over tractable signatures, evaluated
  by the X-property algorithm: time stays small and grows mildly with query
  and tree size (combined complexity O(||A|| * |Q|)).
* ``test_hard_*`` -- the same query shapes over NP-hard signatures evaluated
  by the generic backtracking engine, plus the Theorem 5.1 reduction queries,
  whose search effort grows combinatorially with the instance.
"""

from __future__ import annotations

import pytest
from bench_config import scaled

from repro.evaluation import Engine, is_satisfied
from repro.evaluation.backtracking import boolean_query_holds as bt_holds
from repro.hardness import random_cyclic_query, theorem51_workload
from repro.trees import TreeStructure, random_tree
from repro.trees.axes import Axis
from repro.xproperty import classify, Complexity, table1

TREE = random_tree(scaled(150, 60), alphabet=("A", "B", "C"), seed=0, unlabeled_probability=0.1)
STRUCTURE = TreeStructure(TREE)


def test_classification_of_all_cells(benchmark):
    cells = benchmark(table1)
    assert len(cells) == 28


@pytest.mark.parametrize("num_variables", scaled([6, 12, 24], [6]))
def test_tractable_child_plus_star(benchmark, num_variables):
    query = random_cyclic_query(
        (Axis.CHILD_PLUS, Axis.CHILD_STAR),
        num_variables=num_variables,
        num_extra_atoms=num_variables // 2,
        seed=num_variables,
    )
    assert classify(query.signature()) is Complexity.PTIME
    benchmark(lambda: is_satisfied(query, STRUCTURE, engine=Engine.XPROPERTY))


@pytest.mark.parametrize("num_variables", scaled([6, 12, 24], [6]))
def test_tractable_following(benchmark, num_variables):
    query = random_cyclic_query(
        (Axis.FOLLOWING,),
        num_variables=num_variables,
        num_extra_atoms=num_variables // 2,
        seed=num_variables,
    )
    benchmark(lambda: is_satisfied(query, STRUCTURE, engine=Engine.XPROPERTY))


@pytest.mark.parametrize("num_variables", scaled([6, 12, 24], [6]))
def test_tractable_bflr_group(benchmark, num_variables):
    query = random_cyclic_query(
        (Axis.CHILD, Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR),
        num_variables=num_variables,
        num_extra_atoms=num_variables // 2,
        seed=num_variables,
    )
    benchmark(lambda: is_satisfied(query, STRUCTURE, engine=Engine.XPROPERTY))


@pytest.mark.parametrize("num_variables", scaled([6, 12, 24], [6]))
def test_hard_signature_same_shape_backtracking(benchmark, num_variables):
    """The same random cyclic shape over the NP-hard {Child, Child+} cell."""
    query = random_cyclic_query(
        (Axis.CHILD, Axis.CHILD_PLUS),
        num_variables=num_variables,
        num_extra_atoms=num_variables // 2,
        seed=num_variables,
    )
    assert classify(query.signature()) is Complexity.NP_COMPLETE
    benchmark(lambda: bt_holds(query, STRUCTURE))


@pytest.mark.parametrize("clauses", scaled([2, 3, 4], [2]))
def test_hard_theorem51_reduction(benchmark, clauses):
    """Theorem 5.1 reduction queries: effort grows with the 1-in-3 instance."""
    reduction = theorem51_workload(clauses, seed=1)
    structure = reduction.structure()
    benchmark(lambda: bt_holds(reduction.query, structure))
