"""Benchmark ``thm4.1`` / ``fig3``: checking the X-property mechanically.

Times the Definition 3.2 checker for the positive Theorem 4.1 combinations
(the check scans all pairs of arcs) and the counterexample search for the
negative ones, on trees of growing size.
"""

from __future__ import annotations

import pytest
from bench_config import scaled

from repro.trees import Order, random_tree
from repro.trees.axes import Axis
from repro.xproperty import all_counterexamples, has_x_property

TREES = {
    size: random_tree(size, alphabet=("A", "B"), seed=size)
    for size in scaled((15, 30, 60), (15, 30))
}

POSITIVE_CASES = [
    (Axis.CHILD_PLUS, Order.PRE),
    (Axis.CHILD_STAR, Order.PRE),
    (Axis.FOLLOWING, Order.POST),
    (Axis.CHILD, Order.BFLR),
    (Axis.NEXT_SIBLING_PLUS, Order.BFLR),
]

NEGATIVE_CASES = [
    (Axis.FOLLOWING, Order.PRE),
    (Axis.CHILD_PLUS, Order.BFLR),
    (Axis.CHILD, Order.PRE),
]


@pytest.mark.parametrize("size", sorted(TREES))
@pytest.mark.parametrize("axis,order", POSITIVE_CASES, ids=lambda value: str(value))
def test_positive_x_property_check(benchmark, size, axis, order):
    tree = TREES[size]
    result = benchmark(lambda: has_x_property(tree, axis, order))
    assert result is True


@pytest.mark.parametrize("axis,order", NEGATIVE_CASES, ids=lambda value: str(value))
def test_negative_x_property_check(benchmark, axis, order):
    tree = TREES[30]
    benchmark(lambda: has_x_property(tree, axis, order))


def test_figure3_counterexamples(benchmark):
    result = benchmark(all_counterexamples)
    assert all(counterexample.confirms_failure for counterexample in result)
