"""Diff fresh benchmark numbers against committed ``BENCH_*.json`` baselines.

CI's bench-smoke job re-runs the standalone benchmark scripts at smoke sizes
and then calls this checker to compare the *speedup* figures (which are
scale-free and machine-independent enough to diff, unlike raw seconds) against
the committed full-size baselines.  Entries are matched on
``(query, tree_size)``; only sizes present in both files are compared, so a
smoke run (sizes 300/1000) is diffed against the committed file's 1000-node
entries.  A fresh speedup more than ``--factor`` (default 3) times below the
committed one fails the job -- the guard is deliberately loose, flagging only
"the optimisation largely stopped working" regressions, not machine noise.

A benchmark can land in the same PR as its first CI run:
``--allow-missing-baseline`` turns a missing committed file into a warning +
skip instead of an error (scoped to that one invocation, so a typoed
``--committed`` path elsewhere still fails loudly).  The opposite direction,
``--require-baseline``, additionally insists the committed file carries a
*holding* headline claim (``headline.holds == true``) -- CI passes it so a
baseline committed from a failed full-size run cannot make the comparisons
vacuous.

Usage::

    python benchmarks/check_regression.py \\
        --committed BENCH_ac4.json --fresh bench-results/BENCH_ac4_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _speedup_table(report: dict) -> dict[tuple[str, int], float]:
    table = {}
    for entry in report.get("results", []):
        if "speedup" in entry and "query" in entry and "tree_size" in entry:
            table[(entry["query"], entry["tree_size"])] = entry["speedup"]
    return table


def compare(committed: dict, fresh: dict, factor: float) -> list[str]:
    """Return a list of regression messages (empty = all clear)."""
    committed_table = _speedup_table(committed)
    fresh_table = _speedup_table(fresh)
    shared = sorted(set(committed_table) & set(fresh_table))
    if not shared:
        return [
            "no comparable (query, tree_size) entries between committed and fresh "
            "reports; the schemas or size grids have diverged"
        ]
    regressions = []
    for key in shared:
        baseline = committed_table[key]
        current = fresh_table[key]
        if baseline > 0 and current * factor < baseline:
            query, size = key
            regressions.append(
                f"{query} (n={size}): speedup fell {baseline / current:.1f}x "
                f"below baseline ({baseline:.1f}x -> {current:.1f}x)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--committed", required=True, help="committed BENCH_*.json baseline")
    parser.add_argument("--fresh", required=True, help="freshly generated benchmark JSON")
    parser.add_argument(
        "--factor",
        type=float,
        default=3.0,
        help="flag entries whose fresh speedup is this many times below baseline",
    )
    parser.add_argument(
        "--allow-missing-baseline",
        action="store_true",
        help=(
            "warn and skip (exit 0) when the committed baseline file does not "
            "exist -- for a benchmark landing in the same PR as its first CI "
            "run.  Without the flag a missing baseline is an error, so a "
            "typoed --committed path cannot silently disable the gate."
        ),
    )
    parser.add_argument(
        "--require-baseline",
        action="store_true",
        help=(
            "additionally require the committed baseline to carry a headline "
            "whose claim holds (headline.holds == true).  Guards against a "
            "baseline committed from a run whose speedup bar already failed, "
            "which would make every future comparison vacuous.  Mutually "
            "exclusive with --allow-missing-baseline."
        ),
    )
    args = parser.parse_args(argv)
    if args.require_baseline and args.allow_missing_baseline:
        parser.error("--require-baseline and --allow-missing-baseline conflict")
    if not os.path.exists(args.committed):
        message = f"no committed baseline at {args.committed}"
        if args.allow_missing_baseline:
            print(f"WARNING: {message}; skipping the regression comparison")
            return 0
        print(f"ERROR: {message} (pass --allow-missing-baseline for a new benchmark)")
        return 1
    with open(args.committed) as handle:
        committed = json.load(handle)
    if args.require_baseline:
        headline = committed.get("headline", {})
        if headline.get("holds") is not True:
            print(
                f"ERROR: committed baseline {args.committed} has no holding "
                f"headline claim (headline.holds={headline.get('holds')!r}); "
                "regenerate it with a full-size run that meets its speedup bar"
            )
            return 1
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    regressions = compare(committed, fresh, args.factor)
    shared = len(set(_speedup_table(committed)) & set(_speedup_table(fresh)))
    if regressions:
        print(f"{args.fresh}: {len(regressions)} regression(s) vs {args.committed}:")
        for message in regressions:
            print(f"  REGRESSION: {message}")
        return 1
    print(
        f"{args.fresh}: OK vs {args.committed} "
        f"({shared} comparable entries, factor {args.factor}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
