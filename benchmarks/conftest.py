"""Benchmark-suite configuration.

The benchmarks regenerate the measured side of every table/figure of the
paper (see DESIGN.md's per-experiment index).  They are run with

    pytest benchmarks/ --benchmark-only

Sizes are kept moderate so the whole suite finishes in a few minutes; the
experiment modules under ``repro.experiments`` expose the same sweeps with
adjustable parameters for longer runs.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
