"""Ensure the ``src`` layout is importable even without an editable install.

The project is normally installed with ``pip install -e .``; in fully offline
environments where the ``wheel`` package is unavailable that command can fail,
so the test suite also works straight from a checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
