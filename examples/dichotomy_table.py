#!/usr/bin/env python3
"""Regenerate Table I and demonstrate the dichotomy experimentally.

Prints the classification of every one- and two-axis signature (Theorem 1.1 /
Table I) and then shows the practical consequence: the same cyclic query
shape is answered instantly on a tractable signature and requires exponential
search on an NP-hard one.

Run with::

    python examples/dichotomy_table.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.evaluation import Engine, SearchStatistics, is_satisfied
from repro.evaluation.backtracking import boolean_query_holds
from repro.hardness import random_cyclic_query, theorem51_workload
from repro.trees import TreeStructure, random_tree
from repro.trees.axes import Axis
from repro.xproperty import maximal_tractable_sets, render_table1


def main() -> None:
    print("Table I, regenerated from the dichotomy classifier:\n")
    print(render_table1())
    print("\nsubset-maximal tractable axis sets:")
    for tractable_set in maximal_tractable_sets():
        print("  {" + ", ".join(sorted(a.value for a in tractable_set)) + "}")

    # The practical gap: identical query shapes, different signatures.
    tree = random_tree(200, alphabet=("A", "B", "C"), seed=1)
    structure = TreeStructure(tree)
    print("\nsame cyclic query shape, both sides of the frontier "
          f"(random tree with {len(tree)} nodes):")
    for axes, label in (
        ((Axis.CHILD_PLUS, Axis.CHILD_STAR), "tractable {Child+, Child*}"),
        ((Axis.CHILD, Axis.CHILD_PLUS), "NP-hard   {Child, Child+}"),
    ):
        query = random_cyclic_query(axes, num_variables=14, num_extra_atoms=7, seed=9)
        start = time.perf_counter()
        if label.startswith("tractable"):
            result = is_satisfied(query, structure, engine=Engine.XPROPERTY)
        else:
            result = boolean_query_holds(query, structure)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"  {label}: answer={result}  time={elapsed:8.1f} ms")

    # Query complexity on the NP-hard side: Theorem 5.1 reduction queries.
    # Unrestricted backtracking blows up quickly (that is the point), so it is
    # shown for small instances only; larger ones use the exact
    # selection-enumeration decision procedure.
    print("\nTheorem 5.1 reduction queries (fixed 33-node tree, growing query):")
    for clauses in (2, 3):
        reduction = theorem51_workload(clauses, seed=0)
        statistics = SearchStatistics()
        start = time.perf_counter()
        boolean_query_holds(reduction.query, reduction.structure(), statistics=statistics)
        elapsed = (time.perf_counter() - start) * 1000
        print(
            f"  clauses={clauses}  query atoms={reduction.query.size():4d}  "
            f"backtracking time={elapsed:8.1f} ms  search nodes={statistics.nodes_expanded}"
        )
    from repro.hardness import decide_by_selection

    for clauses in (4, 5):
        reduction = theorem51_workload(clauses, seed=0)
        start = time.perf_counter()
        selection = decide_by_selection(reduction)
        elapsed = (time.perf_counter() - start) * 1000
        print(
            f"  clauses={clauses}  query atoms={reduction.query.size():4d}  "
            f"selection-enumeration time={elapsed:8.1f} ms  satisfiable={selection is not None}"
        )


if __name__ == "__main__":
    main()
