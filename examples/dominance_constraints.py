#!/usr/bin/env python3
"""Dominance constraints and their solved forms (the linguistics application).

Dominance constraints partially describe parse trees; deciding their
satisfiability and rewriting them into *solved forms* are the operations the
paper links to Boolean conjunctive queries over trees and to acyclic queries,
respectively.

Run with::

    python examples/dominance_constraints.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.trees import parse_sexpr
from repro.workloads import is_satisfiable_over, parse_dominance_constraints, solved_forms

#: A scope-ambiguous description: the S node dominates both quantified NPs,
#: which must be disjoint (one precedes the other), and each dominates the
#: same embedded verb -- a classic underspecified reading.
AMBIGUOUS = """
# every student reads a book
root : S
root <* np1
root <* np2
np1 : NP
np2 : NP
np1 << np2
np1 <* v
np2 <* v
v : VB
"""

#: An unsatisfiable description: x must properly dominate y and vice versa.
IMPOSSIBLE = """
x <+ y
y <+ x
"""


def main() -> None:
    constraints = parse_dominance_constraints(AMBIGUOUS)
    print("dominance constraint set (as a Boolean conjunctive query):")
    print(" ", constraints)

    forms = solved_forms(constraints)
    print(f"\nsolved forms (acyclic disjuncts, Section 6): {len(forms)}")
    for index, form in enumerate(forms, start=1):
        print(f"  [{index}] {form}")

    # Check the description against two candidate parse trees.
    reading_one = parse_sexpr("(S (NP (NN)) (VP (VB) (NP (NN))))")
    flat_tree = parse_sexpr("(S (VB))")
    print("\nsatisfiable over the transitive-verb parse tree:",
          is_satisfiable_over(constraints, reading_one))
    print("satisfiable over a tree with no NPs:",
          is_satisfiable_over(constraints, flat_tree))

    impossible = parse_dominance_constraints(IMPOSSIBLE)
    print("\ncontradictory description 'x <+ y, y <+ x':")
    print("  solved forms:", len(solved_forms(impossible)), "(empty union = unsatisfiable)")


if __name__ == "__main__":
    main()
