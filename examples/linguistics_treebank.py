#!/usr/bin/env python3
"""Querying a (synthetic) treebank corpus -- the Figure 1 scenario.

The paper motivates conjunctive queries over trees with searches over parsed
natural-language corpora (Penn Treebank).  The Treebank itself is proprietary,
so this example generates a synthetic corpus with the same label inventory and
runs the paper's Figure 1 query plus a few more linguistically flavoured ones,
including a *cyclic* coordination query that exercises the rewriting.

Run with::

    python examples/linguistics_treebank.py [num_sentences]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import evaluate_on_tree, to_apq
from repro.evaluation import Engine, evaluate, is_satisfied
from repro.queries.graph import is_acyclic
from repro.trees import TreeStructure
from repro.workloads import (
    coordinated_sentences_query,
    figure1_query,
    np_with_pp_modifier_query,
    random_corpus,
    verb_with_object_query,
)


def main(num_sentences: int = 40) -> None:
    corpus = random_corpus(num_sentences, max_depth=6, seed=2024)
    structure = TreeStructure(corpus)
    print(
        f"synthetic corpus: {num_sentences} sentences, {len(corpus)} nodes, "
        f"labels {sorted(corpus.alphabet())[:8]}..."
    )

    queries = {
        "Figure 1 (PP following NP in the same sentence)": figure1_query(),
        "NP directly dominating a PP": np_with_pp_modifier_query(),
        "verb with a following NP object": verb_with_object_query(),
        "sentence with coordinated NPs (cyclic)": coordinated_sentences_query(),
    }

    for description, query in queries.items():
        answers = evaluate(query, structure)
        acyclic = "acyclic" if is_acyclic(query) else "CYCLIC"
        print(f"\n{description}")
        print(f"  query ({acyclic}): {query}")
        print(f"  matches: {len(answers)} node(s)")
        if answers:
            sample = sorted(answers)[:5]
            print(f"  first answers (node ids): {sample}")

    # The cyclic coordination query can also be answered by first rewriting it
    # into an acyclic positive query (Section 6) -- same answers, and each
    # disjunct is an XPath-style navigational query.
    cyclic = coordinated_sentences_query()
    apq = to_apq(cyclic)
    direct = evaluate(cyclic, structure)
    via_apq = frozenset().union(*(evaluate(disjunct, structure) for disjunct in apq)) if len(apq) else frozenset()
    print("\nrewriting the coordination query:")
    print(f"  {len(apq)} acyclic disjuncts, answers agree with direct evaluation: {direct == via_apq}")

    # Boolean view: is there any coordinated sentence at all?
    print(
        "  corpus contains a coordinated sentence:",
        is_satisfied(cyclic, structure, engine=Engine.BACKTRACKING),
    )


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    main(count)
