#!/usr/bin/env python3
"""Quickstart: build a tree, pose conjunctive queries, evaluate, rewrite.

Run with::

    python examples/quickstart.py

Covers the core public API in a few minutes of reading:

1. building trees (nested tuples, s-expressions, XML),
2. writing queries (datalog syntax, the fluent builder, XPath),
3. evaluating them with the dichotomy-aware planner,
4. classifying signatures (Table I) and rewriting cyclic queries into
   acyclic positive queries (Section 6).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (
    QueryBuilder,
    classify,
    evaluate_on_tree,
    from_nested,
    parse_query,
    parse_sexpr,
    to_apq,
    xpath_to_cq,
)
from repro.evaluation import choose_engine
from repro.queries import cq_to_xpath


def main() -> None:
    # ------------------------------------------------------------------ trees
    # A small parse tree; nodes are identified by pre-order ids (0 = root).
    sentence = from_nested(
        (
            "S",
            [
                ("NP", [("DT", []), ("NN", [])]),
                ("VP", [("VB", []), ("NP", [("NN", [])])]),
                ("PP", [("IN", []), ("NP", [("NN", [])])]),
            ],
        )
    )
    same_sentence = parse_sexpr(
        "(S (NP (DT) (NN)) (VP (VB) (NP (NN))) (PP (IN) (NP (NN))))"
    )
    assert len(sentence) == len(same_sentence)
    print(f"tree with {len(sentence)} nodes over alphabet {sorted(sentence.alphabet())}")

    # ---------------------------------------------------------------- queries
    # Datalog-style rule notation (the paper's notation).
    figure1 = parse_query(
        "Q(z) <- S(x), Child+(x, y), NP(y), Child+(x, z), PP(z), Following(y, z)"
    )
    # The same query via the fluent builder.
    built = (
        QueryBuilder("Q")
        .label("S", "x")
        .descendant("x", "y")
        .label("NP", "y")
        .descendant("x", "z")
        .label("PP", "z")
        .following("y", "z")
        .select("z")
        .build()
    )
    assert str(built) == str(figure1)
    # And an XPath expression, translated into an acyclic conjunctive query.
    xpath_query = xpath_to_cq("//NP[NN]")

    # ------------------------------------------------------------- evaluation
    print("\nFigure 1 query:", figure1)
    print("  planner engine:", choose_engine(figure1).value)
    print("  answers (node ids):", sorted(evaluate_on_tree(figure1, sentence)))

    print("\nXPath //NP[NN] as a conjunctive query:", xpath_query)
    print("  answers:", sorted(evaluate_on_tree(xpath_query, sentence)))

    # -------------------------------------------------------------- dichotomy
    print("\nComplexity of the query's signature (Theorem 1.1 / Table I):")
    print("  Figure 1 uses", figure1.signature(), "->", classify(figure1.signature()).value)
    cyclic = parse_query("Q <- A(x), Child(x, y), B(y), Child+(x, z), Child(y, z)")
    print("  ", cyclic.signature(), "->", classify(cyclic.signature()).value)

    # -------------------------------------------------------------- rewriting
    apq = to_apq(figure1)
    print(f"\nCQ -> APQ rewriting (Section 6): {len(apq)} acyclic disjunct(s)")
    for disjunct in apq:
        print("   ", disjunct)
    # Acyclic monadic disjuncts over XPath axes can be rendered back as XPath.
    print("\nAs XPath (Remark 6.1):")
    for disjunct in apq:
        print("   ", cq_to_xpath(disjunct))


if __name__ == "__main__":
    main()
