#!/usr/bin/env python3
"""Trace the Figure 8 rewriting and the Section 7 succinctness blow-up.

Part 1 replays the paper's Figure 8: the introduction query is rewritten into
an acyclic positive query step by step (Following elimination, join lifters,
dropping unsatisfiable disjuncts), with the full derivation printed.

Part 2 measures the blow-up on the diamond queries D_n of Section 7: the
produced APQ grows exponentially while D_n itself grows linearly
(Theorem 7.1 says no translation can avoid this).

Run with::

    python examples/rewrite_to_xpath.py [max_n]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import figure8
from repro.succinctness import measure_blowup, render_blowup_table


def main(max_n: int = 4) -> None:
    print("=" * 70)
    print("Part 1: the Figure 8 rewrite derivation")
    print("=" * 70)
    result = figure8.run()
    print(result.render(include_trace=False))
    print("\nfirst rewrite steps of the derivation:")
    for step in result.trace.steps[:6]:
        print()
        print(step)
    print(f"\n... {len(result.trace) - 6} further steps omitted ...")

    print()
    print("=" * 70)
    print("Part 2: the succinctness blow-up on the diamond queries (Theorem 7.1)")
    print("=" * 70)
    print(render_blowup_table(measure_blowup(max_n)))


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    main(n)
