#!/usr/bin/env python3
"""XPath-style and join queries over a synthetic XML auction document.

Demonstrates the XML application of the introduction: parse/generate an XML
document, run navigational (XPath) queries through the XPath -> CQ translator,
and run a cyclic join query that plain XPath cannot express directly but the
conjunctive-query machinery evaluates and can rewrite into an XPath union.

Run with::

    python examples/xpath_on_xml.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import evaluate_on_tree, from_xml, to_apq, xpath_to_cq
from repro.queries import apq_to_xpath, cq_to_xpath
from repro.trees import to_xml
from repro.workloads import auction_document, busy_auction_query, items_with_payment_query


def main() -> None:
    # A synthetic auction document (XMark-flavoured); it can be serialised to
    # XML and parsed back, so real documents work the same way.
    document = auction_document(num_items=30, num_people=12, num_bids=25, seed=7)
    xml_text = to_xml(document)
    reparsed = from_xml(xml_text)
    print(f"document: {len(document)} nodes ({len(xml_text)} bytes as XML)")

    # ----------------------------------------------------- navigational XPath
    for expression in ("//item[payment]", "//person[profile/interest]", "//open_auction/bidder"):
        query = xpath_to_cq(expression)
        answers = evaluate_on_tree(query, reparsed)
        print(f"\nXPath {expression}")
        print(f"  as CQ: {query}")
        print(f"  matches: {len(answers)}")

    # The same query written directly in datalog notation gives the same result.
    datalog_answers = evaluate_on_tree(items_with_payment_query(), reparsed)
    xpath_answers = evaluate_on_tree(xpath_to_cq("//item[payment]"), reparsed)
    print("\ndatalog and XPath routes agree:", datalog_answers == xpath_answers)

    # ----------------------------------------------------------- cyclic joins
    join_query = busy_auction_query()
    answers = evaluate_on_tree(join_query, reparsed)
    print(f"\ncyclic join query (auctions with two ordered bidders): {join_query}")
    print(f"  matches: {len(answers)}")

    apq = to_apq(join_query)
    print(f"  rewritten into {len(apq)} acyclic disjunct(s) (Section 6)")
    expressible = [d for d in apq if _xpath_expressible(d)]
    if expressible:
        print("  as an XPath union (Remark 6.1):")
        for disjunct in expressible:
            print("    ", cq_to_xpath(disjunct))


def _xpath_expressible(query) -> bool:
    try:
        cq_to_xpath(query)
        return True
    except Exception:
        return False


if __name__ == "__main__":
    main()
