"""SLO-asserting load harness: concurrent clients against real ``cq-trees serve``.

Closes the observability loop from the *outside*: where ``service_smoke.py``
checks the protocol, this harness drives real client traffic over the mixed
workload (``repro.workloads`` auction + linguistics corpus at the ~1k nominal
size) against a real server process, in two phases per serve mode:

* **load phase** -- N concurrent persistent connections, each issuing its
  share of the workload.  Every Kth response is cross-checked (count and
  answers) against precomputed direct ``evaluate()`` results; one wrong
  answer fails the run regardless of ``--report-only``.  The p50/p99 derived
  from the ``/metrics`` histogram *delta* over the phase (scraped before and
  after) are gated against ``--slo-p50-ms`` / ``--slo-p99-ms``.
* **agreement phase** -- one connection, no queueing.  Client-side p50/p99
  must agree with the ``/metrics``-derived p50/p99 to within one bucket of
  the fixed latency grid.  Agreement is asserted *without* concurrency on
  purpose: the server histogram measures service time (the timer starts when
  the handler picks the request up), while a concurrent client measures
  response time including queue wait -- on a loaded box the two legitimately
  diverge, and conflating them would make the assertion meaningless.  The
  unqueued phase is precisely the regime where honest telemetry must match
  the wire, bucket for bucket.

After both phases, ``/stats`` must show a populated plan-vs-actual drift
table and an HTTP latency summary for ``/query`` -- the closed loop.

Both serve modes run by default: the threaded front end and the async sharded
front end (``--async --shards N``).  A warm-up pass (one request per workload
entry, excluded from every measured window) precedes the clock so cold
parse/compile/plan latencies do not pollute the comparison.

Usage: ``python scripts/service_load.py [--connections 4] [--report-only]``
(exit code 0 on success).
"""

from __future__ import annotations

import argparse
import bisect
import json
import math
import os
import re
import socket
import subprocess
import sys
import threading
import time
import urllib.request
from http.client import HTTPConnection

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.evaluation import evaluate  # noqa: E402
from repro.observability.metrics import percentile_from_buckets  # noqa: E402
from repro.queries import parse_query, xpath_to_cq  # noqa: E402
from repro.trees import TreeStructure, to_xml  # noqa: E402
from repro.workloads import auction_document, random_corpus  # noqa: E402

#: The mixed wire workload: datalog + XPath, monadic + Boolean, mixed
#: propagators, over both documents (the ~1k-node generator calibration from
#: ``benchmarks/bench_service.py``).
WORKLOAD: list[dict] = [
    {"doc": "auction", "query": "Q(i) <- item(i), Child(i, p), payment(p)"},
    {"doc": "auction", "xpath": "//description//listitem"},
    {"doc": "auction", "xpath": "//person[profile/interest]", "propagator": "ac3"},
    {
        "doc": "auction",
        "query": (
            "Q <- open_auction(a), Child(a, b1), bidder(b1), "
            "Child(a, b2), bidder(b2), Following(b1, b2)"
        ),
    },
    {"doc": "corpus", "query": "Q(x) <- NP(x), Child(x, y), NN(y)"},
    {"doc": "corpus", "xpath": "//NP[NN]"},
    {"doc": "corpus", "query": "Q(v) <- VP(v), Child(v, w), VB(w)", "propagator": "hybrid"},
    {"doc": "corpus", "xpath": "//VP[VB]/NP", "propagator": "ac3"},
]

QUERY_BUCKET_RE = re.compile(
    r'^cqtrees_http_request_seconds_bucket\{route="/query",le="([^"]+)"\} (\d+)$'
)


def build_documents() -> dict:
    return {
        "auction": auction_document(seed=42, num_items=55, num_people=30, num_bids=85),
        "corpus": random_corpus(seed=42, num_sentences=45),
    }


def expected_bodies(documents: dict) -> tuple[list[bytes], list[str], list[int]]:
    """``(wire bodies, expected answers JSON, expected counts)`` per workload slot."""
    structures = {doc_id: TreeStructure(tree) for doc_id, tree in documents.items()}
    bodies, answers, counts = [], [], []
    for request in WORKLOAD:
        query = (
            xpath_to_cq(request["xpath"]) if "xpath" in request else parse_query(request["query"])
        )
        direct = sorted(
            evaluate(query, structures[request["doc"]], propagator=request.get("propagator", "ac4"))
        )
        bodies.append(json.dumps(request).encode("utf-8"))
        answers.append(json.dumps([list(answer) for answer in direct]))
        counts.append(len(direct))
    return bodies, answers, counts


class ClientWorker(threading.Thread):
    """One persistent connection issuing its share of the workload."""

    def __init__(self, index, host, port, requests, check_every, prepared, errors):
        super().__init__(name=f"load-client-{index}", daemon=True)
        self.index = index
        self.host, self.port = host, port
        self.requests = requests
        self.check_every = check_every
        self.bodies, self.answers, self.counts = prepared
        self.errors = errors  # shared; list.append is atomic under the GIL
        self.latencies: list[float] = []

    def run(self) -> None:
        connection = HTTPConnection(self.host, self.port, timeout=60)
        try:
            # Disable Nagle: http.client writes headers and body separately,
            # and the resulting Nagle/delayed-ACK interaction can add ~40ms
            # stalls per request that have nothing to do with the server.
            connection.connect()
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            for position in range(self.requests):
                slot = (self.index + position) % len(WORKLOAD)
                started = time.perf_counter()
                connection.request(
                    "POST", "/query", self.bodies[slot], {"Content-Type": "application/json"}
                )
                response = connection.getresponse()
                raw = response.read()
                self.latencies.append(time.perf_counter() - started)
                if response.status != 200:
                    self.errors.append(
                        f"client {self.index}: HTTP {response.status} at request "
                        f"{position}: {raw[:200]!r}"
                    )
                    return
                if position % self.check_every == 0:
                    payload = json.loads(raw)
                    if payload["count"] != self.counts[slot] or (
                        json.dumps(payload["answers"]) != self.answers[slot]
                    ):
                        self.errors.append(
                            f"client {self.index}: WRONG ANSWER at request {position} "
                            f"(workload slot {slot}): got count={payload['count']}, "
                            f"expected {self.counts[slot]}"
                        )
                        return
        except OSError as error:
            self.errors.append(f"client {self.index}: connection error: {error}")
        finally:
            connection.close()


def call(base: str, method: str, path: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def scrape_query_buckets(base: str) -> dict[float, int]:
    """Cumulative ``/query`` latency bucket counts keyed by ``le`` bound."""
    with urllib.request.urlopen(base + "/metrics", timeout=60) as response:
        text = response.read().decode("utf-8")
    cumulative: dict[float, int] = {}
    for line in text.splitlines():
        match = QUERY_BUCKET_RE.match(line)
        if match:
            le = float("inf") if match.group(1) == "+Inf" else float(match.group(1))
            cumulative[le] = int(match.group(2))
    return cumulative


def bucket_delta(before: dict[float, int], after: dict[float, int]) -> tuple[list, list]:
    """``(finite bounds, non-cumulative per-bucket deltas)`` for one window."""
    bounds = sorted(bound for bound in after if bound != float("inf"))
    cumulative = [after[bound] - before.get(bound, 0) for bound in bounds]
    cumulative.append(after.get(float("inf"), 0) - before.get(float("inf"), 0))
    counts = [cumulative[0]] + [b - a for a, b in zip(cumulative, cumulative[1:])]
    return bounds, counts


def empirical_percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample."""
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def bucket_slot(bounds: list[float], value: float) -> int:
    """Index of the histogram bucket that would hold ``value``."""
    return bisect.bisect_left(bounds, value)


def run_window(base, host, port, connections, requests, check_every, prepared):
    """One measured window: spawn clients, diff ``/metrics`` around them.

    Returns ``(latencies, bounds, deltas, wall_seconds, errors)``; the caller
    decides what the window asserts.
    """
    before = scrape_query_buckets(base)
    errors: list[str] = []
    workers = [
        ClientWorker(index, host, port, requests, check_every, prepared, errors)
        for index in range(connections)
    ]
    wall_started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall_seconds = time.perf_counter() - wall_started
    after = scrape_query_buckets(base)

    latencies = sorted(latency for worker in workers for latency in worker.latencies)
    bounds, deltas = bucket_delta(before, after)
    total = connections * requests
    if not errors and len(latencies) != total:
        errors.append(f"measured {len(latencies)} latencies, expected {total}")
    if not errors and sum(deltas) != total:
        errors.append(
            f"/metrics window counted {sum(deltas)} /query request(s), clients sent {total}"
        )
    return latencies, bounds, deltas, wall_seconds, errors


def run_mode(label: str, extra_args: list[str], args, documents, prepared) -> "dict | None":
    environment = dict(os.environ)
    environment["PYTHONPATH"] = SRC + os.pathsep + environment.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1", "--port", "0"]
        + extra_args,
        stdout=subprocess.PIPE,
        text=True,
        env=environment,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            print(f"FAIL [{label}]: no port announcement in banner {banner!r}")
            return None
        host, port = match.group(1), int(match.group(2))
        base = f"http://{host}:{port}"
        print(f"[{label}] server up at {base}")

        for doc_id, tree in documents.items():
            call(base, "POST", "/documents", {"doc": doc_id, "xml": to_xml(tree)})

        # Warm-up: one pass over the workload, outside every measured window,
        # so cold parse/compile/plan latencies do not pollute the comparison.
        for request in WORKLOAD:
            call(base, "POST", "/query", request)

        report = {"mode": label, "connections": args.connections}
        soft_failures = []

        # Phase 1 -- concurrent load: correctness under concurrency + SLOs on
        # the published (service-time) percentiles.
        latencies, bounds, deltas, wall_seconds, errors = run_window(
            base, host, port, args.connections, args.requests_per_connection,
            args.check_every, prepared,
        )
        if errors:
            for message in errors:
                print(f"FAIL [{label}]: {message}")
            return None
        total = args.connections * args.requests_per_connection
        report["load"] = {
            "requests": total,
            "wall_seconds": round(wall_seconds, 3),
            "throughput_qps": round(total / wall_seconds, 1),
            "checked": args.connections
            * sum(1 for p in range(args.requests_per_connection) if p % args.check_every == 0),
            "wrong_answers": 0,
        }
        for name, q in (("p50", 0.5), ("p99", 0.99)):
            server = percentile_from_buckets(bounds, deltas, q)
            client = empirical_percentile(latencies, q)
            slo_ms = getattr(args, f"slo_{name}_ms")
            entry = {
                "server_ms": round(server * 1000.0, 3),
                "client_ms": round(client * 1000.0, 3),
                "slo_ms": slo_ms,
                "slo_ok": server * 1000.0 <= slo_ms,
            }
            report["load"][name] = entry
            print(
                f"[{label}] load {name}: /metrics {server * 1000.0:.2f} ms "
                f"(SLO {slo_ms:g} ms{' OK' if entry['slo_ok'] else ' VIOLATED'}), "
                f"client-observed {client * 1000.0:.2f} ms incl. queueing"
            )
            if not entry["slo_ok"]:
                soft_failures.append(
                    f"SLO {name}: /metrics-derived {server * 1000.0:.2f} ms > {slo_ms:g} ms"
                )
        print(
            f"[{label}] load: {report['load']['throughput_qps']} q/s over "
            f"{args.connections} connection(s), {report['load']['checked']} "
            f"response(s) cross-checked, 0 wrong"
        )

        # Phase 2 -- unqueued agreement: client and /metrics must agree to
        # within one bucket of the latency grid.
        latencies, bounds, deltas, _, errors = run_window(
            base, host, port, 1, args.agreement_requests, args.check_every, prepared
        )
        if errors:
            for message in errors:
                print(f"FAIL [{label}]: {message}")
            return None
        report["agreement"] = {"requests": args.agreement_requests}
        for name, q in (("p50", 0.5), ("p99", 0.99)):
            server = percentile_from_buckets(bounds, deltas, q)
            client = empirical_percentile(latencies, q)
            client_slot, server_slot = bucket_slot(bounds, client), bucket_slot(bounds, server)
            agrees = abs(client_slot - server_slot) <= 1
            report["agreement"][name] = {
                "client_ms": round(client * 1000.0, 3),
                "server_ms": round(server * 1000.0, 3),
                "client_bucket": client_slot,
                "server_bucket": server_slot,
                "within_one_bucket": agrees,
            }
            print(
                f"[{label}] agreement {name}: client {client * 1000.0:.2f} ms "
                f"(bucket {client_slot}) vs /metrics {server * 1000.0:.2f} ms "
                f"(bucket {server_slot}){' OK' if agrees else ' DISAGREE'}"
            )
            if not agrees:
                soft_failures.append(
                    f"agreement {name}: client bucket {client_slot} vs server bucket "
                    f"{server_slot} differ by more than one"
                )

        # The closed loop: the server must have *accounted* for what it just
        # served -- a populated drift table and an HTTP latency summary.
        stats = call(base, "GET", "/stats")
        accounting = stats.get("plan_accounting", {})
        if not accounting.get("top_drift"):
            print(f"FAIL [{label}]: /stats plan_accounting.top_drift is empty after load")
            return None
        if "/query" not in stats.get("http", {}):
            print(f"FAIL [{label}]: /stats http summary lacks the /query route")
            return None
        report["drift_entries"] = len(accounting["top_drift"])
        report["drift_requests"] = accounting.get("requests", 0)
        print(
            f"[{label}] drift table: {report['drift_entries']} entrie(s) over "
            f"{report['drift_requests']} ledgered request(s)"
        )

        report["soft_failures"] = soft_failures
        if soft_failures and not args.report_only:
            for message in soft_failures:
                print(f"FAIL [{label}]: {message}")
            return None
        for message in soft_failures:
            print(f"WARN [{label}] (report-only): {message}")
        return report
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
            process.kill()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--connections", type=int, default=4, help="concurrent client threads")
    parser.add_argument("--requests-per-connection", type=int, default=25)
    parser.add_argument(
        "--agreement-requests", type=int, default=60,
        help="single-connection requests for the client-vs-/metrics agreement phase",
    )
    parser.add_argument(
        "--check-every", type=int, default=5,
        help="cross-check every Kth response per connection against evaluate()",
    )
    parser.add_argument("--mode", choices=("both", "threaded", "sharded"), default="both")
    parser.add_argument("--shards", type=int, default=2, help="workers for the sharded mode")
    parser.add_argument("--slo-p50-ms", type=float, default=250.0)
    parser.add_argument("--slo-p99-ms", type=float, default=2000.0)
    parser.add_argument(
        "--report-only", action="store_true",
        help="report SLO/agreement violations without failing (wrong answers still fail)",
    )
    parser.add_argument("--out", default=None, help="optional JSON report path")
    args = parser.parse_args(argv)

    documents = build_documents()
    prepared = expected_bodies(documents)
    reports = []
    if args.mode in ("both", "threaded"):
        report = run_mode("threaded", [], args, documents, prepared)
        if report is None:
            return 1
        reports.append(report)
    if args.mode in ("both", "sharded"):
        report = run_mode(
            "async+sharded", ["--async", "--shards", str(args.shards)], args, documents, prepared
        )
        if report is None:
            return 1
        reports.append(report)

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"harness": "service_load", "modes": reports}, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    print("service load harness PASSED" + (" (report-only)" if args.report_only else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
