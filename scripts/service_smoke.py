"""CI smoke test: a real ``cq-trees serve`` process answering real HTTP.

Starts the server as a subprocess on an ephemeral port (``--port 0``),
registers two documents, POSTs a batch of three queries, and asserts the
answers are byte-identical to direct in-process ``evaluate()`` calls.  This
covers the wiring the in-process tests cannot: the console entry point, the
port-announcement banner, and a full network round trip.

Usage: ``python scripts/service_smoke.py`` (exit code 0 on success).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.evaluation import evaluate  # noqa: E402
from repro.queries import parse_query, xpath_to_cq  # noqa: E402
from repro.trees import TreeStructure, to_xml  # noqa: E402
from repro.workloads import auction_document  # noqa: E402

SENTENCE_SEXPR = "(S (NP (DT) (NN)) (VP (VB) (NP (NN))) (PP))"


def call(base: str, method: str, path: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> int:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = SRC + os.pathsep + environment.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
        env=environment,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            print(f"FAIL: no port announcement in banner {banner!r}")
            return 1
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"server up at {base}")

        auction = auction_document(num_items=12, seed=7)
        assert call(base, "GET", "/healthz")["status"] == "ok"
        call(base, "POST", "/documents", {"doc": "auction", "xml": to_xml(auction)})
        call(base, "POST", "/documents", {"doc": "sentence", "sexpr": SENTENCE_SEXPR})

        batch = {
            "requests": [
                {"doc": "auction", "query": "Q(i) <- item(i), Child(i, p), payment(p)"},
                {"doc": "auction", "xpath": "//description//listitem",
                 "propagator": "hybrid"},
                {"doc": "sentence", "xpath": "//NP[NN]"},
            ]
        }
        response = call(base, "POST", "/batch", batch)
        if response["errors"]:
            print(f"FAIL: batch reported errors: {response}")
            return 1

        from repro.trees.builders import parse_sexpr

        structures = {
            "auction": TreeStructure(auction),
            "sentence": TreeStructure(parse_sexpr(SENTENCE_SEXPR)),
        }
        for request, result in zip(batch["requests"], response["results"]):
            query = (
                xpath_to_cq(request["xpath"])
                if "xpath" in request
                else parse_query(request["query"])
            )
            direct = sorted(
                evaluate(
                    query,
                    structures[request["doc"]],
                    propagator=request.get("propagator", "ac4"),
                )
            )
            served = json.dumps(result["answers"]).encode()
            expected = json.dumps([list(answer) for answer in direct]).encode()
            if served != expected:
                print(f"FAIL: answers diverge for {request}: {served} != {expected}")
                return 1
            print(f"ok: {request.get('query', request.get('xpath'))} "
                  f"-> {result['count']} answer(s)")

        stats = call(base, "GET", "/stats")
        print(f"stats: {stats['store']['documents']} documents, "
              f"cache hit rate {stats['cache']['hit_rate']:.2f}")
        print("service smoke PASSED")
        return 0
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
