"""CI smoke test: real ``cq-trees serve`` processes answering real HTTP.

Runs the serving front ends the way CI cannot cover in-process: the console
entry point, the port-announcement banner, and full network round trips.
Two server modes are exercised:

* the threaded front end (``cq-trees serve``), and
* the async sharded front end (``cq-trees serve --async --shards 2``):
  asyncio HTTP/1.1 with persistent connections over two worker processes,
  documents routed by stable hash of their id.

Each mode registers two documents, POSTs a batch of queries, scrapes
``/metrics`` (asserting a well-formed Prometheus exposition with nonzero
request counters -- shard-merged in the sharded mode), evicts a document, and
reads ``/stats``.  Answers are asserted byte-identical to
direct in-process ``evaluate()`` calls -- and byte-identical *across the two
modes*, which is the serving contract the sharded backend must uphold.

Usage: ``python scripts/service_smoke.py`` (exit code 0 on success).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.evaluation import evaluate  # noqa: E402
from repro.queries import parse_query, xpath_to_cq  # noqa: E402
from repro.trees import TreeStructure, to_xml  # noqa: E402
from repro.trees.builders import parse_sexpr  # noqa: E402
from repro.workloads import auction_document  # noqa: E402

SENTENCE_SEXPR = "(S (NP (DT) (NN)) (VP (VB) (NP (NN))) (PP))"

BATCH = {
    "requests": [
        {"doc": "auction", "query": "Q(i) <- item(i), Child(i, p), payment(p)"},
        {"doc": "auction", "xpath": "//description//listitem", "propagator": "hybrid"},
        {"doc": "sentence", "xpath": "//NP[NN]"},
        {"doc": "ghost", "query": "Q <- A(x)"},  # stays a per-request error
    ]
}


def call(base: str, method: str, path: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def scrape_metrics(base: str):
    """``GET /metrics`` raw: ``(content_type, text)`` (it is not JSON)."""
    with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
        return response.getheader("Content-Type"), response.read().decode("utf-8")


def check_metrics(label: str, base: str) -> bool:
    """Scrape ``/metrics`` and assert a well-formed, non-trivial exposition."""
    content_type, text = scrape_metrics(base)
    if not content_type.startswith("text/plain"):
        print(f"FAIL [{label}]: /metrics content type {content_type!r} is not text/plain")
        return False
    families: set = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            families.add(line.split(" ")[2])
        elif line and not line.startswith("#"):
            name = line.split("{", 1)[0].split(" ", 1)[0]
            base_name = re.sub(r"_(bucket|sum|count)$", "", name)
            if name not in families and base_name not in families:
                print(f"FAIL [{label}]: /metrics sample before its TYPE line: {line!r}")
                return False
    ok_requests = re.search(r'^cqtrees_requests_total\{status="ok"\} (\d+)$', text, re.M)
    if not ok_requests or int(ok_requests.group(1)) < 3:
        # The batch above ran three successful requests (plus the ghost error),
        # and with shards the counters arrive merged from the workers.
        print(f"FAIL [{label}]: /metrics ok-request counter missing or zero:\n{text[:400]}")
        return False
    if "cqtrees_http_requests_total" not in text or "_bucket{" not in text:
        print(f"FAIL [{label}]: /metrics lacks HTTP counters or histogram buckets")
        return False
    print(f"[{label}] metrics: {int(ok_requests.group(1))} ok request(s), "
          f"{len(families)} familie(s)")
    return True


def run_mode(label: str, extra_args: list[str], auction) -> "list | None":
    """One full server round trip; returns the batch results (or None on failure)."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = SRC + os.pathsep + environment.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1", "--port", "0"]
        + extra_args,
        stdout=subprocess.PIPE,
        text=True,
        env=environment,
    )
    try:
        banner = process.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            print(f"FAIL [{label}]: no port announcement in banner {banner!r}")
            return None
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"[{label}] server up at {base}")

        if call(base, "GET", "/healthz")["status"] != "ok":
            print(f"FAIL [{label}]: /healthz not ok")
            return None
        call(base, "POST", "/documents", {"doc": "auction", "xml": to_xml(auction)})
        call(base, "POST", "/documents", {"doc": "sentence", "sexpr": SENTENCE_SEXPR})

        response = call(base, "POST", "/batch", BATCH)
        if response["errors"] != 1:  # exactly the ghost request
            print(f"FAIL [{label}]: expected exactly one per-request error: {response}")
            return None
        ghost = response["results"][3]
        if "unknown document" not in ghost.get("error", ""):
            print(f"FAIL [{label}]: ghost request not a per-request error: {ghost}")
            return None
        if "elapsed_ms" not in ghost or "propagator" not in ghost:
            print(f"FAIL [{label}]: error result lacks attribution fields: {ghost}")
            return None

        structures = {
            "auction": TreeStructure(auction),
            "sentence": TreeStructure(parse_sexpr(SENTENCE_SEXPR)),
        }
        for request, result in zip(BATCH["requests"], response["results"]):
            if request["doc"] not in structures:
                continue
            query = (
                xpath_to_cq(request["xpath"])
                if "xpath" in request
                else parse_query(request["query"])
            )
            direct = sorted(
                evaluate(
                    query,
                    structures[request["doc"]],
                    propagator=request.get("propagator", "ac4"),
                )
            )
            served = json.dumps(result["answers"]).encode()
            expected = json.dumps([list(answer) for answer in direct]).encode()
            if served != expected:
                print(f"FAIL [{label}]: answers diverge for {request}: {served} != {expected}")
                return None
            print(f"[{label}] ok: {request.get('query', request.get('xpath'))} "
                  f"-> {result['count']} answer(s)")

        if not check_metrics(label, base):
            return None

        # Profiler round trip: start at a high rate, let it tick while a query
        # is served, then stop and check the folded-stack snapshot shape.  In
        # sharded mode the snapshot merges the parent and both workers.
        started = call(base, "POST", "/profile", {"action": "start", "hz": 500})
        if not started.get("running"):
            print(f"FAIL [{label}]: profiler did not start: {started}")
            return None
        call(base, "POST", "/query", BATCH["requests"][0])
        time.sleep(0.3)
        snapshot = call(base, "GET", "/profile")
        if snapshot.get("samples", 0) <= 0 or not isinstance(snapshot.get("stacks"), dict):
            print(f"FAIL [{label}]: /profile snapshot lacks samples: {snapshot}")
            return None
        stopped = call(base, "POST", "/profile", {"action": "stop"})
        if stopped.get("running") or not stopped.get("changed"):
            print(f"FAIL [{label}]: profiler did not stop: {stopped}")
            return None
        print(f"[{label}] profiler: {snapshot['samples']} sample(s), "
              f"{len(snapshot['stacks'])} distinct stack(s)")

        evicted = call(base, "DELETE", "/documents/sentence")
        if evicted.get("evicted") != "sentence":
            print(f"FAIL [{label}]: eviction failed: {evicted}")
            return None
        stats = call(base, "GET", "/stats")
        if stats["store"]["documents"] != 1:
            print(f"FAIL [{label}]: /stats documents != 1 after eviction: {stats['store']}")
            return None
        accounting = stats.get("plan_accounting", {})
        if not accounting.get("top_drift"):
            print(f"FAIL [{label}]: /stats plan-vs-actual drift table is empty: {accounting}")
            return None
        if "/query" not in stats.get("http", {}) or "p50_ms" not in stats["http"]["/query"]:
            print(f"FAIL [{label}]: /stats http latency summary missing: {stats.get('http')}")
            return None
        print(f"[{label}] drift: {len(accounting['top_drift'])} entrie(s) over "
              f"{accounting['requests']} request(s); http /query p50 "
              f"{stats['http']['/query']['p50_ms']:.2f}ms")
        print(f"[{label}] stats: backend={stats['executor'].get('backend')}, "
              f"{stats['store']['documents']} document(s), "
              f"cache hit rate {stats['cache']['hit_rate']:.2f}")
        return response["results"]
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck server
            process.kill()


def main() -> int:
    auction = auction_document(num_items=12, seed=7)
    threaded = run_mode("threaded", [], auction)
    if threaded is None:
        return 1
    sharded = run_mode("async+sharded", ["--async", "--shards", "2"], auction)
    if sharded is None:
        return 1
    # The two modes must serve byte-identical answers (timings aside).
    def stable(result: dict) -> dict:
        return {k: v for k, v in result.items() if k not in ("elapsed_ms", "cache_hit")}

    for position, (ours, theirs) in enumerate(zip(threaded, sharded)):
        if json.dumps(stable(ours)) != json.dumps(stable(theirs)):
            print(f"FAIL: threaded and sharded results diverge at request {position}: "
                  f"{ours} != {theirs}")
            return 1
    print("service smoke PASSED (threaded + async sharded, byte-identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
