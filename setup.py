"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works in offline environments that lack the
``wheel`` package (pip then falls back to the legacy editable install).
"""

from setuptools import setup

setup()
