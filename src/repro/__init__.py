"""repro -- Conjunctive Queries over Trees, reproduced as an executable library.

This package reproduces Gottlob, Koch & Schulz, "Conjunctive Queries over
Trees" (PODS 2004 / JACM 2006) as a working system:

* :mod:`repro.trees`        -- unranked ordered labelled trees, axes, orders,
  generators, XML import/export;
* :mod:`repro.queries`      -- conjunctive queries, query graphs, APQs,
  parsing, the XPath fragment;
* :mod:`repro.evaluation`   -- arc consistency, the X-property polynomial-time
  evaluator, acyclic (Yannakakis-style) evaluation, backtracking, and the
  dichotomy-aware planner;
* :mod:`repro.xproperty`    -- the X-property framework and the tractability
  classifier behind Table I;
* :mod:`repro.hardness`     -- 1-in-3 3SAT, the Theorem 5.1 reduction and
  hard-instance generators;
* :mod:`repro.rewriting`    -- join lifters and the CQ -> APQ rewriting of
  Section 6;
* :mod:`repro.succinctness` -- diamond queries and scattered path structures
  (Section 7);
* :mod:`repro.workloads`    -- XML, linguistics and dominance-constraint
  workloads;
* :mod:`repro.experiments`  -- programs regenerating every table and figure.

Quickstart::

    from repro import parse_query, from_nested, evaluate_on_tree

    tree = from_nested(("S", [("NP", []), ("VP", [("V", []), ("NP", [])])]))
    query = parse_query("Q(z) <- S(x), Child(x, y), NP(y), Following(y, z), NP(z)")
    print(evaluate_on_tree(query, tree))
"""

from .evaluation import (
    Engine,
    check_answer,
    choose_engine,
    evaluate,
    evaluate_on_tree,
    evaluate_union,
    is_satisfied,
)
from .queries import (
    ConjunctiveQuery,
    QueryBuilder,
    UnionQuery,
    cq_to_xpath,
    parse_query,
    xpath_to_cq,
)
from .rewriting import to_apq
from .trees import (
    Axis,
    Node,
    Order,
    Signature,
    Tree,
    TreeStructure,
    from_nested,
    from_xml,
    parse_sexpr,
    random_tree,
)
from .xproperty import Complexity, classify, has_x_property, is_tractable, order_for

__version__ = "1.0.0"

__all__ = [
    "Axis",
    "Complexity",
    "ConjunctiveQuery",
    "Engine",
    "Node",
    "Order",
    "QueryBuilder",
    "Signature",
    "Tree",
    "TreeStructure",
    "UnionQuery",
    "check_answer",
    "choose_engine",
    "classify",
    "cq_to_xpath",
    "evaluate",
    "evaluate_on_tree",
    "evaluate_union",
    "from_nested",
    "from_xml",
    "has_x_property",
    "is_satisfied",
    "is_tractable",
    "order_for",
    "parse_query",
    "parse_sexpr",
    "random_tree",
    "to_apq",
    "xpath_to_cq",
    "__version__",
]
