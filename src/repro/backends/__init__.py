"""Out-of-core evaluation backends.

The in-memory engines of :mod:`repro.evaluation` hold the whole document --
rank arrays, label index, interval index -- resident.  This package hosts
backends that externalise the same accel columns to durable storage so that
documents far bigger than RAM remain queryable with byte-identical answers:

* :mod:`repro.backends.sqlite` -- the pre/post-order interval encoding as a
  SQLite ``accel`` table, conjunctive queries lowered to range self-joins.
"""

from .sqlite import SQLiteBackend

__all__ = ["SQLiteBackend"]
