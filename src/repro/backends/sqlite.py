"""SQLite accel-table backend: out-of-core evaluation over interval columns.

The same pre/post-order interval encoding that powers the in-memory engines
(descendants of ``u`` are exactly the pre-order range ``(u, subtree_end(u)]``;
``Following(u, v)`` iff ``v > subtree_end(u)``) externalises directly to a
relational accel table::

    accel(doc, id, pre_order, post_order, parent, depth,
          subtree_end, sibling_index)
    label(doc, node, name)
    documents(doc, nodes, registered_at)

Every axis of the paper's ``Ax`` (plus the Section 4 extras and the inverse
axes) becomes a constant-size SQL predicate over two ``accel`` aliases, so a
conjunctive query lowers to one range self-join -- ``SELECT DISTINCT`` over
the head columns -- that SQLite answers out of its page cache.  Documents far
bigger than RAM stay queryable: :meth:`SQLiteBackend.ensure_document`
materialises a tree into a file-backed database once and every later session
reopens it without re-parsing.

Answers are byte-identical to the in-memory planner on every query -- the
cross-backend equivalence suite (``tests/test_backend_equivalence.py``) pins
in-memory, columnar-kernel and SQLite answers against each other, and the CI
``backend-equivalence`` job runs it on every push.

The planner exposes this backend as ``Engine.SQL``; it is never auto-chosen
(:func:`repro.evaluation.planner.choose_engine` stays in-memory) but is always
selectable for cross-checking and for out-of-core documents.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Iterable, Mapping, Optional
from weakref import WeakKeyDictionary

from ..queries.atoms import AxisAtom, LabelAtom, Variable
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis
from ..trees.structure import TreeStructure
from ..trees.tree import Tree

Row = tuple[int, ...]

#: Axis -> SQL predicate template over a source alias ``{s}`` and a target
#: alias ``{t}``.  ``id`` *is* the pre-order rank, so the interval axes are
#: pure range comparisons; the local axes use the parent / sibling_index
#: columns.  Inverse axes swap the roles of the interval endpoints.
_AXIS_SQL: dict[Axis, str] = {
    Axis.CHILD: "{t}.parent = {s}.id",
    Axis.CHILD_PLUS: "{t}.id > {s}.id AND {t}.id <= {s}.subtree_end",
    Axis.CHILD_STAR: "{t}.id >= {s}.id AND {t}.id <= {s}.subtree_end",
    Axis.NEXT_SIBLING: (
        "{t}.parent = {s}.parent AND {t}.sibling_index = {s}.sibling_index + 1"
    ),
    Axis.NEXT_SIBLING_PLUS: (
        "{t}.parent = {s}.parent AND {t}.sibling_index > {s}.sibling_index"
    ),
    Axis.NEXT_SIBLING_STAR: (
        "{t}.parent = {s}.parent AND {t}.sibling_index >= {s}.sibling_index"
    ),
    Axis.FOLLOWING: "{t}.id > {s}.subtree_end",
    Axis.DOCUMENT_ORDER: "{t}.id > {s}.id",
    Axis.SUCC_PRE: "{t}.id = {s}.id + 1",
    Axis.SELF: "{t}.id = {s}.id",
    Axis.PARENT: "{s}.parent = {t}.id",
    Axis.ANCESTOR: "{s}.id > {t}.id AND {s}.id <= {t}.subtree_end",
    Axis.ANCESTOR_OR_SELF: "{s}.id >= {t}.id AND {s}.id <= {t}.subtree_end",
    Axis.PREVIOUS_SIBLING: (
        "{s}.parent = {t}.parent AND {s}.sibling_index = {t}.sibling_index + 1"
    ),
    Axis.PRECEDING_SIBLING: (
        "{s}.parent = {t}.parent AND {s}.sibling_index > {t}.sibling_index"
    ),
    Axis.PRECEDING: "{s}.id > {t}.subtree_end",
}

#: Above this many members an extra-unary relation is staged into a temp
#: table instead of an ``IN (?, ?, ...)`` list (SQLite caps bound variables).
_IN_LIST_LIMIT = 500

_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    doc            TEXT PRIMARY KEY,
    nodes          INTEGER NOT NULL,
    registered_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS accel (
    doc            TEXT NOT NULL,
    id             INTEGER NOT NULL,
    pre_order      INTEGER NOT NULL,
    post_order     INTEGER NOT NULL,
    parent         INTEGER NOT NULL,
    depth          INTEGER NOT NULL,
    subtree_end    INTEGER NOT NULL,
    sibling_index  INTEGER NOT NULL,
    PRIMARY KEY (doc, id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS accel_parent ON accel (doc, parent);
CREATE TABLE IF NOT EXISTS label (
    doc   TEXT NOT NULL,
    node  INTEGER NOT NULL,
    name  TEXT NOT NULL,
    PRIMARY KEY (doc, name, node)
) WITHOUT ROWID;
"""


class SQLiteBackend:
    """Accel-table document store plus conjunctive-query evaluator.

    ``path=":memory:"`` (the default) keeps the database in RAM -- the
    cross-check configuration; a file path gives the out-of-core
    configuration, where registered documents persist across processes.  One
    connection is shared and serialised behind a lock, so a backend instance
    is safe to use from the serving layer's worker threads.
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        self._temp_counter = 0
        with self._lock:
            self._connection.executescript(_SCHEMA)
            self._connection.commit()

    # -- document registration -------------------------------------------------

    def register_tree(self, doc_id: str, tree: Tree) -> None:
        """Materialise ``tree``'s accel columns under ``doc_id`` (replacing)."""
        n = len(tree)
        subtree_end = tree.subtree_end
        accel_rows = (
            (
                doc_id,
                node_id,
                node_id,  # pre_order: node ids ARE pre-order ranks
                tree.post[node_id],
                tree.parent[node_id],
                tree.depth[node_id],
                subtree_end[node_id],
                tree.sibling_index[node_id],
            )
            for node_id in range(n)
        )
        label_rows = (
            (doc_id, node_id, name)
            for node_id in range(n)
            for name in tree.labels_of[node_id]
        )
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute("DELETE FROM accel WHERE doc = ?", (doc_id,))
            cursor.execute("DELETE FROM label WHERE doc = ?", (doc_id,))
            cursor.executemany(
                "INSERT INTO accel VALUES (?, ?, ?, ?, ?, ?, ?, ?)", accel_rows
            )
            cursor.executemany("INSERT INTO label VALUES (?, ?, ?)", label_rows)
            cursor.execute(
                "INSERT OR REPLACE INTO documents VALUES (?, ?, ?)",
                (doc_id, n, time.time()),
            )
            self._connection.commit()

    def ensure_document(self, doc_id: str, tree: Tree) -> bool:
        """Register ``tree`` unless ``doc_id`` is already materialised.

        Returns ``True`` when the document was (re)materialised, ``False``
        when the existing accel rows were reused -- the out-of-core fast path
        for file-backed databases surviving across sessions.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT nodes FROM documents WHERE doc = ?", (doc_id,)
            ).fetchone()
        if row is not None and row[0] == len(tree):
            return False
        self.register_tree(doc_id, tree)
        return True

    def has_document(self, doc_id: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM documents WHERE doc = ?", (doc_id,)
            ).fetchone()
        return row is not None

    def document_ids(self) -> list[str]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT doc FROM documents ORDER BY doc"
            ).fetchall()
        return [doc for (doc,) in rows]

    # -- query lowering --------------------------------------------------------

    def _lower(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]],
        extra_unary: Mapping[str, frozenset[int]],
        boolean: bool,
    ) -> tuple[str, list, list[str]]:
        """Compile the query to one SQL statement.

        Returns ``(sql, parameters, temp_tables)``; the caller drops the temp
        tables (large extra-unary relations staged out of the ``IN`` list)
        after fetching.
        """
        variables = query.variables()
        alias = {variable: f"a{i}" for i, variable in enumerate(variables)}
        params: list = []
        temp_tables: list[str] = []
        from_clause = ", ".join(f"accel {alias[v]}" for v in variables)
        conditions: list[str] = []
        for variable in variables:
            conditions.append(f"{alias[variable]}.doc = ?")
            params.append(doc_id)
        for atom in query.body:
            if isinstance(atom, AxisAtom):
                template = _AXIS_SQL.get(atom.axis)
                if template is None:  # pragma: no cover - defensive
                    raise ValueError(f"axis {atom.axis} has no SQL lowering")
                conditions.append(
                    "(" + template.format(s=alias[atom.source], t=alias[atom.target]) + ")"
                )
            elif isinstance(atom, LabelAtom):
                column = f"{alias[atom.variable]}.id"
                if atom.label in extra_unary:
                    conditions.append(
                        self._unary_condition(column, extra_unary[atom.label], params, temp_tables)
                    )
                else:
                    conditions.append(
                        "EXISTS (SELECT 1 FROM label WHERE doc = ? "
                        f"AND node = {column} AND name = ?)"
                    )
                    params.extend((doc_id, atom.label))
        if pinned:
            for variable, node_id in pinned.items():
                if variable in alias:
                    conditions.append(f"{alias[variable]}.id = ?")
                    params.append(node_id)
        where = " AND ".join(conditions) if conditions else "1"
        if boolean or not query.head:
            sql = f"SELECT 1 FROM {from_clause} WHERE {where} LIMIT 1"
        else:
            columns = ", ".join(f"{alias[v]}.id" for v in query.head)
            sql = f"SELECT DISTINCT {columns} FROM {from_clause} WHERE {where}"
        return sql, params, temp_tables

    def _unary_condition(
        self,
        column: str,
        members: frozenset[int],
        params: list,
        temp_tables: list[str],
    ) -> str:
        """Membership test against an extra-unary relation.

        Small relations (the singleton pins of the k-ary reduction) inline as
        an ``IN`` list; large ones stage into a temp table to stay clear of
        SQLite's bound-variable cap.
        """
        if not members:
            return "0"
        if len(members) <= _IN_LIST_LIMIT:
            params.extend(sorted(members))
            return f"{column} IN ({', '.join('?' * len(members))})"
        self._temp_counter += 1
        name = f"tmp_unary_{self._temp_counter}"
        cursor = self._connection.cursor()
        cursor.execute(f"CREATE TEMP TABLE {name} (node INTEGER PRIMARY KEY)")
        cursor.executemany(
            f"INSERT INTO {name} VALUES (?)", ((node,) for node in sorted(members))
        )
        temp_tables.append(name)
        return f"{column} IN (SELECT node FROM {name})"

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]] = None,
        extra_unary: Optional[Mapping[str, frozenset[int]]] = None,
    ) -> frozenset[Row]:
        """All answers of ``query`` on the registered document.

        Boolean queries return ``{()}`` / ``frozenset()``; the answer set is
        byte-identical to :func:`repro.evaluation.planner.evaluate` on every
        query, which the equivalence suite enforces.
        """
        extras = extra_unary or {}
        if not query.variables():
            return frozenset({()})
        if query.is_boolean:
            return (
                frozenset({()})
                if self.is_satisfied(doc_id, query, pinned, extra_unary)
                else frozenset()
            )
        with self._lock:
            sql, params, temp_tables = self._lower(doc_id, query, pinned, extras, False)
            try:
                rows = self._connection.execute(sql, params).fetchall()
            finally:
                self._drop_temp_tables(temp_tables)
        return frozenset(tuple(row) for row in rows)

    def is_satisfied(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]] = None,
        extra_unary: Optional[Mapping[str, frozenset[int]]] = None,
    ) -> bool:
        """Boolean evaluation (existential closure) of ``query``."""
        extras = extra_unary or {}
        if not query.variables():
            return True
        with self._lock:
            sql, params, temp_tables = self._lower(doc_id, query, pinned, extras, True)
            try:
                row = self._connection.execute(sql, params).fetchone()
            finally:
                self._drop_temp_tables(temp_tables)
        return row is not None

    def _drop_temp_tables(self, temp_tables: Iterable[str]) -> None:
        for name in temp_tables:
            self._connection.execute(f"DROP TABLE IF EXISTS {name}")

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteBackend(path={self.path!r})"


# ---------------------------------------------------------------------------
# Planner integration: evaluate a TreeStructure through a cached backend.
# ---------------------------------------------------------------------------

#: One in-memory backend per live tree, for ``Engine.SQL`` cross-checking;
#: entries die with their tree.
_TREE_BACKENDS: "WeakKeyDictionary[Tree, SQLiteBackend]" = WeakKeyDictionary()
_TREE_DOC_ID = "tree"


def backend_for_tree(tree: Tree) -> SQLiteBackend:
    """The (memoized) in-memory accel database of ``tree``."""
    backend = _TREE_BACKENDS.get(tree)
    if backend is None:
        backend = SQLiteBackend()
        backend.register_tree(_TREE_DOC_ID, tree)
        _TREE_BACKENDS[tree] = backend
    return backend


def evaluate_structure(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
) -> frozenset[Row]:
    """``Engine.SQL`` entry point: answers of ``query`` over ``structure``."""
    backend = backend_for_tree(structure.tree)
    return backend.evaluate(
        _TREE_DOC_ID, query, pinned=pinned, extra_unary=structure.extra_unary_relations()
    )


def structure_is_satisfied(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
) -> bool:
    """``Engine.SQL`` Boolean entry point."""
    backend = backend_for_tree(structure.tree)
    return backend.is_satisfied(
        _TREE_DOC_ID, query, pinned=pinned, extra_unary=structure.extra_unary_relations()
    )
