"""SQLite accel-table backend: out-of-core evaluation over interval columns.

The same pre/post-order interval encoding that powers the in-memory engines
(descendants of ``u`` are exactly the pre-order range ``(u, subtree_end(u)]``;
``Following(u, v)`` iff ``v > subtree_end(u)``) externalises directly to a
relational accel table::

    accel(doc, id, pre_order, post_order, parent, depth,
          subtree_end, sibling_index)
    label(doc, node, name)
    documents(doc, nodes, registered_at)

Every axis of the paper's ``Ax`` (plus the Section 4 extras and the inverse
axes) becomes a constant-size SQL predicate over two ``accel`` aliases.  Two
lowerings share that vocabulary:

* ``lowering="tree"`` (the default) -- **join-tree lowering**: the query's
  tree decomposition (``CompiledQuery.decomposition``) becomes one CTE per
  bag, defined children-first so every bag CTE embeds the bottom-up semijoin
  (``EXISTS``/``IN`` pushdown onto its children's CTEs) -- the SQL mirror of
  the Yannakakis reduction.  Witness-only variables are never joined: their
  order-statistic atoms (``Following``, ``DocumentOrder``,
  ``NextSibling+``/``*``) lower to comparisons against aggregates of the
  witness relation (global extrema, or per-parent extrema via a window
  function) -- the SQL mirror of AC-4's ``_GlobalThreshold`` /
  ``_SiblingThreshold`` trackers -- and the remaining axes to correlated
  first-witness ``EXISTS`` probes that ride the ``accel`` primary key.  The
  final statement joins only the bags on the head variables' root paths, so a
  monadic chain query never materialises a quadratic intermediate.
* ``lowering="flat"`` -- the original one-big-join lowering, kept as the
  ablation and cross-check path.

Answers can be **streamed**: :meth:`SQLiteBackend.stream_answers` orders the
head columns ascending in SQL, pushes ``LIMIT`` down after the ``ORDER BY``,
and iterates a server-side cursor in ``fetchmany`` batches, so peak Python
memory is bounded by the batch size, not the result size.  Documents far
bigger than RAM stay queryable: :meth:`SQLiteBackend.ensure_document`
materialises a tree into a file-backed database once and every later session
reopens it without re-parsing (or re-building any resident index).

Answers are byte-identical to the in-memory planner on every query and under
both lowerings -- the cross-backend equivalence suite
(``tests/test_backend_equivalence.py``, ``tests/test_sqlite_lowering.py``)
pins them against each other, and the CI ``backend-equivalence`` job runs it
on every push.

The planner exposes this backend as ``Engine.SQL``; the serving layer
auto-routes to it when a document is registered *accel-only* (lives in the
accel store without a resident ``TreeStructure``), and it stays selectable
everywhere for cross-checking.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import Iterable, Iterator, Mapping, Optional
from weakref import WeakKeyDictionary

from ..observability import tracing
from ..observability.metrics import DEFAULT_SIZE_BUCKETS, REGISTRY
from ..queries.atoms import AxisAtom, LabelAtom, Variable
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis
from ..trees.structure import TreeStructure
from ..trees.tree import Tree

Row = tuple[int, ...]

SQL_ROWS_STREAMED = REGISTRY.counter(
    "cqtrees_sql_rows_streamed_total",
    "Answer rows streamed out of the SQLite accel backend.",
)
#: Approximate: SQLite answer columns are 64-bit node ids, so bytes are
#: estimated as 8 per fetched value -- a traffic-shape signal, not an exact
#: wire accounting.
SQL_BYTES_FETCHED = REGISTRY.counter(
    "cqtrees_sql_bytes_fetched_total",
    "Approximate bytes fetched from the SQLite accel backend (8 per value).",
)
SQL_STREAM_ROWS = REGISTRY.histogram(
    "cqtrees_sql_stream_rows",
    "Rows streamed per stream_answers call.",
    buckets=DEFAULT_SIZE_BUCKETS,
)

#: Axis -> SQL predicate template over a source alias ``{s}`` and a target
#: alias ``{t}``.  ``id`` *is* the pre-order rank, so the interval axes are
#: pure range comparisons; the local axes use the parent / sibling_index
#: columns.  Inverse axes swap the roles of the interval endpoints.
_AXIS_SQL: dict[Axis, str] = {
    Axis.CHILD: "{t}.parent = {s}.id",
    Axis.CHILD_PLUS: "{t}.id > {s}.id AND {t}.id <= {s}.subtree_end",
    Axis.CHILD_STAR: "{t}.id >= {s}.id AND {t}.id <= {s}.subtree_end",
    Axis.NEXT_SIBLING: (
        "{t}.parent = {s}.parent AND {t}.sibling_index = {s}.sibling_index + 1"
    ),
    Axis.NEXT_SIBLING_PLUS: (
        "{t}.parent = {s}.parent AND {t}.sibling_index > {s}.sibling_index"
    ),
    Axis.NEXT_SIBLING_STAR: (
        "{t}.parent = {s}.parent AND {t}.sibling_index >= {s}.sibling_index"
    ),
    Axis.FOLLOWING: "{t}.id > {s}.subtree_end",
    Axis.DOCUMENT_ORDER: "{t}.id > {s}.id",
    Axis.SUCC_PRE: "{t}.id = {s}.id + 1",
    Axis.SELF: "{t}.id = {s}.id",
    Axis.PARENT: "{s}.parent = {t}.id",
    Axis.ANCESTOR: "{s}.id > {t}.id AND {s}.id <= {t}.subtree_end",
    Axis.ANCESTOR_OR_SELF: "{s}.id >= {t}.id AND {s}.id <= {t}.subtree_end",
    Axis.PREVIOUS_SIBLING: (
        "{s}.parent = {t}.parent AND {s}.sibling_index = {t}.sibling_index + 1"
    ),
    Axis.PRECEDING_SIBLING: (
        "{s}.parent = {t}.parent AND {s}.sibling_index > {t}.sibling_index"
    ),
    Axis.PRECEDING: "{s}.id > {t}.subtree_end",
}

#: Above this many members an extra-unary relation is staged into a temp
#: table instead of an ``IN (?, ?, ...)`` list (SQLite caps bound variables).
_IN_LIST_LIMIT = 500

#: Default rows per ``fetchmany`` batch when streaming answers.
STREAM_BATCH_SIZE = 1024

#: Witness-only endpoints of these axes compare against a *global* extremum
#: of the witness relation (``Following``: ``max id`` / ``min subtree_end``;
#: ``DocumentOrder``: ``max``/``min id``) instead of a range join.
_GLOBAL_THRESHOLD_AXES = frozenset({Axis.FOLLOWING, Axis.DOCUMENT_ORDER})

#: Witness-only endpoints of these axes compare against *per-parent* sibling
#: extrema, computed by a window function over the witness relation.
_SIBLING_THRESHOLD_AXES = frozenset({Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR})

#: Window functions arrived in SQLite 3.25; older libraries fall back to the
#: correlated-EXISTS formulation (same answers, no window CTE).
_HAS_WINDOW_FUNCTIONS = sqlite3.sqlite_version_info >= (3, 25, 0)

#: Recognised values for the ``lowering=`` knobs.
LOWERINGS = ("tree", "flat")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    doc            TEXT PRIMARY KEY,
    nodes          INTEGER NOT NULL,
    registered_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS accel (
    doc            TEXT NOT NULL,
    id             INTEGER NOT NULL,
    pre_order      INTEGER NOT NULL,
    post_order     INTEGER NOT NULL,
    parent         INTEGER NOT NULL,
    depth          INTEGER NOT NULL,
    subtree_end    INTEGER NOT NULL,
    sibling_index  INTEGER NOT NULL,
    PRIMARY KEY (doc, id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS accel_parent ON accel (doc, parent);
CREATE TABLE IF NOT EXISTS label (
    doc   TEXT NOT NULL,
    node  INTEGER NOT NULL,
    name  TEXT NOT NULL,
    PRIMARY KEY (doc, name, node)
) WITHOUT ROWID;
"""


class _TreeLowering:
    """Builds the join-tree SQL for one query against one document.

    The decomposition's bags become CTEs ``bag_i`` emitted children-first
    along the join tree re-rooted at a head bag (see
    :meth:`_reduced_head_tree`), so every child CTE is defined before its
    parent references it.  Each ``bag_i`` selects the bag's
    *keep* columns -- the separator to its parent, the separators to children
    whose subtrees contain head variables, and the bag's own head variables --
    from ``accel`` aliases constrained by the bag's atoms, with the bottom-up
    Yannakakis semijoin folded in as ``IN``/``EXISTS`` conditions over the
    children's CTEs.  Everything else in the bag is witness-only and is never
    joined: single order-statistic atoms become threshold comparisons against
    aggregates of the witness relation, everything else a correlated
    first-witness ``EXISTS``.

    Parameter ordering: SQLite binds ``?`` placeholders left-to-right over
    the *whole* statement (CTE bodies included), so every fragment collects
    its parameters in a local list that is appended to :attr:`params` at the
    moment the fragment's text is appended to :attr:`ctes`.
    """

    def __init__(
        self,
        backend: "SQLiteBackend",
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]],
        extra_unary: Mapping[str, frozenset[int]],
        materialize: bool = False,
    ):
        from ..evaluation.compile import compile_query

        self.backend = backend
        self.doc_id = doc_id
        self.query = query
        self.compiled = compile_query(query)
        self.vix = self.compiled.variable_index
        self.pinned = {
            variable: node
            for variable, node in (pinned or {}).items()
            if variable in self.vix
        }
        self.extra_unary = extra_unary
        self.decomposition = self.compiled.decomposition
        self.bags, self.parent, self.children, self.roots = self._reduced_head_tree()
        self.params: list = []
        self.temp_tables: list[str] = []
        self.ctes: list[str] = []
        self._sibling_counter = 0
        # With ``materialize=True`` every bag (and sibling-window) relation is
        # executed eagerly into an indexed TEMP table instead of staying a
        # CTE.  SQLite re-evaluates a CTE referenced from correlated
        # subqueries per probe; when the cost model predicts large bag
        # relations (the dense-cycle case) a materialized, separator-indexed
        # table turns those probes into index lookups.  The caller holds the
        # backend lock for the whole lowering, so bumping the counter here is
        # race-free; the unique prefix keeps concurrent streams (which release
        # the lock between batches) from colliding.
        self.materialize = materialize
        if materialize:
            backend._temp_counter += 1
            self._prefix = f"tmp_plan_{backend._temp_counter}_"
        else:
            self._prefix = ""
        self.loops_by_variable: dict[Variable, list] = {}
        for loop in self.compiled.loops:
            self.loops_by_variable.setdefault(loop.source, []).append(loop)

    def _bag_name(self, index: int) -> str:
        return f"{self._prefix}bag_{index}"

    def _reduced_head_tree(
        self,
    ) -> tuple[list[frozenset], list[int], list[list[int]], list[int]]:
        """The compiled join tree, subset bags contracted, rooted at head bags.

        Two normalizations that the compiled decomposition does not promise
        but the lowering's cost model depends on:

        * **Reduction**: a bag that is a subset of a neighbour carries no
          constraint of its own, yet as a separate CTE it would materialize
          its separator -- for a two-variable atom-free bag that is a full
          cross product of candidate sets.  Contracting subset bags into
          their neighbours (the standard *reduced* tree decomposition, which
          preserves the running-intersection property) removes them.
        * **Orientation**: any re-rooting of a join tree is a join tree, but
          the lowering is not orientation-agnostic -- variables outside the
          keep sets are eliminated as cheap witnesses (threshold aggregates,
          first-witness ``EXISTS``), and keep sets grow along the path from
          the head bags to the root.  A tree rooted at the far end of an
          acyclic tail drags every tail variable into materialized
          separators; re-rooted at the bag sharing the most head variables
          (ties to the lowest index; headless components keep their compiled
          root when it survives reduction) the same tail reduces bottom-up
          to semijoins.
        """
        decomposition = self.decomposition
        count = len(decomposition.bags)
        bags = list(decomposition.bags)
        neighbours: list[set[int]] = [set() for _ in range(count)]
        for index, parent_index in enumerate(decomposition.parent):
            if parent_index >= 0:
                neighbours[index].add(parent_index)
                neighbours[parent_index].add(index)
        alive = set(range(count))
        merged = True
        while merged:
            merged = False
            for i in sorted(alive):
                target = next(
                    (j for j in sorted(neighbours[i]) if bags[i] <= bags[j]), None
                )
                if target is None:
                    continue
                neighbours[target].discard(i)
                for k in neighbours[i]:
                    if k != target:
                        neighbours[k].discard(i)
                        neighbours[k].add(target)
                        neighbours[target].add(k)
                neighbours[i].clear()
                alive.discard(i)
                merged = True
                break

        relabel = {old: new for new, old in enumerate(sorted(alive))}
        reduced_bags = [bags[old] for old in sorted(alive)]
        reduced_neighbours: list[list[int]] = [[] for _ in relabel]
        for old in sorted(alive):
            reduced_neighbours[relabel[old]] = sorted(relabel[k] for k in neighbours[old])

        head_set = set(self.query.head)
        reduced_count = len(reduced_bags)
        parent = [-2] * reduced_count
        children: list[list[int]] = [[] for _ in range(reduced_count)]
        roots: list[int] = []
        for start in range(reduced_count):
            if parent[start] != -2:
                continue
            component = [start]
            seen = {start}
            for bag in component:
                for neighbour in reduced_neighbours[bag]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        component.append(neighbour)
            root = component[0]
            if head_set:
                best = max(len(reduced_bags[i] & head_set) for i in component)
                if best > 0:
                    root = min(
                        i for i in component if len(reduced_bags[i] & head_set) == best
                    )
            roots.append(root)
            parent[root] = -1
            stack = [root]
            while stack:
                bag = stack.pop()
                for neighbour in reduced_neighbours[bag]:
                    if parent[neighbour] == -2:
                        parent[neighbour] = bag
                        children[bag].append(neighbour)
                        stack.append(neighbour)
        return reduced_bags, parent, children, roots

    def _covering_bag(self, atom) -> int:
        """The lowest-index reduced bag containing both endpoints of ``atom``."""
        pair = {atom.source, atom.target}
        for index, bag in enumerate(self.bags):
            if pair <= bag:
                return index
        raise ValueError(f"no bag covers atom {atom!r}")  # pragma: no cover

    # -- shared fragments ------------------------------------------------------

    def _unary_conditions(self, alias: str, variable: Variable, params: list) -> list[str]:
        """The document, label, pin and self-loop filters of one variable."""
        conditions = [f"{alias}.doc = ?"]
        params.append(self.doc_id)
        for label in self.compiled.labels_by_variable.get(variable, ()):
            if label in self.extra_unary:
                conditions.append(
                    self.backend._unary_condition(
                        f"{alias}.id", self.extra_unary[label], params, self.temp_tables
                    )
                )
            else:
                conditions.append(
                    "EXISTS (SELECT 1 FROM label WHERE doc = ? "
                    f"AND node = {alias}.id AND name = ?)"
                )
                params.extend((self.doc_id, label))
        if variable in self.pinned:
            conditions.append(f"{alias}.id = ?")
            params.append(self.pinned[variable])
        for loop in self.loops_by_variable.get(variable, ()):
            conditions.append("(" + _AXIS_SQL[loop.axis].format(s=alias, t=alias) + ")")
        return conditions

    @staticmethod
    def _atom_condition(atom, source_alias: str, target_alias: str) -> str:
        return "(" + _AXIS_SQL[atom.axis].format(s=source_alias, t=target_alias) + ")"

    # -- witness-only variables ------------------------------------------------

    def _witness_condition(
        self,
        variable: Variable,
        atoms: list,
        alias: Mapping[Variable, str],
        refining_children: list[int],
        bag_params: list,
    ) -> str:
        """Eliminate a witness-only variable from its bag.

        ``refining_children`` are the child bags whose separator is exactly
        ``(variable,)``: their already-reduced CTEs narrow the witness
        relation (the bottom-up semijoin applied *before* the aggregate, so a
        threshold never counts a witness the subtree below has refuted).
        """
        position = self.vix[variable]
        walias = f"w{position}"
        local: list = []
        conditions = self._unary_conditions(walias, variable, local)
        conditions.extend(
            f"{walias}.id IN (SELECT c{position} FROM {self._bag_name(child)})"
            for child in refining_children
        )
        if len(atoms) == 1 and atoms[0].axis in _GLOBAL_THRESHOLD_AXES:
            atom = atoms[0]
            dropped_is_target = atom.target == variable
            other = alias[atom.source if dropped_is_target else atom.target]
            where = " AND ".join(conditions)
            bag_params.extend(local)
            if atom.axis is Axis.FOLLOWING:
                if dropped_is_target:
                    # exists t: t.id > s.subtree_end  <=>  s.subtree_end < max(t.id)
                    return (
                        f"{other}.subtree_end < "
                        f"(SELECT MAX({walias}.id) FROM accel {walias} WHERE {where})"
                    )
                # exists s: t.id > s.subtree_end  <=>  t.id > min(s.subtree_end)
                return (
                    f"{other}.id > "
                    f"(SELECT MIN({walias}.subtree_end) FROM accel {walias} WHERE {where})"
                )
            if dropped_is_target:  # DocumentOrder
                return (
                    f"{other}.id < "
                    f"(SELECT MAX({walias}.id) FROM accel {walias} WHERE {where})"
                )
            return (
                f"{other}.id > "
                f"(SELECT MIN({walias}.id) FROM accel {walias} WHERE {where})"
            )
        if (
            len(atoms) == 1
            and atoms[0].axis in _SIBLING_THRESHOLD_AXES
            and _HAS_WINDOW_FUNCTIONS
        ):
            atom = atoms[0]
            dropped_is_target = atom.target == variable
            other = alias[atom.source if dropped_is_target else atom.target]
            where = " AND ".join(conditions)
            self._sibling_counter += 1
            name = f"{self._prefix}sib_{self._sibling_counter}"
            aggregate = "MAX" if dropped_is_target else "MIN"
            body = (
                f"SELECT DISTINCT {walias}.parent AS parent, "
                f"{aggregate}({walias}.sibling_index) "
                f"OVER (PARTITION BY {walias}.parent) AS si "
                f"FROM accel {walias} WHERE {where}"
            )
            if self.materialize:
                self._execute_temp_table(name, body, local)
            else:
                self.ctes.append(f"{name} AS ({body})")
                self.params.extend(local)
            strict = atom.axis is Axis.NEXT_SIBLING_PLUS
            operator = (">" if strict else ">=") if dropped_is_target else ("<" if strict else "<=")
            return (
                f"EXISTS (SELECT 1 FROM {name} WHERE {name}.parent = {other}.parent "
                f"AND {name}.si {operator} {other}.sibling_index)"
            )
        # Generic first-witness probe: one EXISTS over all of the variable's
        # in-bag atoms (they share the single witness), riding the accel
        # primary key for the range predicates.
        for atom in atoms:
            source = walias if atom.source == variable else alias[atom.source]
            target = walias if atom.target == variable else alias[atom.target]
            conditions.append(self._atom_condition(atom, source, target))
        bag_params.extend(local)
        where = " AND ".join(conditions)
        return f"EXISTS (SELECT 1 FROM accel {walias} WHERE {where})"

    # -- bag CTEs --------------------------------------------------------------

    def _emit_bag(
        self,
        index: int,
        atoms: list,
        keep: list[Variable],
        separators: list[tuple[Variable, ...]],
    ) -> None:
        vix = self.vix
        bag = self.bags[index]
        keep_set = set(keep)

        # Children semijoin into this bag on their separators.  Single-variable
        # separators refine that variable's rows directly (and can be folded
        # into a witness-only variable's relation); wider or empty separators
        # become EXISTS conditions over retained aliases.
        refining: dict[Variable, list[int]] = {}
        blocked: set[Variable] = set()
        exists_children: list[tuple[int, tuple[Variable, ...]]] = []
        for child in self.children[index]:
            separator = separators[child]
            if len(separator) == 1:
                refining.setdefault(separator[0], []).append(child)
            else:
                blocked.update(separator)
                exists_children.append((child, separator))

        droppable = {v for v in bag if v not in keep_set and v not in blocked}
        # An atom between two witness-only variables shares its witness pair;
        # retain one endpoint so every eliminated variable's atoms connect it
        # to joined aliases only.
        for atom in atoms:
            if atom.source in droppable and atom.target in droppable:
                droppable.discard(max(atom.source, atom.target, key=lambda v: vix[v]))
        retained = sorted((v for v in bag if v not in droppable), key=lambda v: vix[v])

        alias = {v: f"v{vix[v]}" for v in retained}
        params: list = []
        conditions: list[str] = []
        for variable in retained:
            conditions.extend(self._unary_conditions(alias[variable], variable, params))
        for atom in atoms:
            if atom.source in droppable or atom.target in droppable:
                continue
            conditions.append(
                self._atom_condition(atom, alias[atom.source], alias[atom.target])
            )
        for variable, kids in refining.items():
            if variable in droppable:
                continue
            position = vix[variable]
            conditions.extend(
                f"{alias[variable]}.id IN (SELECT c{position} FROM {self._bag_name(child)})"
                for child in kids
            )
        for child, separator in exists_children:
            child_name = self._bag_name(child)
            if separator:
                equalities = " AND ".join(
                    f"{child_name}.c{vix[v]} = {alias[v]}.id" for v in separator
                )
                conditions.append(f"EXISTS (SELECT 1 FROM {child_name} WHERE {equalities})")
            else:
                conditions.append(f"EXISTS (SELECT 1 FROM {child_name})")
        for variable in sorted(droppable, key=lambda v: vix[v]):
            own_atoms = [a for a in atoms if variable in (a.source, a.target)]
            if own_atoms:
                conditions.append(
                    self._witness_condition(
                        variable, own_atoms, alias, refining.get(variable, []), params
                    )
                )
            else:
                # Unconstrained inside the bag: existence of one candidate.
                local: list = []
                walias = f"w{vix[variable]}"
                unary = self._unary_conditions(walias, variable, local)
                unary.extend(
                    f"{walias}.id IN (SELECT c{vix[variable]} FROM {self._bag_name(child)})"
                    for child in refining.get(variable, [])
                )
                params.extend(local)
                conditions.append(
                    f"EXISTS (SELECT 1 FROM accel {walias} WHERE {' AND '.join(unary)})"
                )

        where = " AND ".join(conditions) if conditions else "1"
        from_clause = (
            " FROM " + ", ".join(f"accel {alias[v]}" for v in retained) if retained else ""
        )
        if keep:
            columns = ", ".join(f"{alias[v]}.id AS c{vix[v]}" for v in keep)
            body = f"SELECT DISTINCT {columns}{from_clause} WHERE {where}"
        else:
            # Witness-only bag (a headless component): one row iff satisfiable.
            body = f"SELECT 1 AS ok{from_clause} WHERE {where} LIMIT 1"
        name = self._bag_name(index)
        if self.materialize:
            self._execute_temp_table(name, body, params)
            if keep:
                # Index the separator to the parent: that is the column set
                # the parent's IN / EXISTS probes hit once per parent row.
                separator = [v for v in separators[index] if v in keep_set]
                if separator:
                    index_columns = ", ".join(f"c{vix[v]}" for v in separator)
                    self.backend._connection.execute(
                        f"CREATE INDEX idx_{name} ON {name} ({index_columns})"
                    )
        else:
            self.ctes.append(f"{name} AS ({body})")
            self.params.extend(params)

    def _execute_temp_table(self, name: str, body: str, params: list) -> None:
        """Eagerly materialize one relation; registered for cleanup."""
        self.backend._connection.execute(f"CREATE TEMP TABLE {name} AS {body}", params)
        self.temp_tables.append(name)

    # -- whole statements ------------------------------------------------------

    def lower(self, boolean: bool) -> tuple[str, list, list[str]]:
        bags = self.bags
        parent = self.parent
        count = len(bags)
        vix = self.vix
        head = () if boolean else self.query.head
        head_set = set(head)

        bag_atoms: list[list] = [[] for _ in range(count)]
        for atom in self.compiled.edges:
            bag_atoms[self._covering_bag(atom)].append(atom)

        separators: list[tuple[Variable, ...]] = []
        for index in range(count):
            if parent[index] < 0:
                separators.append(())
            else:
                shared = bags[index] & bags[parent[index]]
                separators.append(tuple(sorted(shared, key=lambda v: vix[v])))

        # Parents-first order of the (re-rooted) tree; reversed it is the
        # children-first CTE emission order (a CTE may only reference CTEs
        # defined before it, and each bag references its children's).
        top_down: list[int] = []
        stack = list(self.roots)
        while stack:
            bag_index = stack.pop()
            top_down.append(bag_index)
            stack.extend(self.children[bag_index])

        subtree_has_head = [bool(bags[index] & head_set) for index in range(count)]
        for index in reversed(top_down):
            if subtree_has_head[index] and parent[index] >= 0:
                subtree_has_head[parent[index]] = True

        keep: list[list[Variable]] = []
        for index in range(count):
            keep_set = (bags[index] & head_set) | set(separators[index])
            for child in self.children[index]:
                if subtree_has_head[child]:
                    keep_set |= set(separators[child])
            keep.append(sorted(keep_set, key=lambda v: vix[v]))

        # The final join touches only the head bags and their root paths; every
        # sibling subtree is already folded in by the bottom-up semijoins.
        kept: set[int] = set()
        for index in range(count):
            if bags[index] & head_set:
                walk = index
                while walk >= 0 and walk not in kept:
                    kept.add(walk)
                    walk = parent[walk]

        for index in reversed(top_down):
            self._emit_bag(index, bag_atoms[index], keep[index], separators)

        if boolean or not head:
            conditions = " AND ".join(
                f"EXISTS (SELECT 1 FROM {self._bag_name(root)})" for root in self.roots
            )
            final = f"SELECT 1 WHERE {conditions} LIMIT 1"
        else:
            kept_order = sorted(kept)
            conditions = []
            for index in kept_order:
                if parent[index] >= 0:
                    conditions.extend(
                        f"{self._bag_name(index)}.c{vix[v]} = "
                        f"{self._bag_name(parent[index])}.c{vix[v]}"
                        for v in separators[index]
                    )
            for root in self.roots:
                if root not in kept:
                    conditions.append(f"EXISTS (SELECT 1 FROM {self._bag_name(root)})")
            home = {
                variable: min(i for i in kept_order if variable in set(keep[i]))
                for variable in head_set
            }
            columns = ", ".join(f"{self._bag_name(home[v])}.c{vix[v]}" for v in head)
            from_clause = ", ".join(self._bag_name(index) for index in kept_order)
            where = " AND ".join(conditions) if conditions else "1"
            final = f"SELECT DISTINCT {columns} FROM {from_clause} WHERE {where}"
        if self.ctes:
            sql = "WITH " + ",\n     ".join(self.ctes) + "\n" + final
        else:  # fully materialized: the final statement reads TEMP tables only
            sql = final
        return sql, self.params, self.temp_tables


class SQLiteBackend:
    """Accel-table document store plus conjunctive-query evaluator.

    ``path=":memory:"`` (the default) keeps the database in RAM -- the
    cross-check configuration; a file path gives the out-of-core
    configuration, where registered documents persist across processes.  One
    connection is shared and serialised behind a lock, so a backend instance
    is safe to use from the serving layer's worker threads.
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        self._temp_counter = 0
        with self._lock:
            self._connection.executescript(_SCHEMA)
            self._connection.commit()

    # -- document registration -------------------------------------------------

    def register_tree(self, doc_id: str, tree: Tree) -> None:
        """Materialise ``tree``'s accel columns under ``doc_id`` (replacing)."""
        n = len(tree)
        subtree_end = tree.subtree_end
        accel_rows = (
            (
                doc_id,
                node_id,
                node_id,  # pre_order: node ids ARE pre-order ranks
                tree.post[node_id],
                tree.parent[node_id],
                tree.depth[node_id],
                subtree_end[node_id],
                tree.sibling_index[node_id],
            )
            for node_id in range(n)
        )
        label_rows = (
            (doc_id, node_id, name)
            for node_id in range(n)
            for name in tree.labels_of[node_id]
        )
        with self._lock:
            cursor = self._connection.cursor()
            cursor.execute("DELETE FROM accel WHERE doc = ?", (doc_id,))
            cursor.execute("DELETE FROM label WHERE doc = ?", (doc_id,))
            cursor.executemany(
                "INSERT INTO accel VALUES (?, ?, ?, ?, ?, ?, ?, ?)", accel_rows
            )
            cursor.executemany("INSERT INTO label VALUES (?, ?, ?)", label_rows)
            cursor.execute(
                "INSERT OR REPLACE INTO documents VALUES (?, ?, ?)",
                (doc_id, n, time.time()),
            )
            self._connection.commit()

    def ensure_document(self, doc_id: str, tree: Tree) -> bool:
        """Register ``tree`` unless ``doc_id`` is already materialised.

        Returns ``True`` when the document was (re)materialised, ``False``
        when the existing accel rows were reused -- the out-of-core fast path
        for file-backed databases surviving across sessions.
        """
        if self.document_nodes(doc_id) == len(tree):
            return False
        self.register_tree(doc_id, tree)
        return True

    def has_document(self, doc_id: str) -> bool:
        return self.document_nodes(doc_id) is not None

    def document_nodes(self, doc_id: str) -> Optional[int]:
        """Node count of a registered document, or ``None``."""
        with self._lock:
            row = self._connection.execute(
                "SELECT nodes FROM documents WHERE doc = ?", (doc_id,)
            ).fetchone()
        return None if row is None else row[0]

    def document_label_count(self, doc_id: str) -> int:
        """Distinct label names of a registered document."""
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(DISTINCT name) FROM label WHERE doc = ?", (doc_id,)
            ).fetchone()
        return count

    def document_ids(self) -> list[str]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT doc FROM documents ORDER BY doc"
            ).fetchall()
        return [doc for (doc,) in rows]

    # -- query lowering --------------------------------------------------------

    def _lower(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]],
        extra_unary: Mapping[str, frozenset[int]],
        boolean: bool,
        lowering: str,
        materialize: bool = False,
    ) -> tuple[str, list, list[str]]:
        """Compile the query to one SQL statement.

        Returns ``(sql, parameters, temp_tables)``; the caller drops the temp
        tables (large extra-unary relations staged out of the ``IN`` list,
        and -- under ``materialize=True`` -- the eagerly-built bag relations)
        after fetching.
        """
        if lowering == "flat":
            return self._lower_flat(doc_id, query, pinned, extra_unary, boolean)
        if lowering != "tree":
            raise ValueError(f"unknown lowering {lowering!r} (expected one of {LOWERINGS})")
        return _TreeLowering(
            self, doc_id, query, pinned, extra_unary, materialize=materialize
        ).lower(boolean)

    def _lower_flat(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]],
        extra_unary: Mapping[str, frozenset[int]],
        boolean: bool,
    ) -> tuple[str, list, list[str]]:
        """The PR 6 one-big-join lowering (the ``lowering="flat"`` ablation)."""
        variables = query.variables()
        alias = {variable: f"a{i}" for i, variable in enumerate(variables)}
        params: list = []
        temp_tables: list[str] = []
        from_clause = ", ".join(f"accel {alias[v]}" for v in variables)
        conditions: list[str] = []
        for variable in variables:
            conditions.append(f"{alias[variable]}.doc = ?")
            params.append(doc_id)
        for atom in query.body:
            if isinstance(atom, AxisAtom):
                template = _AXIS_SQL.get(atom.axis)
                if template is None:  # pragma: no cover - defensive
                    raise ValueError(f"axis {atom.axis} has no SQL lowering")
                conditions.append(
                    "(" + template.format(s=alias[atom.source], t=alias[atom.target]) + ")"
                )
            elif isinstance(atom, LabelAtom):
                column = f"{alias[atom.variable]}.id"
                if atom.label in extra_unary:
                    conditions.append(
                        self._unary_condition(column, extra_unary[atom.label], params, temp_tables)
                    )
                else:
                    conditions.append(
                        "EXISTS (SELECT 1 FROM label WHERE doc = ? "
                        f"AND node = {column} AND name = ?)"
                    )
                    params.extend((doc_id, atom.label))
        if pinned:
            for variable, node_id in pinned.items():
                if variable in alias:
                    conditions.append(f"{alias[variable]}.id = ?")
                    params.append(node_id)
        where = " AND ".join(conditions) if conditions else "1"
        if boolean or not query.head:
            sql = f"SELECT 1 FROM {from_clause} WHERE {where} LIMIT 1"
        else:
            columns = ", ".join(f"{alias[v]}.id" for v in query.head)
            sql = f"SELECT DISTINCT {columns} FROM {from_clause} WHERE {where}"
        return sql, params, temp_tables

    def _unary_condition(
        self,
        column: str,
        members: frozenset[int],
        params: list,
        temp_tables: list[str],
    ) -> str:
        """Membership test against an extra-unary relation.

        Small relations (the singleton pins of the k-ary reduction) inline as
        an ``IN`` list; large ones stage into a temp table to stay clear of
        SQLite's bound-variable cap.
        """
        if not members:
            return "0"
        if len(members) <= _IN_LIST_LIMIT:
            params.extend(sorted(members))
            return f"{column} IN ({', '.join('?' * len(members))})"
        self._temp_counter += 1
        name = f"tmp_unary_{self._temp_counter}"
        cursor = self._connection.cursor()
        cursor.execute(f"CREATE TEMP TABLE {name} (node INTEGER PRIMARY KEY)")
        cursor.executemany(
            f"INSERT INTO {name} VALUES (?)", ((node,) for node in sorted(members))
        )
        temp_tables.append(name)
        return f"{column} IN (SELECT node FROM {name})"

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]] = None,
        extra_unary: Optional[Mapping[str, frozenset[int]]] = None,
        lowering: str = "tree",
        materialize: bool = False,
    ) -> frozenset[Row]:
        """All answers of ``query`` on the registered document.

        Boolean queries return ``{()}`` / ``frozenset()``; the answer set is
        byte-identical to :func:`repro.evaluation.planner.evaluate` on every
        query and under both lowerings, which the equivalence suite enforces.
        """
        extras = extra_unary or {}
        if not query.variables():
            return frozenset({()})
        if query.is_boolean:
            return (
                frozenset({()})
                if self.is_satisfied(
                    doc_id, query, pinned, extra_unary,
                    lowering=lowering, materialize=materialize,
                )
                else frozenset()
            )
        with self._lock:
            sql, params, temp_tables = self._lower(
                doc_id, query, pinned, extras, False, lowering, materialize
            )
            try:
                rows = self._connection.execute(sql, params).fetchall()
            finally:
                self._drop_temp_tables(temp_tables)
        return frozenset(tuple(row) for row in rows)

    def stream_answers(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]] = None,
        extra_unary: Optional[Mapping[str, frozenset[int]]] = None,
        *,
        limit: Optional[int] = None,
        batch_size: int = STREAM_BATCH_SIZE,
        lowering: str = "tree",
        materialize: bool = False,
    ) -> Iterator[Row]:
        """Answers in ascending head-tuple order, streamed in cursor batches.

        The ``ORDER BY`` over the head columns runs inside SQLite (matching
        Python's lexicographic tuple order on the sorted answer set) and
        ``limit`` is pushed down *after* it, so a truncated request never
        materialises the full answer set anywhere -- peak Python memory is
        bounded by ``batch_size`` rows, not the result size.
        """
        extras = extra_unary or {}
        if not query.variables() or query.is_boolean:
            if limit is not None and limit <= 0:
                return
            if self.is_satisfied(
                doc_id, query, pinned, extra_unary,
                lowering=lowering, materialize=materialize,
            ):
                yield ()
            return
        with self._lock:
            sql, params, temp_tables = self._lower(
                doc_id, query, pinned, extras, False, lowering, materialize
            )
            order = ", ".join(str(k + 1) for k in range(len(query.head)))
            sql += f" ORDER BY {order}"
            if limit is not None:
                sql += " LIMIT ?"
                params.append(limit)
            cursor = self._connection.cursor()
            try:
                cursor.execute(sql, params)
            except BaseException:
                self._drop_temp_tables(temp_tables)
                raise
        tracing.annotate(sql=sql, doc=doc_id)
        streamed = 0
        width = len(query.head)
        try:
            while True:
                with self._lock:
                    rows = cursor.fetchmany(batch_size)
                if not rows:
                    return
                streamed += len(rows)
                SQL_ROWS_STREAMED.inc(len(rows))
                SQL_BYTES_FETCHED.inc(8 * width * len(rows))
                for row in rows:
                    yield tuple(row)
        finally:
            SQL_STREAM_ROWS.observe(streamed)
            tracing.annotate(rows_streamed=streamed)
            with self._lock:
                cursor.close()
                self._drop_temp_tables(temp_tables)

    def count_answers(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]] = None,
        extra_unary: Optional[Mapping[str, frozenset[int]]] = None,
        lowering: str = "tree",
        materialize: bool = False,
    ) -> int:
        """Exact answer count, without materialising any answers in Python.

        The serving layer pairs this with a ``LIMIT``-ed stream so truncated
        responses still report the exact total.
        """
        extras = extra_unary or {}
        if not query.variables() or query.is_boolean:
            return (
                1
                if self.is_satisfied(
                    doc_id, query, pinned, extra_unary,
                    lowering=lowering, materialize=materialize,
                )
                else 0
            )
        with self._lock:
            sql, params, temp_tables = self._lower(
                doc_id, query, pinned, extras, False, lowering, materialize
            )
            try:
                (count,) = self._connection.execute(
                    f"SELECT COUNT(*) FROM ({sql})", params
                ).fetchone()
            finally:
                self._drop_temp_tables(temp_tables)
        return count

    def is_satisfied(
        self,
        doc_id: str,
        query: ConjunctiveQuery,
        pinned: Optional[Mapping[Variable, int]] = None,
        extra_unary: Optional[Mapping[str, frozenset[int]]] = None,
        lowering: str = "tree",
        materialize: bool = False,
    ) -> bool:
        """Boolean evaluation (existential closure) of ``query``."""
        extras = extra_unary or {}
        if not query.variables():
            return True
        with self._lock:
            sql, params, temp_tables = self._lower(
                doc_id, query, pinned, extras, True, lowering, materialize
            )
            try:
                row = self._connection.execute(sql, params).fetchone()
            finally:
                self._drop_temp_tables(temp_tables)
        return row is not None

    def _drop_temp_tables(self, temp_tables: Iterable[str]) -> None:
        for name in temp_tables:
            self._connection.execute(f"DROP TABLE IF EXISTS {name}")

    def explain_sql(self, doc_id: str, query: ConjunctiveQuery, lowering: str = "tree") -> str:
        """The SQL text :meth:`evaluate` would run -- without executing it.

        Lowers with an empty extra-unary environment (label membership stays
        as ``EXISTS`` probes against the ``label`` table, never an inlined
        ``IN`` list), so no temp table is staged and nothing is executed:
        the EXPLAIN surface can describe plans for documents that are not
        even registered in this backend.
        """
        if not query.variables():
            return "SELECT 1"
        with self._lock:
            sql, _params, temp_tables = self._lower(
                doc_id, query, None, {}, query.is_boolean, lowering
            )
            self._drop_temp_tables(temp_tables)
        return sql

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteBackend(path={self.path!r})"


# ---------------------------------------------------------------------------
# Planner integration: evaluate a TreeStructure through a cached backend.
# ---------------------------------------------------------------------------

#: One in-memory backend per live tree, for ``Engine.SQL`` cross-checking;
#: entries die with their tree.
_TREE_BACKENDS: "WeakKeyDictionary[Tree, SQLiteBackend]" = WeakKeyDictionary()
_TREE_DOC_ID = "tree"


def backend_for_tree(tree: Tree) -> SQLiteBackend:
    """The (memoized) in-memory accel database of ``tree``."""
    backend = _TREE_BACKENDS.get(tree)
    if backend is None:
        backend = SQLiteBackend()
        backend.register_tree(_TREE_DOC_ID, tree)
        _TREE_BACKENDS[tree] = backend
    return backend


def evaluate_structure(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    lowering: str = "tree",
    materialize: bool = False,
) -> frozenset[Row]:
    """``Engine.SQL`` entry point: answers of ``query`` over ``structure``."""
    backend = backend_for_tree(structure.tree)
    return backend.evaluate(
        _TREE_DOC_ID,
        query,
        pinned=pinned,
        extra_unary=structure.extra_unary_relations(),
        lowering=lowering,
        materialize=materialize,
    )


def structure_is_satisfied(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    lowering: str = "tree",
    materialize: bool = False,
) -> bool:
    """``Engine.SQL`` Boolean entry point."""
    backend = backend_for_tree(structure.tree)
    return backend.is_satisfied(
        _TREE_DOC_ID,
        query,
        pinned=pinned,
        extra_unary=structure.extra_unary_relations(),
        lowering=lowering,
        materialize=materialize,
    )


#: Lazily created shared backend used only to *lower* queries for the
#: EXPLAIN surface (the schema exists; no document rows ever do).
_EXPLAIN_BACKEND: Optional[SQLiteBackend] = None
_EXPLAIN_LOCK = threading.Lock()


def explain_sql(
    query: ConjunctiveQuery,
    doc_id: str = "doc",
    backend: Optional[SQLiteBackend] = None,
    lowering: str = "tree",
) -> str:
    """The SQL text ``Engine.SQL`` would run for ``query`` -- never executed.

    With ``backend=None`` (a document that is not accel-resident) the
    lowering runs against a shared empty in-memory backend: the generated
    statement depends only on the query and the doc id, not on any data.
    """
    global _EXPLAIN_BACKEND
    if backend is None:
        with _EXPLAIN_LOCK:
            if _EXPLAIN_BACKEND is None:
                _EXPLAIN_BACKEND = SQLiteBackend()
            backend = _EXPLAIN_BACKEND
    return backend.explain_sql(doc_id, query, lowering=lowering)
