"""Command-line interface: evaluate, classify, rewrite and report.

Usage (after installation, or with ``python -m repro.cli``)::

    python -m repro.cli evaluate --tree doc.xml --query "Q(x) <- item(x), Child(x, p), payment(p)"
    python -m repro.cli evaluate --sexpr "(S (NP) (VP))" --xpath "//NP"
    python -m repro.cli explain --tree doc.xml --query "Q(x) <- a(x), Child+(x, y), b(y)"
    python -m repro.cli classify "Child, Following"
    python -m repro.cli rewrite "Q <- A(x), Child+(x, z), B(y), Child+(y, z)" --trace
    python -m repro.cli table1
    python -m repro.cli report --quick
    python -m repro.cli serve --port 8080 --document site=doc.xml
    python -m repro.cli serve --async --shards 4 --port 8080 --profile
    python -m repro.cli drift --url http://127.0.0.1:8080
    python -m repro.cli batch --input requests.jsonl --output results.jsonl

The CLI is a thin layer over the library; each sub-command maps onto one or
two public functions, so it doubles as executable documentation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .evaluation import Engine, Propagator, evaluate
from .queries import ConjunctiveQuery, parse_query, xpath_to_cq
from .rewriting import RewriteTrace, to_apq
from .trees import Tree, TreeStructure, from_xml_file, parse_sexpr
from .trees.axes import axis_from_name
from .xproperty import classify, order_for, render_table1


def _load_tree(args: argparse.Namespace) -> Tree:
    if getattr(args, "tree", None):
        return from_xml_file(args.tree)
    if getattr(args, "sexpr", None):
        return parse_sexpr(args.sexpr)
    raise SystemExit("provide a tree via --tree FILE.xml or --sexpr '(A (B))'")


def _load_query(args: argparse.Namespace) -> ConjunctiveQuery:
    if getattr(args, "query", None):
        return parse_query(args.query)
    if getattr(args, "xpath", None):
        return xpath_to_cq(args.xpath)
    raise SystemExit("provide a query via --query 'Q(x) <- ...' or --xpath '//A[B]'")


def _command_evaluate(args: argparse.Namespace) -> int:
    from .planning import DocumentStats, plan_query

    query = _load_query(args)
    requested = Engine(args.engine)
    propagator_override = (
        None if args.propagator == "auto" else Propagator(args.propagator)
    )
    if args.doc is not None and args.accel_db is None:
        raise SystemExit("--doc requires --accel-db (it names a document in the accel database)")
    # Pure out-of-core mode: --doc names an already-materialised document in
    # the accel database, so no tree source is needed (or loaded).
    out_of_core = (
        args.accel_db is not None and args.doc is not None and not (args.tree or args.sexpr)
    )
    tree = None if out_of_core else _load_tree(args)
    accel_line = None
    print_limit = args.limit if args.limit is not None else 20
    try:
        if args.accel_db is not None:
            if requested not in (Engine.AUTO, Engine.SQL):
                raise SystemExit(
                    f"--accel-db documents evaluate on the SQL engine; "
                    f"--engine {requested.value} needs a resident tree"
                )
            # Out-of-core path: materialise the document into a file-backed
            # accel database once, then evaluate there; later runs against the
            # same database skip re-materialisation.
            import hashlib

            from .backends.sqlite import SQLiteBackend

            backend = SQLiteBackend(args.accel_db)
            if tree is not None:
                doc_id = args.doc or args.tree or (
                    "sexpr:" + hashlib.sha256(args.sexpr.encode("utf-8")).hexdigest()[:16]
                )
                materialised = backend.ensure_document(doc_id, tree)
                accel_line = (
                    f"accel    : {args.accel_db} "
                    f"({'materialised' if materialised else 'reused'} doc {doc_id!r})"
                )
                node_count = len(tree)
            else:
                doc_id = args.doc
                nodes = backend.document_nodes(doc_id)
                if nodes is None:
                    raise SystemExit(
                        f"document {doc_id!r} is not in {args.accel_db}; "
                        "register it first (or pass --tree/--sexpr alongside --doc)"
                    )
                accel_line = f"accel    : {args.accel_db} (accel-only doc {doc_id!r})"
                node_count = nodes
            # Mirrors serving-layer routing: accel residency plans with
            # ``accel_only=True`` (pinning the SQL engine); an explicit
            # ``--engine sql`` still wins, and the plan's lowering knobs
            # (flat vs tree, TEMP-table materialization) apply to every call.
            stats = (
                DocumentStats.of_tree(tree)
                if tree is not None
                else DocumentStats.approximate_from_nodes(node_count)
            )
            plan = plan_query(
                query,
                stats,
                routing=args.routing,
                engine=None if requested is Engine.AUTO else requested,
                propagator=propagator_override,
                accel_only=True,
            )
            engine = plan.engine
            sql_knobs = {"lowering": plan.lowering, "materialize": plan.materialize}
            if query.is_boolean:
                count = 1 if backend.is_satisfied(doc_id, query, **sql_knobs) else 0
                answers = [()] if count else []
            else:
                # Streamed + limit pushdown: only the printed prefix is ever
                # materialised in Python; the exact total is one COUNT(*).
                count = backend.count_answers(doc_id, query, **sql_knobs)
                answers = list(
                    backend.stream_answers(doc_id, query, limit=print_limit, **sql_knobs)
                )
        else:
            structure = TreeStructure(tree)
            plan = plan_query(
                query,
                DocumentStats.of_tree(tree),
                routing=args.routing,
                engine=None if requested is Engine.AUTO else requested,
                propagator=propagator_override,
            )
            engine = plan.engine
            answers = sorted(
                evaluate(
                    query,
                    structure,
                    engine=plan.engine,
                    propagator=plan.propagator,
                    lowering=plan.lowering,
                    materialize=plan.materialize,
                )
            )
            count = len(answers)
            node_count = len(tree)
    except ValueError as error:
        # A forced engine can be inapplicable (e.g. --engine acyclic on a
        # cyclic query); report it like any other bad-flag combination.
        raise SystemExit(f"--engine {requested.value}: {error}") from None
    forced = "" if requested is Engine.AUTO else " (forced)"
    print(f"query    : {query}")
    print(f"signature: {query.signature()}  ({classify(query.signature()).value})")
    detail = f"propagator: {plan.propagator.value}, routing: {plan.routing}"
    if engine is Engine.SQL:
        detail += f", lowering: {plan.lowering}"
        if plan.materialize:
            detail += " (materialized)"
    print(f"engine   : {engine.value}{forced} ({detail})")
    if accel_line is not None:
        print(accel_line)
    print(f"tree     : {node_count} nodes")
    if query.is_boolean:
        print(f"answer   : {'true' if count else 'false'}")
    else:
        print(f"answers  : {count}")
        for answer in answers[:print_limit]:
            if tree is not None:
                labels = [",".join(sorted(tree.labels(node))) or "-" for node in answer]
                rendered = ", ".join(
                    f"{node}({label})" for node, label in zip(answer, labels)
                )
            else:
                rendered = ", ".join(str(node) for node in answer)
            print(f"    {rendered}")
        if count > print_limit:
            print(f"    ... {count - print_limit} more")
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    """Describe the plan for a query -- engine, width, bags, SQL -- without
    executing it (the CLI face of ``"explain": true`` on ``/query``)."""
    import json

    from .service import DocumentStore, QueryCache, Request
    from .service.core import run_request

    accel_backend = None
    if args.accel_db is not None:
        from .backends.sqlite import SQLiteBackend

        accel_backend = SQLiteBackend(args.accel_db)
    store = DocumentStore(accel_backend=accel_backend)
    accel_only = (
        args.accel_db is not None and args.doc is not None and not (args.tree or args.sexpr)
    )
    if accel_only:
        doc_id = args.doc
        if accel_backend.document_nodes(doc_id) is None:
            raise SystemExit(
                f"document {doc_id!r} is not in {args.accel_db}; "
                "register it first (or pass --tree/--sexpr alongside --doc)"
            )
    else:
        tree = _load_tree(args)
        doc_id = args.doc or args.tree or "cli"
        store.register_tree(doc_id, tree)
    request = Request(
        doc=doc_id,
        query=getattr(args, "query", None),
        xpath=getattr(args, "xpath", None),
        propagator=args.propagator,
        engine=args.engine if args.engine != Engine.AUTO.value else None,
        routing=args.routing,
        explain=True,
    )
    result = run_request(store, QueryCache(), request)
    print(json.dumps(result.to_json_dict(), indent=2, sort_keys=True))
    return 0 if result.ok else 1


def _command_classify(args: argparse.Namespace) -> int:
    axes = frozenset(
        axis_from_name(name.strip()) for name in args.axes.split(",") if name.strip()
    )
    complexity = classify(axes)
    order = order_for(axes)
    print(f"signature : {{{', '.join(sorted(a.value for a in axes))}}}")
    print(f"complexity: {complexity.value}")
    if order is not None:
        print(f"witnessing order with the X-property: <{order.value}")
    else:
        print("no single order gives all axes the X-property (Theorem 1.1: NP-complete)")
    return 0


def _command_rewrite(args: argparse.Namespace) -> int:
    query = _load_query(args)
    trace: Optional[RewriteTrace] = RewriteTrace() if args.trace else None
    apq = to_apq(query, trace=trace)
    print(f"input : {query}")
    print(f"output: {len(apq)} acyclic disjunct(s), total size {apq.size()}")
    for disjunct in apq:
        print(f"    {disjunct}")
    if apq.is_empty():
        print("    (empty union: the query is unsatisfiable over trees)")
    if trace is not None:
        print()
        print(trace)
    return 0


def _command_table1(_args: argparse.Namespace) -> int:
    print(render_table1())
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from .experiments import report

    print(report.run(quick=args.quick).render())
    return 0


def _parse_document_flags(flags: Sequence[str]):
    """``--document name=path.xml`` flags as (doc_id, path) pairs."""
    pairs = []
    for flag in flags:
        doc_id, separator, path = flag.partition("=")
        if not separator or not doc_id or not path:
            raise SystemExit(f"--document expects NAME=PATH.xml, got {flag!r}")
        pairs.append((doc_id, path))
    return pairs


def _build_executor(args: argparse.Namespace):
    """The serving backend the flags ask for: thread-pooled or process-sharded."""
    from .service import BatchExecutor, DocumentStore, QueryCache, ShardedExecutor

    from .trees import XMLParseError

    documents = _parse_document_flags(args.document)
    accel_db = getattr(args, "accel_db", None)
    try:
        if args.shards:
            executor = ShardedExecutor(
                shards=args.shards, store_capacity=args.capacity, accel_db=accel_db
            )
        else:
            accel_backend = None
            if accel_db is not None:
                from .backends.sqlite import SQLiteBackend

                accel_backend = SQLiteBackend(accel_db)
            store = DocumentStore(capacity=args.capacity, accel_backend=accel_backend)
            executor = BatchExecutor(store, QueryCache(), max_workers=args.workers)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    try:
        for doc_id, path in documents:
            # The CLI shares the server's trust domain, so file registration
            # is allowed (each shard parses its own documents).
            executor.register_payload({"doc": doc_id, "xml_file": path}, allow_files=True)
    except (OSError, XMLParseError, ValueError) as error:
        executor.close()
        raise SystemExit(f"cannot pre-register document: {error}") from None
    return executor


def _banner(executor, host: str, port: int) -> str:
    # Printed (and flushed) first so callers that picked port 0 learn the
    # ephemeral port; the CI smoke script depends on this line.
    return f"serving on http://{host}:{port} ({executor.document_count()} document(s) resident)"


def _serve_threaded(executor, args: argparse.Namespace) -> int:
    from .service import make_server

    server = make_server(executor, host=args.host, port=args.port, quiet=not args.verbose)
    host, port = server.server_address[:2]
    print(_banner(executor, host, port), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return 0


def _serve_async(executor, args: argparse.Namespace) -> int:
    import asyncio

    from .service import AsyncServiceServer

    async def _run() -> None:
        server = AsyncServiceServer(
            executor,
            host=args.host,
            port=args.port,
            max_in_flight=args.max_in_flight,
            quiet=not args.verbose,
        )
        host, port = await server.start()
        print(_banner(executor, host, port), flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import signal

    def _graceful_shutdown(_signum, _frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    # SIGTERM (docker stop, supervisors, process.terminate()) must run the
    # same cleanup as Ctrl-C: without it the sharded backend's worker
    # processes are orphaned, as they only exit on the close() sentinel or on
    # noticing the parent died.
    signal.signal(signal.SIGTERM, _graceful_shutdown)
    executor = _build_executor(args)
    if args.profile is not None:
        # Fleet-wide under --shards: the broadcast reaches the (already
        # forked) workers, so every process samples from the first request.
        try:
            executor.profile_control("start", args.profile)
        except ValueError as error:
            executor.close()
            raise SystemExit(f"--profile: {error}") from None
    try:
        if args.use_async:
            return _serve_async(executor, args)
        return _serve_threaded(executor, args)
    finally:
        executor.close()


def _command_drift(args: argparse.Namespace) -> int:
    """Show a running server's plan-vs-actual drift table (from ``/stats``).

    The operator face of the accounting layer: per-engine calibration (how
    many cost-model work units one second of that engine's wall-clock
    retires) and the worst over/under-estimated requests, worst first.
    """
    import json
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/stats"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            stats = json.loads(response.read().decode("utf-8"))
    except (OSError, ValueError, urllib.error.URLError) as error:
        raise SystemExit(f"cannot fetch {url}: {error}") from None
    accounting = stats.get("plan_accounting")
    if not isinstance(accounting, dict):
        raise SystemExit(f"{url} has no 'plan_accounting' section (older server?)")
    if args.json:
        print(json.dumps(accounting, indent=2, sort_keys=True))
        return 0
    print(
        f"plan-vs-actual accounting: {accounting.get('requests', 0)} request(s) "
        f"ledgered, {accounting.get('skipped', 0)} skipped"
    )
    engines = accounting.get("engines", {})
    if engines:
        print("engine calibration (cost units retired per second):")
        for engine, calibration in sorted(engines.items()):
            rate = calibration.get("units_per_second")
            rendered = f"{rate:,.0f}" if isinstance(rate, (int, float)) else "n/a"
            print(f"    {engine:<14} {rendered:>14}  ({calibration.get('count', 0)} request(s))")
    entries = accounting.get("top_drift", [])[: args.limit]
    if not entries:
        print("top drift: (no executed requests yet)")
        return 0
    print(f"top drift (worst {len(entries)} of capacity {accounting.get('capacity')}):")
    for entry in entries:
        query = str(entry.get("query", ""))
        if len(query) > 60:
            query = query[:57] + "..."
        stage = entry.get("stage_ms", {})
        print(
            f"    x{entry.get('drift'):<9} {entry.get('direction', '?'):<14} "
            f"{entry.get('engine')}/{entry.get('propagator')}/{entry.get('lowering')} "
            f"est={entry.get('estimated_cost')} rows={entry.get('rows')} "
            f"elapsed={entry.get('elapsed_ms')}ms "
            f"(plan={stage.get('plan')}ms exec={stage.get('execute')}ms)"
        )
        print(f"        doc={entry.get('doc')!r} bucket={entry.get('stats_bucket')!r} {query}")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    """JSONL in, JSONL out: register ops and query requests, in order.

    Consecutive query lines form one concurrently-executed batch (results
    stay in input order); a register line is a barrier, so queries always see
    every document registered above them.
    """
    import json

    from .service import Request

    executor = _build_executor(args)
    try:
        input_handle = (
            sys.stdin if args.input == "-" else open(args.input, encoding="utf-8")
        )
        output_handle = (
            sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
        )
    except OSError as error:
        raise SystemExit(str(error)) from None

    def emit(payload: dict) -> None:
        output_handle.write(json.dumps(payload) + "\n")

    failures = 0

    def flush_queries(pending: list[Request]) -> None:
        nonlocal failures
        for result in executor.execute_batch(pending):
            if not result.ok:
                failures += 1
            emit(result.to_json_dict())
        pending.clear()

    try:
        pending: list[Request] = []
        for line_number, line in enumerate(input_handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError("each JSONL line must be a JSON object")
                op = payload.pop("op", None)
                if op == "register":
                    flush_queries(pending)
                    # The CLI shares the server's trust domain, so file
                    # registration is allowed here (unlike over HTTP).
                    summary = executor.register_payload(payload, allow_files=True)
                    emit({"ok": True, **summary})
                elif op in (None, "query"):
                    pending.append(Request.from_json_dict(payload))
                else:
                    raise ValueError(
                        f"unknown op {op!r}; expected 'register' or 'query'"
                    )
            except Exception as error:  # noqa: BLE001 - per-line error reporting
                flush_queries(pending)  # keep the output in input order
                failures += 1
                emit({"error": f"line {line_number}: {error}"})
        flush_queries(pending)
    finally:
        executor.close()
        if input_handle is not sys.stdin:
            input_handle.close()
        if output_handle is not sys.stdout:
            output_handle.close()
        else:
            output_handle.flush()
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conjunctive queries over trees (Gottlob, Koch & Schulz) -- reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    evaluate_parser = commands.add_parser("evaluate", help="evaluate a query on a tree")
    evaluate_parser.add_argument("--tree", help="XML file containing the data tree")
    evaluate_parser.add_argument("--sexpr", help="the data tree as an s-expression")
    evaluate_parser.add_argument("--query", help="conjunctive query in datalog notation")
    evaluate_parser.add_argument("--xpath", help="query as an XPath expression")
    evaluate_parser.add_argument("--limit", type=int, default=None, help="max answers to print")
    evaluate_parser.add_argument(
        "--propagator",
        choices=["auto"] + [propagator.value for propagator in Propagator],
        default="auto",
        help="arc-consistency engine (default: auto = the plan's choice)",
    )
    evaluate_parser.add_argument(
        "--routing",
        choices=["cost", "static"],
        default="cost",
        help=(
            "planner routing: 'cost' uses document-statistics estimates "
            "(default); 'static' keeps the pre-planner shape rules as the "
            "ablation baseline (answers are byte-identical either way)"
        ),
    )
    evaluate_parser.add_argument(
        "--engine",
        choices=[engine.value for engine in Engine],
        default=Engine.AUTO.value,
        help=(
            "evaluation engine override (default: auto = planner choice; "
            "'decomposition' forces the hypertree/Yannakakis engine, "
            "'backtracking' the exponential fallback, 'sql' the SQLite "
            "accel-table backend)"
        ),
    )
    evaluate_parser.add_argument(
        "--accel-db",
        default=None,
        metavar="PATH",
        help=(
            "file-backed accel database to materialise the document into "
            "(and reuse on later runs) -- the out-of-core path, auto-routed "
            "to the SQL engine"
        ),
    )
    evaluate_parser.add_argument(
        "--doc",
        default=None,
        metavar="ID",
        help=(
            "with --accel-db: the document id to register under (with a tree "
            "source) or to query accel-only (without one, no tree is loaded)"
        ),
    )
    evaluate_parser.set_defaults(handler=_command_evaluate)

    explain_parser = commands.add_parser(
        "explain",
        help="describe the plan for a query (engine, width, bags, SQL) without running it",
    )
    explain_parser.add_argument("--tree", help="XML file containing the data tree")
    explain_parser.add_argument("--sexpr", help="the data tree as an s-expression")
    explain_parser.add_argument("--query", help="conjunctive query in datalog notation")
    explain_parser.add_argument("--xpath", help="query as an XPath expression")
    explain_parser.add_argument(
        "--propagator",
        choices=["auto"] + [propagator.value for propagator in Propagator],
        default="auto",
        help="arc-consistency engine the plan would use (default: auto)",
    )
    explain_parser.add_argument(
        "--routing",
        choices=["cost", "static"],
        default="cost",
        help="planner routing to explain: 'cost' (default) or 'static' (ablation)",
    )
    explain_parser.add_argument(
        "--engine",
        choices=[engine.value for engine in Engine],
        default=Engine.AUTO.value,
        help="evaluation engine override (default: auto = planner choice)",
    )
    explain_parser.add_argument(
        "--accel-db",
        default=None,
        metavar="PATH",
        help="SQLite accel database; with --doc and no tree source, explain accel-only",
    )
    explain_parser.add_argument(
        "--doc",
        default=None,
        metavar="ID",
        help="document id (defaults to the --tree path, or 'cli')",
    )
    explain_parser.set_defaults(handler=_command_explain)

    classify_parser = commands.add_parser(
        "classify", help="classify an axis signature (Table I / Theorem 1.1)"
    )
    classify_parser.add_argument("axes", help="comma-separated axis names, e.g. 'Child, Following'")
    classify_parser.set_defaults(handler=_command_classify)

    rewrite_parser = commands.add_parser(
        "rewrite", help="rewrite a conjunctive query into an acyclic positive query"
    )
    rewrite_parser.add_argument("query", nargs="?", default=None, help="query in datalog notation")
    rewrite_parser.add_argument("--xpath", help="query as an XPath expression")
    rewrite_parser.add_argument("--trace", action="store_true", help="print the rewrite derivation")
    rewrite_parser.set_defaults(handler=_command_rewrite)

    table1_parser = commands.add_parser("table1", help="print the regenerated Table I")
    table1_parser.set_defaults(handler=_command_table1)

    report_parser = commands.add_parser("report", help="run all experiments and print the report")
    report_parser.add_argument("--quick", action="store_true", help="trim the expensive sweeps")
    report_parser.set_defaults(handler=_command_report)

    def add_service_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--document",
            action="append",
            default=[],
            metavar="NAME=PATH.xml",
            help="pre-register an XML document under the given id (repeatable)",
        )
        subparser.add_argument(
            "--capacity",
            type=int,
            default=None,
            help=(
                "LRU bound on resident documents (per worker process with "
                "--shards, so the fleet bound is CAPACITY x N)"
            ),
        )
        subparser.add_argument(
            "--workers",
            type=int,
            default=8,
            help=(
                "batch thread-pool size for the threaded backend (default 8; "
                "ignored with --shards, where parallelism is the shard count)"
            ),
        )
        subparser.add_argument(
            "--shards",
            type=int,
            default=0,
            metavar="N",
            help=(
                "use the process-sharded backend with N worker processes "
                "(documents routed by stable hash of their id; 0 = threaded backend)"
            ),
        )
        subparser.add_argument(
            "--accel-db",
            default=None,
            metavar="PATH",
            help=(
                "SQLite accel database backing the store: registered documents "
                "are mirrored into it, documents already in it are queryable "
                "accel-only (auto-routed to the SQL engine); with --shards each "
                "worker opens its own connection to the shared file"
            ),
        )

    serve_parser = commands.add_parser(
        "serve", help="run the HTTP JSON query service (document store + query cache)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks an ephemeral port)"
    )
    serve_parser.add_argument("--verbose", action="store_true", help="log every request")
    serve_parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="asyncio front end: persistent HTTP/1.1 connections, bounded in-flight requests",
    )
    serve_parser.add_argument(
        "--max-in-flight",
        type=int,
        default=64,
        help="bound on concurrently executing requests for --async (default 64)",
    )
    serve_parser.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=97,
        default=None,
        metavar="HZ",
        help=(
            "start the in-process sampling profiler at startup (optional "
            "frequency, default 97 Hz); dump/control it at GET/POST /profile. "
            "With --shards, every worker process samples and /profile merges"
        ),
    )
    add_service_arguments(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    drift_parser = commands.add_parser(
        "drift",
        help="show a running server's plan-vs-actual drift table (reads /stats)",
    )
    drift_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="base URL of a running cq-trees serve instance (default http://127.0.0.1:8080)",
    )
    drift_parser.add_argument(
        "--limit", type=int, default=10, help="max drift entries to print (default 10)"
    )
    drift_parser.add_argument(
        "--timeout", type=float, default=10.0, help="HTTP timeout in seconds (default 10)"
    )
    drift_parser.add_argument(
        "--json", action="store_true", help="print the raw plan_accounting JSON instead"
    )
    drift_parser.set_defaults(handler=_command_drift)

    batch_parser = commands.add_parser(
        "batch", help="evaluate a JSONL request stream over the serving subsystem"
    )
    batch_parser.add_argument(
        "--input", default="-", help="JSONL request file ('-' for stdin)"
    )
    batch_parser.add_argument(
        "--output", default="-", help="JSONL result file ('-' for stdout)"
    )
    add_service_arguments(batch_parser)
    batch_parser.set_defaults(handler=_command_batch)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
