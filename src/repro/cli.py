"""Command-line interface: evaluate, classify, rewrite and report.

Usage (after installation, or with ``python -m repro.cli``)::

    python -m repro.cli evaluate --tree doc.xml --query "Q(x) <- item(x), Child(x, p), payment(p)"
    python -m repro.cli evaluate --sexpr "(S (NP) (VP))" --xpath "//NP"
    python -m repro.cli classify "Child, Following"
    python -m repro.cli rewrite "Q <- A(x), Child+(x, z), B(y), Child+(y, z)" --trace
    python -m repro.cli table1
    python -m repro.cli report --quick
    python -m repro.cli serve --port 8080 --document site=doc.xml
    python -m repro.cli batch --input requests.jsonl --output results.jsonl

The CLI is a thin layer over the library; each sub-command maps onto one or
two public functions, so it doubles as executable documentation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .evaluation import Propagator, choose_engine, evaluate
from .queries import ConjunctiveQuery, parse_query, xpath_to_cq
from .rewriting import RewriteTrace, to_apq
from .trees import Tree, TreeStructure, from_xml_file, parse_sexpr
from .trees.axes import axis_from_name
from .xproperty import classify, order_for, render_table1


def _load_tree(args: argparse.Namespace) -> Tree:
    if getattr(args, "tree", None):
        return from_xml_file(args.tree)
    if getattr(args, "sexpr", None):
        return parse_sexpr(args.sexpr)
    raise SystemExit("provide a tree via --tree FILE.xml or --sexpr '(A (B))'")


def _load_query(args: argparse.Namespace) -> ConjunctiveQuery:
    if getattr(args, "query", None):
        return parse_query(args.query)
    if getattr(args, "xpath", None):
        return xpath_to_cq(args.xpath)
    raise SystemExit("provide a query via --query 'Q(x) <- ...' or --xpath '//A[B]'")


def _command_evaluate(args: argparse.Namespace) -> int:
    tree = _load_tree(args)
    query = _load_query(args)
    structure = TreeStructure(tree)
    engine = choose_engine(query)
    propagator = Propagator(args.propagator)
    answers = sorted(evaluate(query, structure, propagator=propagator))
    print(f"query    : {query}")
    print(f"signature: {query.signature()}  ({classify(query.signature()).value})")
    print(f"engine   : {engine.value} (propagator: {propagator.value})")
    print(f"tree     : {len(tree)} nodes")
    if query.is_boolean:
        print(f"answer   : {'true' if answers else 'false'}")
    else:
        print(f"answers  : {len(answers)}")
        limit = args.limit if args.limit is not None else 20
        for answer in answers[:limit]:
            labels = [",".join(sorted(tree.labels(node))) or "-" for node in answer]
            rendered = ", ".join(
                f"{node}({label})" for node, label in zip(answer, labels)
            )
            print(f"    {rendered}")
        if len(answers) > limit:
            print(f"    ... {len(answers) - limit} more")
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    axes = frozenset(
        axis_from_name(name.strip()) for name in args.axes.split(",") if name.strip()
    )
    complexity = classify(axes)
    order = order_for(axes)
    print(f"signature : {{{', '.join(sorted(a.value for a in axes))}}}")
    print(f"complexity: {complexity.value}")
    if order is not None:
        print(f"witnessing order with the X-property: <{order.value}")
    else:
        print("no single order gives all axes the X-property (Theorem 1.1: NP-complete)")
    return 0


def _command_rewrite(args: argparse.Namespace) -> int:
    query = _load_query(args)
    trace: Optional[RewriteTrace] = RewriteTrace() if args.trace else None
    apq = to_apq(query, trace=trace)
    print(f"input : {query}")
    print(f"output: {len(apq)} acyclic disjunct(s), total size {apq.size()}")
    for disjunct in apq:
        print(f"    {disjunct}")
    if apq.is_empty():
        print("    (empty union: the query is unsatisfiable over trees)")
    if trace is not None:
        print()
        print(trace)
    return 0


def _command_table1(_args: argparse.Namespace) -> int:
    print(render_table1())
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from .experiments import report

    print(report.run(quick=args.quick).render())
    return 0


def _parse_document_flags(flags: Sequence[str]):
    """``--document name=path.xml`` flags as (doc_id, path) pairs."""
    pairs = []
    for flag in flags:
        doc_id, separator, path = flag.partition("=")
        if not separator or not doc_id or not path:
            raise SystemExit(f"--document expects NAME=PATH.xml, got {flag!r}")
        pairs.append((doc_id, path))
    return pairs


def _build_executor(args: argparse.Namespace):
    from .service import BatchExecutor, DocumentStore, QueryCache, preload

    from .trees import XMLParseError

    try:
        store = DocumentStore(capacity=args.capacity)
        executor = BatchExecutor(store, QueryCache(), max_workers=args.workers)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    try:
        preload(store, _parse_document_flags(args.document))
    except (OSError, XMLParseError) as error:
        raise SystemExit(f"cannot pre-register document: {error}") from None
    return executor


def _command_serve(args: argparse.Namespace) -> int:
    from .service import make_server

    executor = _build_executor(args)
    server = make_server(executor, host=args.host, port=args.port, quiet=not args.verbose)
    host, port = server.server_address[:2]
    # Printed (and flushed) first so callers that picked port 0 learn the
    # ephemeral port; the CI smoke script depends on this line.
    print(
        f"serving on http://{host}:{port} ({len(executor.store)} document(s) resident)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        executor.close()
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    """JSONL in, JSONL out: register ops and query requests, in order.

    Consecutive query lines form one concurrently-executed batch (results
    stay in input order); a register line is a barrier, so queries always see
    every document registered above them.
    """
    import json

    from .service import Request

    executor = _build_executor(args)
    try:
        input_handle = (
            sys.stdin if args.input == "-" else open(args.input, encoding="utf-8")
        )
        output_handle = (
            sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
        )
    except OSError as error:
        raise SystemExit(str(error)) from None

    def emit(payload: dict) -> None:
        output_handle.write(json.dumps(payload) + "\n")

    failures = 0

    def flush_queries(pending: list[Request]) -> None:
        nonlocal failures
        for result in executor.execute_batch(pending):
            if not result.ok:
                failures += 1
            emit(result.to_json_dict())
        pending.clear()

    try:
        pending: list[Request] = []
        for line_number, line in enumerate(input_handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError("each JSONL line must be a JSON object")
                op = payload.pop("op", None)
                if op == "register":
                    flush_queries(pending)
                    # The CLI shares the server's trust domain, so file
                    # registration is allowed here (unlike over HTTP).
                    document = executor.store.register_payload(payload, allow_files=True)
                    emit({"ok": True, **document.describe()})
                elif op in (None, "query"):
                    pending.append(Request.from_json_dict(payload))
                else:
                    raise ValueError(
                        f"unknown op {op!r}; expected 'register' or 'query'"
                    )
            except Exception as error:  # noqa: BLE001 - per-line error reporting
                flush_queries(pending)  # keep the output in input order
                failures += 1
                emit({"error": f"line {line_number}: {error}"})
        flush_queries(pending)
    finally:
        executor.close()
        if input_handle is not sys.stdin:
            input_handle.close()
        if output_handle is not sys.stdout:
            output_handle.close()
        else:
            output_handle.flush()
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conjunctive queries over trees (Gottlob, Koch & Schulz) -- reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    evaluate_parser = commands.add_parser("evaluate", help="evaluate a query on a tree")
    evaluate_parser.add_argument("--tree", help="XML file containing the data tree")
    evaluate_parser.add_argument("--sexpr", help="the data tree as an s-expression")
    evaluate_parser.add_argument("--query", help="conjunctive query in datalog notation")
    evaluate_parser.add_argument("--xpath", help="query as an XPath expression")
    evaluate_parser.add_argument("--limit", type=int, default=None, help="max answers to print")
    evaluate_parser.add_argument(
        "--propagator",
        choices=[propagator.value for propagator in Propagator],
        default=Propagator.AC4.value,
        help="arc-consistency engine (default: ac4 support counting)",
    )
    evaluate_parser.set_defaults(handler=_command_evaluate)

    classify_parser = commands.add_parser(
        "classify", help="classify an axis signature (Table I / Theorem 1.1)"
    )
    classify_parser.add_argument("axes", help="comma-separated axis names, e.g. 'Child, Following'")
    classify_parser.set_defaults(handler=_command_classify)

    rewrite_parser = commands.add_parser(
        "rewrite", help="rewrite a conjunctive query into an acyclic positive query"
    )
    rewrite_parser.add_argument("query", nargs="?", default=None, help="query in datalog notation")
    rewrite_parser.add_argument("--xpath", help="query as an XPath expression")
    rewrite_parser.add_argument("--trace", action="store_true", help="print the rewrite derivation")
    rewrite_parser.set_defaults(handler=_command_rewrite)

    table1_parser = commands.add_parser("table1", help="print the regenerated Table I")
    table1_parser.set_defaults(handler=_command_table1)

    report_parser = commands.add_parser("report", help="run all experiments and print the report")
    report_parser.add_argument("--quick", action="store_true", help="trim the expensive sweeps")
    report_parser.set_defaults(handler=_command_report)

    def add_service_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--document",
            action="append",
            default=[],
            metavar="NAME=PATH.xml",
            help="pre-register an XML document under the given id (repeatable)",
        )
        subparser.add_argument(
            "--capacity", type=int, default=None, help="LRU bound on resident documents"
        )
        subparser.add_argument(
            "--workers", type=int, default=8, help="batch thread-pool size (default 8)"
        )

    serve_parser = commands.add_parser(
        "serve", help="run the HTTP JSON query service (document store + query cache)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks an ephemeral port)"
    )
    serve_parser.add_argument("--verbose", action="store_true", help="log every request")
    add_service_arguments(serve_parser)
    serve_parser.set_defaults(handler=_command_serve)

    batch_parser = commands.add_parser(
        "batch", help="evaluate a JSONL request stream over the serving subsystem"
    )
    batch_parser.add_argument(
        "--input", default="-", help="JSONL request file ('-' for stdin)"
    )
    batch_parser.add_argument(
        "--output", default="-", help="JSONL result file ('-' for stdout)"
    )
    add_service_arguments(batch_parser)
    batch_parser.set_defaults(handler=_command_batch)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
