"""Structural decomposition: hypergraphs, tree decompositions, Yannakakis.

The planner's answer to cyclic queries used to be exponential backtracking,
full stop.  This package adds the structural middle ground from the
decomposition literature (Gottlob-Leone-Scarcello): build the query's atom
hypergraph (:mod:`hypergraph`), search for a low-width tree decomposition of
its primal graph (:mod:`decompose`), and when the width is small evaluate by
bag materialization + semijoin passes + join-tree answer enumeration
(:mod:`yannakakis`) -- polynomial for bounded width, exact for every query.
"""

from .decompose import (
    EXACT_VERTEX_LIMIT,
    TreeDecomposition,
    decompose,
    decompose_hypergraph,
    exact_elimination_order,
    min_degree_order,
    min_fill_order,
)
from .hypergraph import (
    GYOResult,
    Hypergraph,
    gyo_reduction,
    is_alpha_acyclic,
    query_hypergraph,
)
from .yannakakis import boolean_query_holds, evaluate_answers

__all__ = [
    "EXACT_VERTEX_LIMIT",
    "GYOResult",
    "Hypergraph",
    "TreeDecomposition",
    "boolean_query_holds",
    "decompose",
    "decompose_hypergraph",
    "evaluate_answers",
    "exact_elimination_order",
    "gyo_reduction",
    "is_alpha_acyclic",
    "min_degree_order",
    "min_fill_order",
    "query_hypergraph",
]
