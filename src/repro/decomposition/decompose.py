"""Tree-decomposition search over the compiled constraint graph.

A *tree decomposition* of the query's primal graph is a tree of variable bags
such that (i) every variable occurs in some bag, (ii) every constraint's
endpoint pair is contained in some bag, and (iii) each variable's bags form a
connected subtree.  Its *width* is the maximum bag size minus one: forests
have width 1 (bags are the edges), cycles width 2, cliques of size k width
k - 1.  Bounded width is the tractability handle for cyclic queries: the bags
of a width-w decomposition can be materialized in O(n^(w+1)) and joined along
the tree Yannakakis-style (:mod:`repro.decomposition.yannakakis`), so a cyclic
query of width 2 evaluates in polynomial time where the generic planner
fallback resorts to exponential backtracking.

Search strategy (:func:`decompose`):

* **exact** for small queries (up to :data:`EXACT_VERTEX_LIMIT` variables) --
  the Held-Karp-style subset dynamic program over elimination prefixes
  (Bodlaender et al., *Treewidth computations I*), O(2^n poly(n)), which is
  nothing for query-sized graphs;
* **min-fill and min-degree** elimination heuristics otherwise, keeping the
  better of the two orders.

Width alone does not pin down the decomposition: a graph usually admits many
width-optimal trees, and they are *not* evaluation-equivalent.  For the
bench's ``open_auction/bidder/Following`` triangle, one width-2 tree covers
its middle bag with a ``Child`` atom (linear rows) while another covers it
only with ``Following`` (quadratic rows) -- a 100x materialization gap the
canonicalizer used to flip between by alpha-renaming, because ties broke on
variable names.  The search therefore minimizes ``(width, static cost)``: a
rename-invariant estimate of bag materialization expense from axis density
(:data:`AXIS_WEIGHTS` -- point axes cheap, subtree axes medium, the interval
order axes dense, atom-less fill pairs worst).  On the exact path a second
subset DP picks the cheapest order among those achieving the certified width.

Either way the result reports the *achieved* width (recomputed from the bags,
never trusted from the search), the method that produced it, and for the exact
path the certified optimum.  Decompositions depend only on the query, so the
compiled query caches its decomposition (`CompiledQuery.decomposition`) and
the serving layer's resident plans reuse it across requests for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from ..queries.atoms import Variable
from ..trees.axes import Axis
from .hypergraph import Hypergraph

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from ..evaluation.compile import CompiledQuery

#: Queries with at most this many variables get the exact treewidth DP.
EXACT_VERTEX_LIMIT = 12

#: Relative per-step fan-out of instantiating a bag variable through an atom
#: of the given axis (roughly log-scaled relation density on an n-node tree):
#: point/local axes produce O(1)-O(degree) candidates per anchor, the subtree
#: axes O(depth * fanout), and the document-order interval axes O(n).
AXIS_WEIGHTS: dict[Axis, int] = {
    Axis.SELF: 1,
    Axis.CHILD: 1,
    Axis.PARENT: 1,
    Axis.NEXT_SIBLING: 1,
    Axis.PREVIOUS_SIBLING: 1,
    Axis.SUCC_PRE: 1,
    Axis.CHILD_PLUS: 4,
    Axis.CHILD_STAR: 4,
    Axis.ANCESTOR: 4,
    Axis.ANCESTOR_OR_SELF: 4,
    Axis.NEXT_SIBLING_PLUS: 4,
    Axis.NEXT_SIBLING_STAR: 4,
    Axis.PRECEDING_SIBLING: 4,
    Axis.FOLLOWING: 16,
    Axis.PRECEDING: 16,
    Axis.DOCUMENT_ORDER: 16,
}
#: A bag pair with no covering atom (a fill edge): an unconstrained product.
FILL_WEIGHT = 64

PairCosts = Mapping[frozenset, int]


def atom_pair_costs(compiled: "CompiledQuery") -> dict[frozenset, int]:
    """Cheapest axis weight per variable pair carrying at least one atom."""
    costs: dict[frozenset, int] = {}
    for atom in compiled.atoms:
        if atom.is_loop:
            continue
        pair = frozenset({atom.source, atom.target})
        weight = AXIS_WEIGHTS.get(atom.axis, 4)
        if weight < costs.get(pair, FILL_WEIGHT + 1):
            costs[pair] = weight
    return costs


def _bag_cost(bag: frozenset, pair_costs: PairCosts) -> int:
    """Static materialization-cost estimate of one bag.

    Mirrors :func:`~repro.decomposition.yannakakis._materialize_bag`'s
    strategy: the first variable iterates its domain (a constant factor shared
    by every bag, counted as 1), each subsequent one is driven by its cheapest
    atom into the already-assigned prefix.  The estimate is the product of
    those per-step weights, minimized over the starting variable, so it is
    invariant under variable renaming.
    """
    members = sorted(bag)
    if len(members) <= 1:
        return 1

    def cheapest_link(variable, assigned: list) -> int:
        return min(
            pair_costs.get(frozenset({variable, other}), FILL_WEIGHT)
            for other in assigned
        )

    best: Optional[int] = None
    for start in members:
        assigned = [start]
        rest = [m for m in members if m != start]
        total = 1
        while rest:
            weights = {v: cheapest_link(v, assigned) for v in rest}
            pick = min(rest, key=lambda v: (weights[v], v))
            total *= weights[pick]
            assigned.append(pick)
            rest.remove(pick)
        best = total if best is None else min(best, total)
    return best if best is not None else 1


def decomposition_cost(decomposition: "TreeDecomposition", pair_costs: PairCosts) -> int:
    """Total static cost of a decomposition: the sum of its bag costs."""
    return sum(_bag_cost(bag, pair_costs) for bag in decomposition.bags)


@dataclass(frozen=True)
class TreeDecomposition:
    """A rooted forest of variable bags.

    ``bags[i]`` is the i-th bag; ``parent[i]`` the index of its parent bag
    (``-1`` for roots).  Bags are topologically ordered: a bag's parent always
    has a smaller index, so iterating ``bags`` in reverse visits children
    before parents (the bottom-up order the semijoin passes want).
    """

    bags: tuple[frozenset[Variable], ...]
    parent: tuple[int, ...]
    width: int
    method: str
    #: True when the search certified ``width`` as the true treewidth.
    exact: bool

    @property
    def roots(self) -> tuple[int, ...]:
        return tuple(i for i, p in enumerate(self.parent) if p < 0)

    def children(self) -> tuple[tuple[int, ...], ...]:
        """Child bag indices per bag."""
        kids: list[list[int]] = [[] for _ in self.bags]
        for index, parent_index in enumerate(self.parent):
            if parent_index >= 0:
                kids[parent_index].append(index)
        return tuple(tuple(k) for k in kids)

    def covering_bag(self, variables: frozenset[Variable]) -> Optional[int]:
        """The index of some bag containing all of ``variables``."""
        for index, bag in enumerate(self.bags):
            if variables <= bag:
                return index
        return None

    def validate(self, hypergraph: Hypergraph) -> None:
        """Assert the three decomposition properties; raises ``ValueError``.

        Used by the tests and by :func:`decompose` in its own sanity path --
        an invalid decomposition would silently corrupt answers downstream, so
        failing loudly here is worth the O(bags * vertices) pass.
        """
        covered: set[Variable] = set()
        for bag in self.bags:
            covered |= bag
        missing = set(hypergraph.vertices) - covered
        if missing:
            raise ValueError(f"vertices not covered by any bag: {sorted(missing)}")
        for edge in hypergraph.edges:
            if self.covering_bag(frozenset(edge)) is None:
                raise ValueError(f"hyperedge not covered by any bag: {sorted(edge)}")
        for vertex in hypergraph.vertices:
            occurrences = [i for i, bag in enumerate(self.bags) if vertex in bag]
            # Connectivity: walking from every occurrence towards the root,
            # the occurrences must form one subtree -- equivalently all but
            # one occurrence must have a parent that also contains the vertex.
            without_parent = [
                i
                for i in occurrences
                if self.parent[i] < 0 or vertex not in self.bags[self.parent[i]]
            ]
            if len(without_parent) > 1:
                raise ValueError(f"occurrences of {vertex!r} are not connected")
        if self.bags and self.width != max(len(bag) for bag in self.bags) - 1:
            raise ValueError("recorded width does not match the bags")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeDecomposition(bags={len(self.bags)}, width={self.width}, "
            f"method={self.method!r}, exact={self.exact})"
        )


# ---------------------------------------------------------------------------
# Elimination orders -> decompositions.
# ---------------------------------------------------------------------------


def _copy_adjacency(
    adjacency: Mapping[Variable, set[Variable]],
) -> dict[Variable, set[Variable]]:
    return {vertex: set(neighbours) for vertex, neighbours in adjacency.items()}


def _eliminate(graph: dict[Variable, set[Variable]], vertex: Variable) -> set[Variable]:
    """Remove ``vertex``, connecting its neighbours into a clique; returns them."""
    neighbours = graph.pop(vertex)
    for u in neighbours:
        graph[u].discard(vertex)
    members = sorted(neighbours)
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            graph[u].add(v)
            graph[v].add(u)
    return neighbours


def min_degree_order(adjacency: Mapping[Variable, set[Variable]]) -> tuple[Variable, ...]:
    """Eliminate a minimum-degree vertex first (ties by name, deterministic)."""
    graph = _copy_adjacency(adjacency)
    order: list[Variable] = []
    while graph:
        vertex = min(graph, key=lambda v: (len(graph[v]), v))
        _eliminate(graph, vertex)
        order.append(vertex)
    return tuple(order)


def min_fill_order(adjacency: Mapping[Variable, set[Variable]]) -> tuple[Variable, ...]:
    """Eliminate the vertex whose elimination adds the fewest fill edges."""
    graph = _copy_adjacency(adjacency)
    order: list[Variable] = []

    def fill_cost(vertex: Variable) -> int:
        neighbours = sorted(graph[vertex])
        cost = 0
        for i, u in enumerate(neighbours):
            for v in neighbours[i + 1 :]:
                if v not in graph[u]:
                    cost += 1
        return cost

    while graph:
        vertex = min(graph, key=lambda v: (fill_cost(v), len(graph[v]), v))
        _eliminate(graph, vertex)
        order.append(vertex)
    return tuple(order)


def decomposition_from_order(
    adjacency: Mapping[Variable, set[Variable]],
    order: Sequence[Variable],
    method: str,
    exact: bool = False,
) -> TreeDecomposition:
    """The standard bag construction from an elimination order.

    Eliminating ``v`` creates the bag ``{v} U N(v)`` (neighbours in the
    current fill graph); the bag's parent is the bag of the first-eliminated
    remaining neighbour, which yields the connectivity property by
    construction.  Bags are emitted in *reverse* elimination order so parents
    precede children (the class invariant).
    """
    graph = _copy_adjacency(adjacency)
    position = {vertex: i for i, vertex in enumerate(order)}
    raw_bags: list[frozenset[Variable]] = []
    attach_to: list[Optional[Variable]] = []
    for vertex in order:
        neighbours = _eliminate(graph, vertex)
        raw_bags.append(frozenset({vertex}) | frozenset(neighbours))
        attach_to.append(
            min(neighbours, key=position.__getitem__) if neighbours else None
        )
    # Re-index: bag of order[i] gets final index (n - 1 - i), so roots (the
    # last-eliminated vertices) come first and parents precede children.
    n = len(order)
    final_index = {order[i]: n - 1 - i for i in range(n)}
    bags: list[frozenset[Variable]] = [frozenset()] * n
    parent: list[int] = [-1] * n
    for i, vertex in enumerate(order):
        index = final_index[vertex]
        bags[index] = raw_bags[i]
        anchor = attach_to[i]
        parent[index] = final_index[anchor] if anchor is not None else -1
    width = max((len(bag) for bag in bags), default=1) - 1
    return TreeDecomposition(
        bags=tuple(bags),
        parent=tuple(parent),
        width=width,
        method=method,
        exact=exact,
    )


def prune_subset_bags(decomposition: TreeDecomposition) -> TreeDecomposition:
    """Merge every bag contained in a tree neighbour into that neighbour.

    Elimination orders routinely emit redundant bags (eliminating a degree-1
    vertex of a path yields the chain ``{a} - {a,b} - {a,b,c}``).  They are
    harmless for width but poisonous for evaluation: a subset bag turns its
    variables into *separators* of the adjacent bag, forcing the materializer
    to keep (and the semijoin passes to carry) columns that are really local
    existentials.  For the four-cycle this is the difference between
    materializing all O(n^2) ``(a, b, c)`` triples and a first-witness /
    union-of-ranges search over ``b``.  Merging a bag into a neighbour that
    contains it preserves all three decomposition properties and never
    increases the width.
    """
    bags = list(decomposition.bags)
    parent = list(decomposition.parent)
    alive = [True] * len(bags)
    changed = True
    while changed:
        changed = False
        for i in range(len(bags)):
            if not alive[i]:
                continue
            p = parent[i]
            if p < 0:
                continue
            if bags[i] <= bags[p]:
                # Drop the child; its children reattach to the parent.
                for j in range(len(bags)):
                    if alive[j] and parent[j] == i:
                        parent[j] = p
                alive[i] = False
                changed = True
            elif bags[p] <= bags[i]:
                # Drop the parent; this bag takes its place in the tree.
                grandparent = parent[p]
                for j in range(len(bags)):
                    if alive[j] and parent[j] == p:
                        parent[j] = i
                parent[i] = grandparent
                alive[p] = False
                changed = True
    if all(alive):
        return decomposition
    # Re-number in BFS order from the roots so parents precede children
    # (the class invariant the semijoin passes rely on).
    order = [i for i in range(len(bags)) if alive[i] and parent[i] < 0]
    for index in order:  # grows during iteration: a BFS over the pruned tree
        order.extend(
            j for j in range(len(bags)) if alive[j] and parent[j] == index
        )
    final_index = {old: new for new, old in enumerate(order)}
    return TreeDecomposition(
        bags=tuple(bags[old] for old in order),
        parent=tuple(
            final_index[parent[old]] if parent[old] >= 0 else -1 for old in order
        ),
        width=max(len(bags[old]) for old in order) - 1,
        method=decomposition.method,
        exact=decomposition.exact,
    )


# ---------------------------------------------------------------------------
# Exact treewidth (subset dynamic program over elimination prefixes).
# ---------------------------------------------------------------------------


def _q_neighbours(
    adjacency: Mapping[Variable, set[Variable]],
    eliminated: frozenset[Variable],
    vertex: Variable,
) -> set[Variable]:
    """{w not eliminated, w != vertex, reachable from vertex through eliminated}.

    These are exactly the neighbours ``vertex`` has at the moment it is
    eliminated after the set ``eliminated`` (fill edges included), computed by
    a BFS that may only pass through eliminated vertices; its own bag is
    ``{vertex} | _q_neighbours(...)``.
    """
    seen = {vertex}
    frontier = [vertex]
    reachable: set[Variable] = set()
    while frontier:
        current = frontier.pop()
        for neighbour in adjacency[current]:
            if neighbour in seen:
                continue
            seen.add(neighbour)
            if neighbour in eliminated:
                frontier.append(neighbour)
            else:
                reachable.add(neighbour)
    return reachable


def _q_degree(
    adjacency: Mapping[Variable, set[Variable]],
    eliminated: frozenset[Variable],
    vertex: Variable,
) -> int:
    """The elimination degree of ``vertex`` after ``eliminated``."""
    return len(_q_neighbours(adjacency, eliminated, vertex))


def exact_elimination_order(
    adjacency: Mapping[Variable, set[Variable]],
) -> tuple[tuple[Variable, ...], int]:
    """An elimination order achieving the exact treewidth, plus that width.

    ``dp[S]`` is the best achievable maximum elimination degree over orders
    that eliminate exactly the vertices of ``S`` first:

        dp[S] = min over v in S of  max(dp[S - v], q(S - v, v))

    O(2^n * n * (n + m)); callers gate on :data:`EXACT_VERTEX_LIMIT`.
    """
    vertices = tuple(sorted(adjacency))
    n = len(vertices)
    if n == 0:
        return (), -1

    def members(mask: int) -> frozenset[Variable]:
        return frozenset(vertices[i] for i in range(n) if mask & (1 << i))

    dp = [0] * (1 << n)
    choice = [-1] * (1 << n)
    for mask in range(1, 1 << n):
        best, best_vertex = None, -1
        rest = mask
        while rest:
            bit = rest & -rest
            rest ^= bit
            i = bit.bit_length() - 1
            previous = mask ^ bit
            cost = max(dp[previous], _q_degree(adjacency, members(previous), vertices[i]))
            if best is None or cost < best:
                best, best_vertex = cost, i
        dp[mask] = best if best is not None else 0
        choice[mask] = best_vertex
    order_reversed: list[Variable] = []
    mask = (1 << n) - 1
    while mask:
        i = choice[mask]
        order_reversed.append(vertices[i])
        mask ^= 1 << i
    order = tuple(reversed(order_reversed))
    return order, dp[(1 << n) - 1]


def cost_optimal_order(
    adjacency: Mapping[Variable, set[Variable]],
    width: int,
    pair_costs: PairCosts,
) -> tuple[Variable, ...]:
    """The cheapest elimination order among those achieving ``width``.

    A second subset DP over elimination prefixes, now constrained to steps of
    elimination degree at most ``width`` (so the certified treewidth is kept)
    and minimizing the *sum* of static bag costs instead of the maximum
    degree.  Always feasible when ``width`` comes from
    :func:`exact_elimination_order` -- that order itself satisfies the
    constraint -- and the same O(2^n poly(n)) as the width DP.
    """
    vertices = tuple(sorted(adjacency))
    n = len(vertices)
    if n == 0:
        return ()

    def members(mask: int) -> frozenset[Variable]:
        return frozenset(vertices[i] for i in range(n) if mask & (1 << i))

    infinity = float("inf")
    dp: list[float] = [infinity] * (1 << n)
    dp[0] = 0
    choice = [-1] * (1 << n)
    for mask in range(1, 1 << n):
        rest = mask
        while rest:
            bit = rest & -rest
            rest ^= bit
            i = bit.bit_length() - 1
            previous = mask ^ bit
            if dp[previous] == infinity:
                continue
            eliminated = members(previous)
            neighbours = _q_neighbours(adjacency, eliminated, vertices[i])
            if len(neighbours) > width:
                continue
            bag = frozenset({vertices[i]}) | neighbours
            cost = dp[previous] + _bag_cost(bag, pair_costs)
            if cost < dp[mask]:
                dp[mask] = cost
                choice[mask] = i
    full = (1 << n) - 1
    if choice[full] < 0:  # pragma: no cover - exact width is always feasible
        raise AssertionError(f"no elimination order of width {width} found")
    order_reversed: list[Variable] = []
    mask = full
    while mask:
        i = choice[mask]
        order_reversed.append(vertices[i])
        mask ^= 1 << i
    return tuple(reversed(order_reversed))


# ---------------------------------------------------------------------------
# The search entry point.
# ---------------------------------------------------------------------------


def decompose_hypergraph(
    hypergraph: Hypergraph,
    exact_limit: int = EXACT_VERTEX_LIMIT,
    pair_costs: Optional[PairCosts] = None,
) -> TreeDecomposition:
    """Best tree decomposition we can find for the hypergraph's primal graph.

    ``pair_costs`` (cheapest axis weight per constrained variable pair, see
    :func:`atom_pair_costs`) turns the search cost-aware: among width-optimal
    decompositions it picks one minimizing the static bag-materialization
    estimate, so the choice no longer depends on variable names.  Without it
    the search minimizes width only (ties broken by name, the legacy order).
    """
    adjacency = hypergraph.adjacency()
    if not adjacency:
        return TreeDecomposition(
            bags=(), parent=(), width=-1, method="empty", exact=True
        )
    if len(adjacency) <= exact_limit:
        order, width = exact_elimination_order(adjacency)
        if pair_costs is not None:
            order = cost_optimal_order(adjacency, width, pair_costs)
        decomposition = decomposition_from_order(adjacency, order, "exact", exact=True)
        # The bag-derived width is authoritative; the DP value cross-checks it.
        if decomposition.width != width:  # pragma: no cover - internal invariant
            raise AssertionError(
                f"exact DP width {width} != bag width {decomposition.width}"
            )
        decomposition = prune_subset_bags(decomposition)
        decomposition.validate(hypergraph)
        return decomposition
    candidates = [
        decomposition_from_order(adjacency, min_fill_order(adjacency), "min-fill"),
        decomposition_from_order(adjacency, min_degree_order(adjacency), "min-degree"),
    ]
    if pair_costs is None:
        decomposition = min(candidates, key=lambda d: d.width)
    else:
        decomposition = min(
            candidates,
            key=lambda d: (d.width, decomposition_cost(d, pair_costs), d.method),
        )
    decomposition = prune_subset_bags(decomposition)
    decomposition.validate(hypergraph)
    return decomposition


def decompose(
    compiled: "CompiledQuery",
    exact_limit: int = EXACT_VERTEX_LIMIT,
) -> TreeDecomposition:
    """Tree decomposition of a compiled query's constraint graph.

    Cost-aware: the compiled atoms supply per-pair axis weights, so among
    width-optimal trees the one with the cheapest estimated bag
    materialization wins -- invariant under the canonicalizer's renaming.
    """
    return decompose_hypergraph(
        Hypergraph.of_compiled(compiled),
        exact_limit,
        pair_costs=atom_pair_costs(compiled),
    )
