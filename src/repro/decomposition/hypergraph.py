"""The query's atom hypergraph and the GYO acyclicity test.

The hypergraph of a conjunctive query has the query variables as vertices and
one hyperedge per atom -- for our binary-atom setting every hyperedge has one
or two vertices, so the hypergraph is (essentially) the shadow multigraph of
:class:`~repro.queries.graph.QueryGraph`, but the hypergraph view is the one
the decomposition literature (Gottlob-Leone-Scarcello, *Hypertree
Decompositions and Tractable Queries*) speaks, and the GYO reduction
implemented here is the standard alpha-acyclicity test:

    repeat until no rule applies:
      (1) delete a vertex that occurs in at most one hyperedge ("ear" vertex),
      (2) delete a hyperedge that is contained in another hyperedge;
    the hypergraph is alpha-acyclic iff everything is deleted.

For hypergraphs whose edges have at most two vertices, GYO succeeds exactly
when the shadow multigraph is a forest, i.e. when the query is acyclic in the
paper's sense -- the tests cross-check :func:`is_alpha_acyclic` against
:meth:`QueryGraph.is_acyclic` on random queries.  The reduction also records a
*join forest* for free (each deleted edge points at the witness edge that
absorbed it, exposed as :func:`join_forest`); the evaluator does not consume
it today -- :mod:`repro.decomposition.decompose` manufactures its join tree
from a tree decomposition, which covers the acyclic case at width 1 -- but it
is the natural input for a future bag-free fast path on alpha-acyclic queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..queries.atoms import Variable

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from ..evaluation.compile import CompiledQuery


@dataclass(frozen=True)
class Hypergraph:
    """Vertices plus hyperedges (as frozensets of vertices), insertion-ordered.

    ``edges`` may contain duplicates of the same vertex set (parallel atoms on
    one variable pair); GYO rule (2) absorbs them, so they do not affect
    alpha-acyclicity -- unlike the paper's shadow-multigraph notion of
    acyclicity, where parallel edges count as a length-two cycle.
    """

    vertices: tuple[Variable, ...]
    edges: tuple[frozenset[Variable], ...]

    @classmethod
    def of_compiled(cls, compiled: "CompiledQuery") -> "Hypergraph":
        """One hyperedge per normalized atom (loops become singleton edges)."""
        edges = tuple(
            frozenset({atom.source, atom.target}) for atom in compiled.atoms
        )
        return cls(vertices=compiled.variables, edges=edges)

    @classmethod
    def of_edges(
        cls,
        vertices: Iterable[Variable],
        edges: Iterable[Iterable[Variable]],
    ) -> "Hypergraph":
        return cls(
            vertices=tuple(vertices),
            edges=tuple(frozenset(edge) for edge in edges),
        )

    # -- derived graphs --------------------------------------------------------

    def primal_edges(self) -> frozenset[frozenset[Variable]]:
        """The primal (Gaifman) graph: vertex pairs co-occurring in an edge."""
        pairs: set[frozenset[Variable]] = set()
        for edge in self.edges:
            members = sorted(edge)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    pairs.add(frozenset({u, v}))
        return frozenset(pairs)

    def adjacency(self) -> dict[Variable, set[Variable]]:
        """Primal-graph adjacency over all vertices (isolated ones included)."""
        neighbours: dict[Variable, set[Variable]] = {v: set() for v in self.vertices}
        for pair in self.primal_edges():
            u, v = sorted(pair)
            neighbours[u].add(v)
            neighbours[v].add(u)
        return neighbours

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hypergraph(vertices={len(self.vertices)}, edges={len(self.edges)})"


@dataclass(frozen=True)
class GYOResult:
    """The outcome of a GYO reduction.

    ``acyclic`` says whether the reduction consumed every edge.  When it did,
    ``parent`` maps each edge index to the index of the edge that absorbed it
    (``-1`` for the roots of the join forest), in a valid bottom-up order
    ``elimination_order`` (children always precede their parents).
    """

    acyclic: bool
    parent: tuple[int, ...]
    elimination_order: tuple[int, ...]


def gyo_reduction(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO reduction, recording the join forest it builds.

    O(|edges|^2 * max-edge-size) -- plenty for query-sized hypergraphs (our
    edges have at most two vertices).
    """
    live: dict[int, set[Variable]] = {
        index: set(edge) for index, edge in enumerate(hypergraph.edges)
    }
    # How many live edges contain each vertex.
    occurrences: dict[Variable, int] = {v: 0 for v in hypergraph.vertices}
    for members in live.values():
        for vertex in members:
            occurrences[vertex] = occurrences.get(vertex, 0) + 1

    parent = [-1] * len(hypergraph.edges)
    order: list[int] = []

    changed = True
    while changed and live:
        changed = False
        # Rule (1): drop vertices occurring in at most one live edge.
        for index, members in live.items():
            ears = [v for v in members if occurrences.get(v, 0) <= 1]
            for vertex in ears:
                members.discard(vertex)
                occurrences[vertex] = 0
                changed = True
        # Rule (2): absorb an edge contained in another live edge.
        for index in sorted(live):
            members = live[index]
            witness = None
            for other in sorted(live):
                if other != index and members <= live[other]:
                    witness = other
                    break
            if witness is None and not members:
                # Fully reduced to the empty edge: it is its own component root.
                witness = -1
            if witness is not None or not members:
                for vertex in members:
                    occurrences[vertex] -= 1
                parent[index] = witness if witness is not None else -1
                order.append(index)
                del live[index]
                changed = True
                break
    return GYOResult(
        acyclic=not live,
        parent=tuple(parent),
        elimination_order=tuple(order),
    )


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """Alpha-acyclicity via GYO: does the reduction consume every edge?"""
    return gyo_reduction(hypergraph).acyclic


def query_hypergraph(compiled: "CompiledQuery") -> Hypergraph:
    """Convenience wrapper: the hypergraph of a compiled query."""
    return Hypergraph.of_compiled(compiled)


def join_forest(hypergraph: Hypergraph) -> Optional[tuple[int, ...]]:
    """The GYO join forest (edge index -> parent edge index), if acyclic."""
    result = gyo_reduction(hypergraph)
    return result.parent if result.acyclic else None
