"""Yannakakis semijoin evaluation over a tree decomposition.

The engine behind ``Engine.DECOMPOSITION``: evaluate a *cyclic* conjunctive
query in time polynomial for bounded decomposition width, instead of the
planner's exponential backtracking fallback.  The pipeline is the classical
one (Yannakakis 1981, via Gottlob-Leone-Scarcello's hypertree programme),
instantiated over the arc-consistent prevaluation and the interval index:

1. **propagate** -- the AC fixpoint (any ``propagator=``) prunes every
   variable's domain first; an empty fixpoint already decides unsatisfiable.
2. **bag materialization** -- every decomposition bag becomes an explicit
   relation over its variables: candidates come from the fixpoint's domain
   views, tuples are generated atom-driven through
   :meth:`~repro.trees.index.AxisIndex.successors_in` /
   :meth:`~repro.trees.index.AxisIndex.predecessors_in` (contiguous pre-order
   ranges for the interval axes, pointer walks for the local ones), and every
   query atom whose endpoints lie inside the bag is enforced.  Cost is
   output-proportional: O(n^(width+1)) worst case, far less after AC pruning.
3. **bottom-up / top-down semijoin passes** along the join tree (children
   precede parents by construction).  After the bottom-up pass a component is
   satisfiable iff its root relation is non-empty; the top-down pass makes
   every relation globally consistent, bounding the enumeration join sizes.
4. **answer enumeration by join-tree traversal** -- a bottom-up join-project
   pass keeps, per bag, only the columns still needed above it (the separator
   to its parent plus the head variables collected in its subtree), so k-ary
   answers come out in time polynomial in input + output without ever
   materializing the full join.

Correctness does not depend on the width: the engine is exact for every
conjunctive query (the property tests pit it against backtracking across all
propagators, cyclic and acyclic shapes, with and without pinning).  The
planner merely *prefers* it when the width is small.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from ..queries.atoms import Variable
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis
from ..trees.structure import TreeStructure
from .decompose import TreeDecomposition

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from ..evaluation.compile import CompiledAtom, CompiledQuery

Row = tuple[int, ...]

#: Forward atoms whose target, given a source anchor ``a``, is exactly a
#: pre-order range of the candidate array (``end`` = ``subtree_end``):
#: ``Child+``: ``(a, end(a)]``, ``Child*``: ``[a, end(a)]``, ``Following``:
#: ``(end(a), n)``, ``DocumentOrder``: ``(a, n)``.
_RANGE_FORWARD = frozenset(
    {Axis.CHILD_PLUS, Axis.CHILD_STAR, Axis.FOLLOWING, Axis.DOCUMENT_ORDER}
)
#: Backward atoms whose source, given a target anchor ``a``, lies in ``[0, a)``
#: (``Following`` additionally needs the O(1) ``end(u) < a`` residual check).
_RANGE_BACKWARD = frozenset({Axis.FOLLOWING, Axis.DOCUMENT_ORDER})
#: Atoms with at most one witness per anchor: always the cheapest driver.
_POINT_FORWARD = frozenset({Axis.NEXT_SIBLING, Axis.SUCC_PRE, Axis.SELF})
_POINT_BACKWARD = frozenset({Axis.CHILD, Axis.NEXT_SIBLING, Axis.SUCC_PRE, Axis.SELF})


class _BagRelation:
    """One materialized bag: an ordered column tuple plus its rows."""

    __slots__ = ("columns", "position", "rows")

    def __init__(self, columns: tuple[Variable, ...], rows: list[Row]):
        self.columns = columns
        self.position = {variable: i for i, variable in enumerate(columns)}
        self.rows = rows

    def project_positions(self, variables: Sequence[Variable]) -> tuple[int, ...]:
        return tuple(self.position[variable] for variable in variables)


def _materialize_bag(
    bag: frozenset[Variable],
    atoms: Sequence["CompiledAtom"],
    views: Mapping[Variable, object],
    structure: TreeStructure,
    variable_index: Mapping[Variable, int],
    needed: frozenset[Variable],
    columnar: bool = True,
) -> _BagRelation:
    """Enumerate the bag's relation, projected onto its ``needed`` columns.

    ``needed`` holds the columns the join tree actually consumes above and
    below this bag -- the separators to the parent and children plus the head
    variables it contains.  Everything else is a *local existential*: it only
    has to be witnessed, never reported, so it is projected out during
    enumeration instead of multiplying the relation.  (For a single-bag
    triangle query ``Q(x)`` this is the difference between one witness search
    per head candidate and materializing all O(n^2) satisfying pairs.)

    Variables are instantiated smallest-domain-first, each subsequent one
    driven by an atom connecting it to the already-assigned prefix whenever
    one exists (witness *enumeration* through the index, so the work is
    proportional to the candidates produced, not to the domain size); the
    remaining connecting atoms are O(1) ``holds`` checks.  Needed variables
    are preferred at every step, pushing the local existentials into a
    trailing suffix whenever the constraint graph allows; that suffix is
    resolved by a first-witness search with early cut-off.
    """
    index = structure.index
    order: list[Variable] = []
    assigned: set[Variable] = set()
    remaining = set(bag)

    def domain_size(variable: Variable) -> int:
        return len(views[variable].array)

    def connects(variable: Variable) -> bool:
        return any(
            (atom.source == variable and atom.target in assigned)
            or (atom.target == variable and atom.source in assigned)
            for atom in atoms
            if not atom.is_loop
        )

    while remaining:
        connected = [v for v in remaining if connects(v)]
        pool = connected if connected else sorted(remaining)
        pick = min(
            pool,
            key=lambda v: (v not in needed, domain_size(v), variable_index[v]),
        )
        order.append(pick)
        assigned.add(pick)
        remaining.discard(pick)

    # Everything from the last needed variable onwards is witness-only: one
    # satisfying completion per prefix suffices.
    cut = max(
        (i + 1 for i, variable in enumerate(order) if variable in needed),
        default=0,
    )
    # Local existentials *before* the cut (the constraint graph forced them
    # early) branch the prefix, so projected rows may repeat and need a dedup
    # -- unless the union-of-ranges skip below absorbs the branching.

    # Per position: how candidates for the variable are produced, given the
    # assigned prefix.  Every connecting atom is used exactly once -- as the
    # candidate source or as an O(1) residual check:
    #
    # * a *point* atom (next-sibling, parent, ...) has at most one witness,
    #   so it always wins as the driver;
    # * otherwise a *walk* atom (child fan-out, sibling chain, ancestor path)
    #   enumerates through :meth:`AxisIndex.successors_in` /
    #   :meth:`predecessors_in` -- walks are bounded by local tree shape
    #   (degree, sibling count, depth), which beats slicing a subtree range;
    # * otherwise all *range* atoms (the interval axes) are intersected into
    #   one pre-order window ``[lo, hi)`` answered by two bisections -- a
    #   ``Child+`` plus a ``Following`` constraint becomes the exact slice
    #   ``(max(x, end(y)), end(x)]`` instead of a scan of either;
    # * an unconnected variable iterates its whole domain view.
    drivers: list[Optional[tuple["CompiledAtom", bool]]] = [None]
    ranges: list[list[tuple["CompiledAtom", bool]]] = [[]]
    checks: list[list["CompiledAtom"]] = [[]]
    prefix: set[Variable] = {order[0]} if order else set()
    for variable in order[1:]:
        connecting: list[tuple["CompiledAtom", bool]] = []
        for atom in atoms:
            if atom.is_loop:
                continue
            if atom.source == variable and atom.target in prefix:
                connecting.append((atom, False))
            elif atom.target == variable and atom.source in prefix:
                connecting.append((atom, True))
        point = next(
            (
                (atom, forward)
                for atom, forward in connecting
                if atom.axis in (_POINT_FORWARD if forward else _POINT_BACKWARD)
            ),
            None,
        )
        range_atoms = [
            (atom, forward)
            for atom, forward in connecting
            if atom.axis in (_RANGE_FORWARD if forward else _RANGE_BACKWARD)
        ]
        walk = next(
            (
                (atom, forward)
                for atom, forward in connecting
                if atom.axis not in (_POINT_FORWARD if forward else _POINT_BACKWARD)
                and atom.axis not in (_RANGE_FORWARD if forward else _RANGE_BACKWARD)
            ),
            None,
        )
        driver: Optional[tuple["CompiledAtom", bool]] = None
        window: list[tuple["CompiledAtom", bool]] = []
        residual: list["CompiledAtom"] = []
        if point is not None:
            driver = point
            residual = [atom for atom, _ in connecting if atom is not point[0]]
        elif walk is not None:
            driver = walk
            residual = [atom for atom, _ in connecting if atom is not walk[0]]
        elif range_atoms:
            window = range_atoms
            in_window = {id(atom) for atom, _ in range_atoms}
            residual = [atom for atom, _ in connecting if id(atom) not in in_window]
            # A backward Following window is a superset ([0, anchor)): keep
            # the O(1) membership test as a residual check.
            residual.extend(
                atom
                for atom, forward in range_atoms
                if not forward and atom.axis is Axis.FOLLOWING
            )
        drivers.append(driver)
        ranges.append(window)
        checks.append(residual)
        prefix.add(variable)

    # -- union-of-ranges pruning for mid-bag local existentials ----------------
    #
    # A local existential forced *before* the cut branches the prefix: every
    # one of its witnesses re-enumerates the whole remaining suffix, and the
    # repeated projected rows are deduplicated afterwards.  When the
    # existential's only downstream role is anchoring interval windows of the
    # *immediately following* variable, the branching is unnecessary: merge
    # the per-witness windows into disjoint intervals and enumerate the next
    # variable once over the union.  (In the four-cycle's {a, b, c} bag with
    # order [a, b, c], the union of b's ``Following`` suffixes collapses to a
    # single suffix from the minimal ``subtree_end(b) + 1``.)
    def _references(depth: int) -> set[Variable]:
        referenced: set[Variable] = set()
        driver = drivers[depth]
        if driver is not None:
            atom, forward = driver
            referenced.add(atom.source if forward else atom.target)
        for atom, forward in ranges[depth]:
            referenced.add(atom.source if forward else atom.target)
        for atom in checks[depth]:
            referenced.add(atom.source)
            referenced.add(atom.target)
        return referenced

    skip: set[int] = set()
    if columnar:
        for i in range(cut - 1):
            variable = order[i]
            if variable in needed or (i - 1) in skip:
                continue
            nxt = i + 1
            if not ranges[nxt]:
                continue
            if not any(
                (atom.source if forward else atom.target) == variable
                for atom, forward in ranges[nxt]
            ):
                continue
            # The merged union loses which witness produced which window, so
            # the skipped variable must not appear in any residual check at
            # ``nxt`` (this also excludes backward-Following windows anchored
            # on it) nor anywhere later in the enumeration.
            if any(variable in (atom.source, atom.target) for atom in checks[nxt]):
                continue
            if any(variable in _references(d) for d in range(nxt + 1, len(order))):
                continue
            skip.add(i)

    must_deduplicate = any(
        variable not in needed and i not in skip
        for i, variable in enumerate(order[:cut])
    )

    position = {variable: i for i, variable in enumerate(order)}
    columns = tuple(variable for variable in order[:cut] if variable in needed)
    keep_positions = tuple(
        i for i, variable in enumerate(order[:cut]) if variable in needed
    )
    rows: list[Row] = []
    current: list[int] = [0] * len(order)
    subtree_end = index.subtree_end
    n = index.n

    def candidates_at(depth: int):
        variable = order[depth]
        view = views[variable]
        window = ranges[depth]
        if window:
            lo, hi = 0, n
            for atom, forward in window:
                if forward:
                    anchor = current[position[atom.source]]
                    if atom.axis is Axis.CHILD_PLUS:
                        lo = max(lo, anchor + 1)
                        hi = min(hi, subtree_end[anchor] + 1)
                    elif atom.axis is Axis.CHILD_STAR:
                        lo = max(lo, anchor)
                        hi = min(hi, subtree_end[anchor] + 1)
                    elif atom.axis is Axis.FOLLOWING:
                        lo = max(lo, subtree_end[anchor] + 1)
                    else:  # DocumentOrder
                        lo = max(lo, anchor + 1)
                else:
                    anchor = current[position[atom.target]]
                    hi = min(hi, anchor)  # Following / DocumentOrder source
            if hi <= lo:
                return ()
            array = view.array
            return array[bisect_left(array, lo) : bisect_left(array, hi)]
        driver = drivers[depth]
        if driver is None:
            return view.array
        atom, forward = driver
        if forward:
            anchor = current[position[atom.source]]
            return index.successors_in(atom.axis, anchor, view)
        anchor = current[position[atom.target]]
        return index.predecessors_in(atom.axis, anchor, view)

    def satisfies_checks(depth: int, node: int) -> bool:
        variable = order[depth]
        for atom in checks[depth]:
            source = node if atom.source == variable else current[position[atom.source]]
            target = node if atom.target == variable else current[position[atom.target]]
            if not index.holds(atom.axis, source, target):
                return False
        return True

    def witness(depth: int) -> bool:
        """First-witness search over the trailing local existentials."""
        if depth == len(order):
            return True
        for node in candidates_at(depth):
            if satisfies_checks(depth, node):
                current[depth] = node
                if witness(depth + 1):
                    return True
        return False

    def extend_union(depth: int) -> None:
        """Enumerate ``order[depth + 1]`` once over the union of windows.

        ``order[depth]`` is a skipped mid-bag existential: each of its
        witnesses contributes one pre-order window for the next variable;
        the windows are merged into disjoint intervals so every candidate of
        the next variable is produced (and recursed on) exactly once per
        prefix.  ``current[depth]`` is left stale, which is safe by the skip
        conditions (nothing at depth > ``depth + 1`` references it).
        """
        nxt = depth + 1
        skipped = order[depth]
        array = views[order[nxt]].array
        # Windows from range atoms anchored on *other* prefix variables are
        # identical for every witness: intersect them once.
        fixed_lo, fixed_hi = 0, n
        anchored = []
        for atom, forward in ranges[nxt]:
            anchor_variable = atom.source if forward else atom.target
            if anchor_variable == skipped:
                anchored.append((atom, forward))
                continue
            anchor = current[position[anchor_variable]]
            if forward:
                if atom.axis is Axis.CHILD_PLUS:
                    fixed_lo = max(fixed_lo, anchor + 1)
                    fixed_hi = min(fixed_hi, subtree_end[anchor] + 1)
                elif atom.axis is Axis.CHILD_STAR:
                    fixed_lo = max(fixed_lo, anchor)
                    fixed_hi = min(fixed_hi, subtree_end[anchor] + 1)
                elif atom.axis is Axis.FOLLOWING:
                    fixed_lo = max(fixed_lo, subtree_end[anchor] + 1)
                else:  # DocumentOrder
                    fixed_lo = max(fixed_lo, anchor + 1)
            else:
                fixed_hi = min(fixed_hi, anchor)
        intervals: list[tuple[int, int]] = []
        for node in candidates_at(depth):
            if not satisfies_checks(depth, node):
                continue
            lo, hi = fixed_lo, fixed_hi
            for atom, forward in anchored:
                if forward:
                    if atom.axis is Axis.CHILD_PLUS:
                        lo = max(lo, node + 1)
                        hi = min(hi, subtree_end[node] + 1)
                    elif atom.axis is Axis.CHILD_STAR:
                        lo = max(lo, node)
                        hi = min(hi, subtree_end[node] + 1)
                    elif atom.axis is Axis.FOLLOWING:
                        lo = max(lo, subtree_end[node] + 1)
                    else:  # DocumentOrder
                        lo = max(lo, node + 1)
                else:
                    hi = min(hi, node)
            if lo < hi:
                intervals.append((lo, hi))
        if not intervals:
            return
        intervals.sort()
        merged: list[list[int]] = [list(intervals[0])]
        for lo, hi in intervals[1:]:
            if lo <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], hi)
            else:
                merged.append([lo, hi])
        if (
            nxt == cut - 1
            and cut == len(order)
            and not checks[nxt]
            and keep_positions
            and keep_positions[-1] == nxt
        ):
            # Same bulk tail as extend(): every candidate completes a row.
            head = tuple(current[p] for p in keep_positions[:-1])
            for lo, hi in merged:
                chunk = array[bisect_left(array, lo) : bisect_left(array, hi)]
                rows.extend(head + (node,) for node in chunk)
            return
        for lo, hi in merged:
            for node in array[bisect_left(array, lo) : bisect_left(array, hi)]:
                if satisfies_checks(nxt, node):
                    current[nxt] = node
                    extend(nxt + 1)

    def extend(depth: int) -> None:
        if depth == cut:
            if witness(depth):
                rows.append(tuple(current[p] for p in keep_positions))
            return
        if depth in skip:
            extend_union(depth)
            return
        if (
            columnar
            and depth == cut - 1
            and cut == len(order)
            and not checks[depth]
            and keep_positions
            and keep_positions[-1] == depth
        ):
            # Bulk tail: the final variable has no residual checks and no
            # witness suffix behind it, so *every* candidate the driver or
            # window produces completes the prefix into a row -- emit the
            # whole candidate column at once instead of recursing per node.
            head = tuple(current[p] for p in keep_positions[:-1])
            rows.extend(head + (node,) for node in candidates_at(depth))
            return
        for node in candidates_at(depth):
            if satisfies_checks(depth, node):
                current[depth] = node
                extend(depth + 1)

    if order:
        extend(0)
    else:
        rows.append(())
    if must_deduplicate:
        rows = sorted(set(rows))
    return _BagRelation(columns, rows)


def _reduce(
    decomposition: TreeDecomposition,
    relations: list[_BagRelation],
) -> bool:
    """Bottom-up then top-down semijoin passes; False iff some bag empties."""
    parent = decomposition.parent
    separators: list[tuple[Variable, ...]] = []
    for i, parent_index in enumerate(parent):
        if parent_index < 0:
            separators.append(())
        else:
            shared = decomposition.bags[i] & decomposition.bags[parent_index]
            separators.append(tuple(sorted(shared)))

    # Bottom-up: children have larger indices, so visiting bags in decreasing
    # index order sees every child fully reduced before it filters its parent.
    for i in range(len(parent) - 1, -1, -1):
        parent_index = parent[i]
        if parent_index < 0:
            if not relations[i].rows:
                return False
            continue
        child_positions = relations[i].project_positions(separators[i])
        keys = {tuple(row[p] for p in child_positions) for row in relations[i].rows}
        parent_relation = relations[parent_index]
        parent_positions = parent_relation.project_positions(separators[i])
        parent_relation.rows = [
            row
            for row in parent_relation.rows
            if tuple(row[p] for p in parent_positions) in keys
        ]
        if not relations[i].rows:
            return False

    # Top-down: parents precede children, so increasing order propagates the
    # root's reduction all the way down; afterwards every relation is globally
    # consistent along the tree.
    for i in range(len(parent)):
        parent_index = parent[i]
        if parent_index < 0:
            continue
        parent_relation = relations[parent_index]
        parent_positions = parent_relation.project_positions(separators[i])
        keys = {tuple(row[p] for p in parent_positions) for row in parent_relation.rows}
        child_positions = relations[i].project_positions(separators[i])
        relations[i].rows = [
            row
            for row in relations[i].rows
            if tuple(row[p] for p in child_positions) in keys
        ]
        if not relations[i].rows:
            return False
    return True


def _first_witness(
    decomposition: TreeDecomposition,
    relations: list[_BagRelation],
) -> bool:
    """First-solution search down the join tree for Boolean queries.

    Instead of the full bottom-up + top-down semijoin passes (which reduce
    *every* bag globally before answering), walk the tree once looking for a
    single globally consistent assignment: a bag row is a witness iff every
    child bag has a witness row agreeing with it on their separator.  Outcomes
    are memoized per ``(bag, separator key)`` and each bag's separator index
    is built lazily on first access, so a satisfiable instance can stop after
    touching a handful of rows while the worst case stays one semijoin pass.
    """
    parent = decomposition.parent
    children = decomposition.children()
    separators: list[tuple[Variable, ...]] = []
    for i, parent_index in enumerate(parent):
        if parent_index < 0:
            separators.append(())
        else:
            shared = decomposition.bags[i] & decomposition.bags[parent_index]
            separators.append(tuple(sorted(shared)))
    # For a row of bag i, the lookup key into child c is c's separator read
    # out of i's columns (the separator is shared, so both bags carry it).
    child_key_positions = [
        [(c, relations[i].project_positions(separators[c])) for c in children[i]]
        for i in range(len(parent))
    ]
    own_positions = [
        relations[i].project_positions(separators[i]) for i in range(len(parent))
    ]
    key_index: list[Optional[dict[Row, list[Row]]]] = [None] * len(parent)
    memo: dict[tuple[int, Row], bool] = {}

    def rows_for(i: int, key: Row) -> list[Row]:
        index = key_index[i]
        if index is None:
            index = {}
            positions = own_positions[i]
            for row in relations[i].rows:
                index.setdefault(tuple(row[p] for p in positions), []).append(row)
            key_index[i] = index
        return index.get(key, [])

    def witness(i: int, key: Row) -> bool:
        cached = memo.get((i, key))
        if cached is not None:
            return cached
        found = False
        for row in rows_for(i, key):
            if all(
                witness(c, tuple(row[p] for p in positions))
                for c, positions in child_key_positions[i]
            ):
                found = True
                break
        memo[(i, key)] = found
        return found

    return all(witness(root, ()) for root in decomposition.roots)


def _collect_answers(
    decomposition: TreeDecomposition,
    relations: list[_BagRelation],
    head: tuple[Variable, ...],
) -> frozenset[Row]:
    """Bottom-up join-project pass: answers without the full join.

    Each bag reduces to a relation over ``separator(bag) U (head variables
    seen in its subtree)``; children are folded in one at a time through a
    hash join on their separator and the result is deduplicated immediately,
    so intermediate sizes stay polynomial in input + output for bounded
    width and arity.
    """
    parent = decomposition.parent
    head_set = set(head)
    children = decomposition.children()

    reduced: list[Optional[_BagRelation]] = [None] * len(parent)
    for i in range(len(parent) - 1, -1, -1):
        relation = relations[i]
        acc_columns = list(relation.columns)
        acc_rows: list[Row] = relation.rows
        for child in children[i]:
            child_relation = reduced[child]
            assert child_relation is not None
            shared = [v for v in child_relation.columns if v in relation.position]
            extra = [v for v in child_relation.columns if v not in relation.position]
            shared_positions = child_relation.project_positions(shared)
            extra_positions = child_relation.project_positions(extra)
            matches: dict[Row, list[Row]] = {}
            for row in child_relation.rows:
                key = tuple(row[p] for p in shared_positions)
                matches.setdefault(key, []).append(
                    tuple(row[p] for p in extra_positions)
                )
            acc_positions = [acc_columns.index(v) for v in shared]
            joined: list[Row] = []
            for row in acc_rows:
                key = tuple(row[p] for p in acc_positions)
                for extension in matches.get(key, ()):
                    joined.append(row + extension)
            acc_columns.extend(extra)
            acc_rows = joined
            reduced[child] = None  # free the child relation eagerly
        if parent[i] >= 0:
            keep_set = (decomposition.bags[i] & decomposition.bags[parent[i]]) | (
                head_set & set(acc_columns)
            )
        else:
            keep_set = head_set & set(acc_columns)
        keep = [v for v in acc_columns if v in keep_set]
        keep_positions = [acc_columns.index(v) for v in keep]
        projected = {tuple(row[p] for p in keep_positions) for row in acc_rows}
        reduced[i] = _BagRelation(tuple(keep), sorted(projected))

    # Cross-combine the (disjoint) root relations and read the head off.
    mapping_columns: list[Variable] = []
    combined: list[Row] = [()]
    for root in decomposition.roots:
        root_relation = reduced[root]
        assert root_relation is not None
        if not root_relation.rows:
            return frozenset()
        mapping_columns.extend(root_relation.columns)
        combined = [row + suffix for row in combined for suffix in root_relation.rows]
    position = {variable: i for i, variable in enumerate(mapping_columns)}
    answers = {tuple(row[position[v]] for v in head) for row in combined}
    return frozenset(answers)


def _evaluate(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]],
    propagator,
    compiled: Optional["CompiledQuery"],
    boolean_only: bool,
    columnar: bool = True,
) -> Optional[frozenset[Row]]:
    from ..evaluation.compile import compile_query
    from ..evaluation.propagation import propagate
    from ..observability import tracing

    if compiled is None:
        compiled = compile_query(query)
    if not compiled.variables:
        return frozenset({()})
    result = propagate(compiled, structure, pinned, propagator, columnar=columnar)
    if result is None:
        return None if boolean_only else frozenset()
    with tracing.span("decompose"):
        decomposition = compiled.decomposition
        tracing.annotate(
            width=decomposition.width,
            exact=decomposition.exact,
            method=decomposition.method,
            bags=len(decomposition.bags),
        )
    views = result.views
    head_set = frozenset() if boolean_only else frozenset(query.head)
    children = decomposition.children()
    relations: list[_BagRelation] = []
    with tracing.span("materialize_bags"):
        for index, bag in enumerate(decomposition.bags):
            bag_atoms = [
                atom
                for atom in compiled.atoms
                if atom.source in bag and atom.target in bag
            ]
            # The columns the join tree consumes from this bag: the separators
            # to its parent and children plus its head variables.  Everything
            # else is witness-only and projected out during materialization.
            needed = head_set & bag
            parent_index = decomposition.parent[index]
            if parent_index >= 0:
                needed |= bag & decomposition.bags[parent_index]
            for child in children[index]:
                needed |= bag & decomposition.bags[child]
            relation = _materialize_bag(
                bag,
                bag_atoms,
                views,
                structure,
                compiled.variable_index,
                frozenset(needed),
                columnar=columnar,
            )
            if not relation.rows:
                return None if boolean_only else frozenset()
            relations.append(relation)
        tracing.annotate(bag_rows=[len(relation.rows) for relation in relations])
    if boolean_only:
        # First-solution short-circuit: a Boolean query only needs one
        # globally consistent assignment, not fully reduced bags.
        with tracing.span("semijoin", mode="first_witness"):
            witness = _first_witness(decomposition, relations)
        return frozenset({()}) if witness else None
    with tracing.span("semijoin", mode="reduce"):
        reduced = _reduce(decomposition, relations)
    if not reduced:
        return frozenset()
    with tracing.span("enumerate", strategy="join_tree"):
        answers = _collect_answers(decomposition, relations, query.head)
        tracing.annotate(answers=len(answers))
    return answers


def boolean_query_holds(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator=None,
    columnar: bool = True,
) -> bool:
    """Boolean evaluation: materialize the bags, stop at the first witness."""
    from ..evaluation.propagation import DEFAULT_PROPAGATOR

    chosen = DEFAULT_PROPAGATOR if propagator is None else propagator
    outcome = _evaluate(
        query.as_boolean(),
        structure,
        pinned,
        chosen,
        None,
        boolean_only=True,
        columnar=columnar,
    )
    return outcome is not None


def evaluate_answers(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator=None,
    compiled: Optional["CompiledQuery"] = None,
    columnar: bool = True,
) -> frozenset[Row]:
    """All answers of a (possibly cyclic) k-ary query via the join tree.

    Boolean queries yield ``{()}`` / ``frozenset()``; the answer *set* is
    identical to the backtracking engine's on every query, which the property
    tests enforce.
    """
    from ..evaluation.propagation import DEFAULT_PROPAGATOR

    chosen = DEFAULT_PROPAGATOR if propagator is None else propagator
    outcome = _evaluate(
        query, structure, pinned, chosen, compiled, boolean_only=False, columnar=columnar
    )
    assert outcome is not None
    return outcome
