"""Evaluation engines for conjunctive queries over trees."""

from . import acyclic
from .arc_consistency import (
    is_arc_consistent,
    maximal_arc_consistent,
    maximal_arc_consistent_horn,
)
from .backtracking import SearchStatistics, count_solutions, find_solution, iter_solutions
from .domains import Domains, Valuation, domain_views, initial_domains, valuation_satisfies
from .planner import (
    Engine,
    check_answer,
    choose_engine,
    evaluate,
    evaluate_on_tree,
    evaluate_union,
    is_satisfied,
    satisfying_assignment,
)
from .xprop_evaluator import (
    XPropertyEvaluationError,
    boolean_query_holds,
    choose_order,
    minimum_valuation,
    witness,
)

__all__ = [
    "Domains",
    "Engine",
    "SearchStatistics",
    "Valuation",
    "XPropertyEvaluationError",
    "acyclic",
    "boolean_query_holds",
    "check_answer",
    "choose_engine",
    "choose_order",
    "count_solutions",
    "domain_views",
    "evaluate",
    "evaluate_on_tree",
    "evaluate_union",
    "find_solution",
    "initial_domains",
    "is_arc_consistent",
    "is_satisfied",
    "iter_solutions",
    "maximal_arc_consistent",
    "maximal_arc_consistent_horn",
    "minimum_valuation",
    "satisfying_assignment",
    "valuation_satisfies",
    "witness",
]
