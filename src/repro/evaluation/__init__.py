"""Evaluation engines for conjunctive queries over trees."""

from . import acyclic
from .ac4 import (
    ac4_fixpoint,
    hybrid_fixpoint,
    maximal_arc_consistent_ac4,
    maximal_arc_consistent_hybrid,
)
from .arc_consistency import (
    is_arc_consistent,
    maximal_arc_consistent,
    maximal_arc_consistent_horn,
)
from .backtracking import SearchStatistics, count_solutions, find_solution, iter_solutions
from .compile import AxisClass, CompiledAtom, CompiledQuery, compile_query
from .domains import Domains, Valuation, domain_views, initial_domains, valuation_satisfies
from .planner import (
    MAX_AUTO_DECOMPOSITION_WIDTH,
    Engine,
    check_answer,
    choose_engine,
    evaluate,
    evaluate_on_tree,
    evaluate_union,
    is_satisfied,
    satisfying_assignment,
)
from .propagation import (
    DEFAULT_PROPAGATOR,
    PropagationResult,
    Propagator,
    propagate,
)
from .xprop_evaluator import (
    XPropertyEvaluationError,
    boolean_query_holds,
    choose_order,
    minimum_valuation,
    witness,
)

__all__ = [
    "AxisClass",
    "CompiledAtom",
    "CompiledQuery",
    "DEFAULT_PROPAGATOR",
    "Domains",
    "Engine",
    "MAX_AUTO_DECOMPOSITION_WIDTH",
    "PropagationResult",
    "Propagator",
    "SearchStatistics",
    "Valuation",
    "XPropertyEvaluationError",
    "ac4_fixpoint",
    "acyclic",
    "boolean_query_holds",
    "check_answer",
    "choose_engine",
    "choose_order",
    "compile_query",
    "count_solutions",
    "domain_views",
    "evaluate",
    "evaluate_on_tree",
    "evaluate_union",
    "find_solution",
    "hybrid_fixpoint",
    "initial_domains",
    "is_arc_consistent",
    "is_satisfied",
    "iter_solutions",
    "maximal_arc_consistent",
    "maximal_arc_consistent_ac4",
    "maximal_arc_consistent_horn",
    "maximal_arc_consistent_hybrid",
    "minimum_valuation",
    "propagate",
    "satisfying_assignment",
    "valuation_satisfies",
    "witness",
]
