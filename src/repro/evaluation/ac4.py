"""AC-4 support-counting propagation over pre/post interval ranks.

The AC-3 worklist of :mod:`arc_consistency` re-scans both whole domains of an
atom on every revise pass and rebuilds a fresh sorted-array view each time; on
label-free transitive queries over large trees the worklist needs many passes,
so the same candidates are re-tested over and over.  This module bounds the
total propagation work in the AC-4 style instead: compute, once, how much
support every (atom-direction, candidate) pair has, then drive all further
work off *deletions* -- when a node leaves a domain, only the candidates it
actually supported are touched, each with an O(1) counter decrement or an
amortized-O(1) threshold pop.

The support bookkeeping exploits the same pre/post interval characterizations
as the index (ROADMAP "Performance & indexing"), one strategy per axis shape:

* **local axes** (``Child``, ``NextSibling``, ``SuccPre``, ``Self``) --
  explicit counters; a deleted node supports O(1) (or O(degree)) candidates,
  found by a direct array lookup (:class:`_LocalCounter`);
* **subtree axes** (``Child+``/``Child*`` in the descendant direction) --
  counters initialised by one bisection per candidate
  (``count = |domain ∩ subtree-interval|``); deleting a node decrements
  exactly its ancestors' counters, found by walking the parent chain
  (:class:`_DescendantCounter`);
* **ancestor direction** -- counters initialised either by per-candidate
  parent-chain walks or by one O(n) stack sweep in pre-order (whichever is
  cheaper); deleting a node decrements the candidates inside its subtree
  interval, enumerated from the incremental view (:class:`_AncestorCounter`);
* **order-statistic axes** (``Following``, ``DocumentOrder``,
  ``NextSibling+``/``NextSibling*``) -- support existence depends only on a
  monotone aggregate of the opposite domain (max pre rank, min subtree end,
  per-parent sibling extrema).  Since domains only shrink, the aggregate moves
  monotonically, and candidates lose support in sorted-threshold order: each
  is popped at most once (:class:`_GlobalThreshold`, :class:`_SiblingThreshold`).

Domains are held in delete-aware
:class:`~repro.trees.index.MutableDomainView`\\ s, which are *maintained*, not
rebuilt, and remain valid at the fixpoint -- the acyclic enumerator and the
backtracking forward checker consume them directly.

The result equals the AC-3 fixpoint and the Horn-SAT least model complement
(the deletion rules are confluent); the property tests cross-check all three.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..queries.atoms import Variable
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis
from ..trees.index import MutableDomainView
from ..trees.structure import TreeStructure
from .compile import CompiledQuery, compile_query
from .domains import Domains

#: The fixpoint as maintained views, one per variable.
Views = dict[Variable, MutableDomainView]


# ---------------------------------------------------------------------------
# Support trackers: one per (atom, direction).
# ---------------------------------------------------------------------------


class _Tracker:
    """Support bookkeeping for the candidates of one atom endpoint.

    ``watched`` is the variable whose candidates we keep support counts for;
    ``support`` is the variable whose domain provides the witnesses.  The
    engine calls :meth:`initialise` once (returning the candidates that start
    with no support at all) and :meth:`on_support_delete` after every deletion
    from the support domain (returning the candidates that just lost their
    last witness).  Emitted candidates may already be dead, and the counter
    trackers deliberately keep decrementing stale entries for dead nodes; the
    engine checks liveness exactly once, when it pops a candidate off the
    deletion queue, so the per-decrement hot path stays branch-free.
    """

    __slots__ = ("watched", "support", "watched_view", "support_view")

    def __init__(
        self,
        watched: Variable,
        support: Variable,
        watched_view: MutableDomainView,
        support_view: MutableDomainView,
    ):
        self.watched = watched
        self.support = support
        self.watched_view = watched_view
        self.support_view = support_view

    def initialise(self) -> list[int]:
        raise NotImplementedError

    def on_support_delete(self, node: int) -> list[int]:
        raise NotImplementedError


class _LocalCounter(_Tracker):
    """Counters for axes where each witness supports O(degree) candidates.

    ``supported_by(w)`` enumerates the candidates a witness ``w`` supports
    (e.g. for ``Child`` forward, the single node ``parent(w)``).  Counters are
    initialised from the support side in O(|support domain|) and decremented
    in O(1) per (witness, candidate) pair.
    """

    __slots__ = ("supported_by", "counts")

    def __init__(self, watched, support, watched_view, support_view, supported_by):
        super().__init__(watched, support, watched_view, support_view)
        self.supported_by: Callable[[int], Iterable[int]] = supported_by

    def initialise(self) -> list[int]:
        counts = [0] * self.watched_view.index.n
        for witness in self.support_view.array:
            for candidate in self.supported_by(witness):
                counts[candidate] += 1
        self.counts = counts
        return [u for u in self.watched_view.array if counts[u] == 0]

    def on_support_delete(self, node: int) -> list[int]:
        lost = []
        counts = self.counts
        for candidate in self.supported_by(node):
            remaining = counts[candidate]
            counts[candidate] = remaining - 1
            if remaining == 1:
                lost.append(candidate)
        return lost


class _DescendantCounter(_Tracker):
    """``Child+``/``Child*`` in the descendant direction (watched = ancestor).

    ``count[u] = |support ∩ (u, end(u)]|`` (``[u, end(u)]`` for ``Child*``).
    Initialisation is the per-candidate two-bisection loop: the measured
    columnar variant (cumulative-membership reads via
    ``repro.trees.columnar.descendant_counts``) was parity with it on every
    benchmarked size -- counter init is bisection-bound either way -- so the
    BENCH_columnar ablation retired it.  A deleted witness ``w`` was counted
    by exactly the ancestors(-or-self) of ``w``: walk the parent chain and
    decrement.
    """

    __slots__ = ("include_self", "counts", "_parent", "_end")

    def __init__(self, watched, support, watched_view, support_view, include_self):
        super().__init__(watched, support, watched_view, support_view)
        self.include_self = include_self
        index = watched_view.index
        self._parent = index.parent
        self._end = index.subtree_end

    def initialise(self) -> list[int]:
        watched_array = self.watched_view.array
        n = len(self._parent)
        support_array = self.support_view.array
        end = self._end
        offset = 0 if self.include_self else 1
        counts = [0] * n
        empty = []
        for u in watched_array:
            count = bisect_left(support_array, end[u] + 1) - bisect_left(
                support_array, u + offset
            )
            counts[u] = count
            if count == 0:
                empty.append(u)
        self.counts = counts
        return empty

    def on_support_delete(self, node: int) -> list[int]:
        lost = []
        counts = self.counts
        parent = self._parent
        u = node if self.include_self else parent[node]
        while u >= 0:
            remaining = counts[u]
            counts[u] = remaining - 1
            if remaining == 1:
                lost.append(u)
            u = parent[u]
        return lost


class _AncestorCounter(_Tracker):
    """``Child+``/``Child*`` in the ancestor direction (watched = descendant).

    ``count[w] = |ancestors(-or-self)(w) ∩ support|``, initialised by
    per-candidate parent-chain walks when the watched domain is sparse and by
    one pre-order stack sweep otherwise.  The measured columnar variant (the
    closed form ``cum_pre[w] - cum_end[w]`` via
    ``repro.trees.columnar.ancestor_counts``) was parity with this pair on
    every benchmarked size, so the BENCH_columnar ablation retired it.  A
    deleted support node ``v`` was counted by exactly the candidates inside
    ``v``'s subtree interval, enumerated live from the incremental view.
    """

    __slots__ = ("include_self", "counts", "_parent", "_end")

    def __init__(self, watched, support, watched_view, support_view, include_self):
        super().__init__(watched, support, watched_view, support_view)
        self.include_self = include_self
        index = watched_view.index
        self._parent = index.parent
        self._end = index.subtree_end

    def initialise(self) -> list[int]:
        watched_array = self.watched_view.array
        support_members = self.support_view.members
        parent = self._parent
        n = len(parent)
        counts = [0] * n
        if len(watched_array) * 8 < n:
            for w in watched_array:
                count = 0
                u = w if self.include_self else parent[w]
                while u >= 0:
                    if u in support_members:
                        count += 1
                    u = parent[u]
                counts[w] = count
        else:
            end = self._end
            watched_members = self.watched_view.members
            stack: list[tuple[int, int]] = []  # (subtree_end, counted-in-support)
            running = 0
            for u in range(n):
                while stack and stack[-1][0] < u:
                    running -= stack.pop()[1]
                in_support = 1 if u in support_members else 0
                if u in watched_members:
                    counts[u] = running + (in_support if self.include_self else 0)
                stack.append((end[u], in_support))
                running += in_support
        self.counts = counts
        return [w for w in watched_array if counts[w] == 0]

    def on_support_delete(self, node: int) -> list[int]:
        lost = []
        counts = self.counts
        # The backing array may still hold dead entries; decrementing their
        # stale counters is harmless (the engine liveness-checks on pop) and
        # cheaper than filtering here.
        array = self.watched_view.unpruned_array
        lo = bisect_left(array, node if self.include_self else node + 1)
        hi = bisect_left(array, self._end[node] + 1)
        for position in range(lo, hi):
            w = array[position]
            remaining = counts[w]
            counts[w] = remaining - 1
            if remaining == 1:
                lost.append(w)
        return lost


class _GlobalThreshold(_Tracker):
    """Axes whose support condition is a comparison against a global extremum.

    ``Following`` forward: ``u`` is supported iff some witness opens after
    ``u``'s subtree closes, i.e. iff ``max(support ids) > end(u)``.  As the
    support domain shrinks, the max only decreases, so candidates -- kept
    sorted by their threshold key -- lose support from the top and each is
    popped at most once.  ``flavor='min'`` is the mirrored condition
    (``aggregate < key(u)``), covering the backward direction.
    """

    __slots__ = ("flavor", "_agg_entries", "_agg_pos", "_cands", "_cand_pos")

    def __init__(self, watched, support, watched_view, support_view, flavor, agg_key, cand_key):
        super().__init__(watched, support, watched_view, support_view)
        self.flavor = flavor
        # Support entries sorted by aggregate key; the live extremum is found
        # by advancing a pointer past dead entries (monotone: domains shrink).
        self._agg_entries = sorted(
            ((agg_key(w), w) for w in support_view.array),
            reverse=(flavor == "max"),
        )
        self._agg_pos = 0
        # For 'max', candidates with the LARGEST keys lose support first (the
        # live max only decreases); for 'min', the smallest (the min only
        # increases).  Sorting that way makes the pop pointer monotone.
        self._cands = sorted(
            ((cand_key(u), u) for u in watched_view.array),
            reverse=(flavor == "max"),
        )
        self._cand_pos = 0

    def _aggregate(self) -> Optional[int]:
        entries = self._agg_entries
        members = self.support_view.members
        position = self._agg_pos
        while position < len(entries) and entries[position][1] not in members:
            position += 1
        self._agg_pos = position
        return entries[position][0] if position < len(entries) else None

    def _pop_unsupported(self) -> list[int]:
        aggregate = self._aggregate()
        cands = self._cands
        position = self._cand_pos
        lost = []
        if self.flavor == "max":
            # Candidates (sorted by key descending) unsupported iff key >= max.
            while position < len(cands) and (
                aggregate is None or cands[position][0] >= aggregate
            ):
                lost.append(cands[position][1])
                position += 1
        else:
            # Candidates (sorted by key ascending) unsupported iff key <= min.
            while position < len(cands) and (
                aggregate is None or cands[position][0] <= aggregate
            ):
                lost.append(cands[position][1])
                position += 1
        self._cand_pos = position
        return lost

    def initialise(self) -> list[int]:
        return self._pop_unsupported()

    def on_support_delete(self, node: int) -> list[int]:
        entries = self._agg_entries
        position = self._agg_pos
        if position < len(entries) and entries[position][1] == node:
            return self._pop_unsupported()
        return []


class _SiblingThreshold(_Tracker):
    """``NextSibling+``/``NextSibling*``: per-parent sibling-rank extrema.

    Within one parent, sibling order coincides with pre-order id order, so
    ``u`` has a later-sibling witness iff the max live support id under
    ``parent(u)`` exceeds ``u`` -- a per-group instance of the global
    threshold scheme.  ``NextSibling*`` additionally lets a candidate support
    itself: a candidate that fails the threshold but is itself a live support
    member is parked and re-emitted only when *it* leaves the support domain
    (thresholds never recover, so no recheck is needed).
    """

    __slots__ = (
        "flavor",
        "include_self",
        "_group_entries",
        "_group_pos",
        "_group_cands",
        "_group_cand_pos",
        "_self_supported",
        "_parent",
    )

    def __init__(self, watched, support, watched_view, support_view, flavor, include_self):
        super().__init__(watched, support, watched_view, support_view)
        self.flavor = flavor
        self.include_self = include_self
        parent = watched_view.index.parent
        self._parent = parent
        reverse = flavor == "max"
        group_entries: dict[int, list[int]] = {}
        for w in support_view.array:
            parent_id = parent[w]
            if parent_id >= 0:
                group_entries.setdefault(parent_id, []).append(w)
        # Support arrays are pre-order sorted; flip for max so the pointer
        # always advances towards the surviving extremum.
        if reverse:
            for entry_list in group_entries.values():
                entry_list.reverse()
        self._group_entries = group_entries
        self._group_pos = {parent_id: 0 for parent_id in group_entries}
        group_cands: dict[int, list[int]] = {}
        for u in watched_view.array:
            group_cands.setdefault(parent[u], []).append(u)
        # Mirror of the global tracker: 'max' consumes candidates largest-id
        # first, 'min' smallest-id first.
        if reverse:
            for cand_list in group_cands.values():
                cand_list.reverse()
        self._group_cands = group_cands
        self._group_cand_pos = {parent_id: 0 for parent_id in group_cands}
        self._self_supported: set[int] = set()

    def _aggregate(self, parent_id: int) -> Optional[int]:
        entries = self._group_entries.get(parent_id)
        if entries is None:
            return None
        members = self.support_view.members
        position = self._group_pos[parent_id]
        while position < len(entries) and entries[position] not in members:
            position += 1
        self._group_pos[parent_id] = position
        return entries[position] if position < len(entries) else None

    def _pop_unsupported(self, parent_id: int) -> list[int]:
        cands = self._group_cands.get(parent_id)
        if cands is None:
            return []
        aggregate = None if parent_id < 0 else self._aggregate(parent_id)
        position = self._group_cand_pos[parent_id]
        lost = []
        if self.flavor == "max":
            while position < len(cands) and (
                aggregate is None or cands[position] >= aggregate
            ):
                lost.append(cands[position])
                position += 1
        else:
            while position < len(cands) and (
                aggregate is None or cands[position] <= aggregate
            ):
                lost.append(cands[position])
                position += 1
        self._group_cand_pos[parent_id] = position
        if self.include_self:
            support_members = self.support_view.members
            really_lost = []
            for u in lost:
                if u in support_members:
                    self._self_supported.add(u)
                else:
                    really_lost.append(u)
            return really_lost
        return lost

    def initialise(self) -> list[int]:
        lost = []
        for parent_id in list(self._group_cands):
            lost.extend(self._pop_unsupported(parent_id))
        return lost

    def on_support_delete(self, node: int) -> list[int]:
        lost = []
        if self.include_self and node in self._self_supported:
            # Its sibling threshold had already failed; self-support was all
            # that was left, and thresholds never recover.
            self._self_supported.discard(node)
            lost.append(node)
        parent_id = self._parent[node]
        if parent_id >= 0:
            entries = self._group_entries.get(parent_id)
            if entries is not None:
                position = self._group_pos[parent_id]
                if position < len(entries) and entries[position] == node:
                    lost.extend(self._pop_unsupported(parent_id))
        return lost


class _EnumerationCounter(_LocalCounter):
    """Fallback for axes outside the interval/local vocabulary.

    Uses the structure's (cached) relation enumeration to find, per witness,
    the candidates it supports.  After compile-time normalization every axis
    in :class:`~repro.trees.axes.Axis` has a dedicated tracker, so this only
    runs for hypothetical future axes -- it keeps the engine total.
    """


# ---------------------------------------------------------------------------
# Tracker construction.
# ---------------------------------------------------------------------------


def _make_trackers(
    structure: TreeStructure,
    atom,
    views: Views,
) -> Sequence[_Tracker]:
    """The forward and backward trackers of one non-loop compiled atom."""
    index = structure.index
    axis = atom.axis
    source_view = views[atom.source]
    target_view = views[atom.target]
    n = index.n
    parent = index.parent
    children_of = index.tree.children_of
    next_sibling = index.next_sibling
    prev_sibling = index.prev_sibling

    def fwd(cls, *args, **kwargs):
        return cls(atom.source, atom.target, source_view, target_view, *args, **kwargs)

    def bwd(cls, *args, **kwargs):
        return cls(atom.target, atom.source, target_view, source_view, *args, **kwargs)

    if axis is Axis.CHILD:
        return (
            fwd(_LocalCounter, lambda w: (parent[w],) if parent[w] >= 0 else ()),
            bwd(_LocalCounter, lambda v: children_of[v]),
        )
    if axis is Axis.CHILD_PLUS or axis is Axis.CHILD_STAR:
        include_self = axis is Axis.CHILD_STAR
        return (
            fwd(_DescendantCounter, include_self),
            bwd(_AncestorCounter, include_self),
        )
    if axis is Axis.NEXT_SIBLING:
        return (
            fwd(_LocalCounter, lambda w: (prev_sibling[w],) if prev_sibling[w] >= 0 else ()),
            bwd(_LocalCounter, lambda v: (next_sibling[v],) if next_sibling[v] >= 0 else ()),
        )
    if axis is Axis.NEXT_SIBLING_PLUS or axis is Axis.NEXT_SIBLING_STAR:
        include_self = axis is Axis.NEXT_SIBLING_STAR
        return (
            fwd(_SiblingThreshold, "max", include_self),
            bwd(_SiblingThreshold, "min", include_self),
        )
    if axis is Axis.FOLLOWING:
        end = index.subtree_end
        return (
            fwd(_GlobalThreshold, "max", lambda w: w, lambda u: end[u]),
            bwd(_GlobalThreshold, "min", lambda v: end[v], lambda w: w),
        )
    if axis is Axis.DOCUMENT_ORDER:
        identity = lambda u: u  # noqa: E731 - tiny key functions
        return (
            fwd(_GlobalThreshold, "max", identity, identity),
            bwd(_GlobalThreshold, "min", identity, identity),
        )
    if axis is Axis.SUCC_PRE:
        return (
            fwd(_LocalCounter, lambda w: (w - 1,) if w > 0 else ()),
            bwd(_LocalCounter, lambda v: (v + 1,) if v + 1 < n else ()),
        )
    if axis is Axis.SELF:
        return (
            fwd(_LocalCounter, lambda w: (w,)),
            bwd(_LocalCounter, lambda v: (v,)),
        )
    return (
        fwd(_EnumerationCounter, lambda w: structure.axis_predecessors(axis, w)),
        bwd(_EnumerationCounter, lambda v: structure.axis_successors(axis, v)),
    )


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


def ac4_fixpoint(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    initial_domains: Optional[Domains] = None,
    initial_views: Optional[Views] = None,
    columnar: bool = True,
) -> Optional[Views]:
    """The maximal arc-consistent prevaluation as maintained mutable views.

    Returns ``None`` when some variable loses every candidate (the query is
    unsatisfiable on the structure).  The returned views are the live,
    delete-aware representation: callers may hand them straight to the index
    witness primitives or to the backtracking forward checker.

    ``initial_domains`` lets a caller seed the engine with domains it has
    already (soundly) narrowed -- the hybrid propagator's bulk revise sweep
    uses this.  ``initial_views`` is the same idea one step further: already
    maintained views (e.g. straight out of
    :func:`~repro.evaluation.arc_consistency.bulk_revise_views`) are adopted
    without rebuilding.  Seeded domains/views must have the pin and self-loop
    filters applied and be non-empty; confluence of the deletion rules
    guarantees the fixpoint is unchanged.  ``pinned`` therefore cannot be
    combined with a seed (the seed is expected to embody it already).

    ``columnar`` is accepted for API stability but no longer changes the
    counter initialisation: the columnar interval-counter init measured at
    parity with the per-candidate bisection/sweep paths (both are
    bisection-bound), so the ablation retired it and the per-candidate paths
    are now the only implementation.
    """
    if initial_domains is not None and initial_views is not None:
        raise ValueError("initial_domains and initial_views are mutually exclusive seeds")
    if pinned is not None and (initial_domains is not None or initial_views is not None):
        raise ValueError(
            "pinned cannot be combined with initial_domains/initial_views; "
            "apply the pin while building the seed instead"
        )
    compiled = query if isinstance(query, CompiledQuery) else compile_query(query)
    index = structure.index

    if initial_views is not None:
        views = initial_views
    else:
        if initial_domains is None:
            domains = compiled.initial_domains(structure, pinned)
            for domain in domains.values():
                if not domain:
                    return None
            # Self-loops R(x, x) are static per-node filters, applied once up front.
            if not compiled.apply_loop_filters(domains, structure):
                return None
        else:
            domains = initial_domains
        views = {
            variable: index.mutable_view(domains[variable]) for variable in compiled.variables
        }

    trackers_by_support: dict[Variable, list[_Tracker]] = {
        variable: [] for variable in compiled.variables
    }
    queue: deque[tuple[Variable, int]] = deque()
    for atom in compiled.edges:
        for tracker in _make_trackers(structure, atom, views):
            trackers_by_support[tracker.support].append(tracker)
            for candidate in tracker.initialise():
                queue.append((tracker.watched, candidate))

    while queue:
        variable, node = queue.popleft()
        if not views[variable].discard(node):
            continue
        if not views[variable].members:
            return None
        for tracker in trackers_by_support[variable]:
            for candidate in tracker.on_support_delete(node):
                queue.append((tracker.watched, candidate))
    return views


def hybrid_fixpoint(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    columnar: bool = True,
) -> Optional[Views]:
    """One bulk AC-3 revise sweep, then AC-4 support counting (``hybrid``).

    The ROADMAP trade-off: on fast-converging queries (pure ``Child+`` chains)
    AC-3's bulk scans beat AC-4's per-candidate bookkeeping, while on
    slow-converging ones (``Following`` chains, cyclic shapes) AC-4's bounded
    total work wins by orders of magnitude.  The hybrid takes one bulk
    interval-revise pass over every edge first -- harvesting the cheap
    deletions at bulk-scan cost -- and hands the shrunken domains to the AC-4
    engine, whose counter initialisation is now proportionally cheaper.  Both
    stages delete only unsupported candidates, so the fixpoint (and therefore
    every consumer downstream) is identical to the other propagators'.

    With ``columnar=True`` the sweep runs the staircase kernels directly on
    maintained views and the AC-4 stage adopts those views as its seed -- no
    set round trip, no re-sort; ``columnar=False`` keeps the per-candidate
    set-based pipeline as the ablation.
    """
    compiled = query if isinstance(query, CompiledQuery) else compile_query(query)
    domains = compiled.initial_domains(structure, pinned)
    for domain in domains.values():
        if not domain:
            return None
    if not compiled.apply_loop_filters(domains, structure):
        return None
    if columnar:
        from .arc_consistency import bulk_revise_views

        index = structure.index
        views: Views = {
            variable: index.mutable_view(domains[variable]) for variable in compiled.variables
        }
        if not bulk_revise_views(compiled, views, structure):
            return None
        return ac4_fixpoint(compiled, structure, initial_views=views)
    from .arc_consistency import bulk_revise_sweep

    if not bulk_revise_sweep(compiled, domains, structure, columnar=False):
        return None
    return ac4_fixpoint(compiled, structure, initial_domains=domains, columnar=False)


def maximal_arc_consistent_hybrid(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    columnar: bool = True,
) -> Optional[Domains]:
    """Hybrid twin of :func:`maximal_arc_consistent_ac4` (same fixpoint)."""
    views = hybrid_fixpoint(query, structure, pinned, columnar=columnar)
    if views is None:
        return None
    return {variable: view.members for variable, view in views.items()}


def maximal_arc_consistent_ac4(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    columnar: bool = True,
) -> Optional[Domains]:
    """AC-4 twin of :func:`~repro.evaluation.arc_consistency.maximal_arc_consistent`.

    Same fixpoint, support-counting propagation; returns plain per-variable
    node sets (the live member sets of the maintained views).
    """
    views = ac4_fixpoint(query, structure, pinned, columnar=columnar)
    if views is None:
        return None
    return {variable: view.members for variable, view in views.items()}
