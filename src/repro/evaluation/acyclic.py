"""Yannakakis-style evaluation of acyclic conjunctive queries.

The paper repeatedly appeals to the classical fact [Yannakakis 1981] that
acyclic conjunctive queries can be evaluated in polynomial time; the whole
point of the Section 6 rewriting is to turn arbitrary conjunctive queries over
trees into (unions of) acyclic ones so that this machinery applies.

For queries whose atoms are unary and binary (our setting), acyclicity means
the shadow of the query graph is a forest.  On such queries, the subset-maximal
arc-consistent prevaluation (full semijoin reduction) is *globally* consistent:
instantiating variables in a root-to-leaf order of each shadow tree never needs
to backtrack.  This module implements

* :func:`boolean_query_holds` -- Boolean evaluation = arc consistency,
* :func:`iter_satisfactions` -- backtrack-free enumeration of all satisfying
  valuations (used by the examples and by answer enumeration for acyclic
  queries),
* :func:`count_satisfactions` -- counting without materialising.

The prevaluation is computed by the engine selected through ``propagator=``
(AC-4 support counting by default; see :mod:`repro.evaluation.propagation`),
and the enumeration consumes the compiled query's adjacency and the
propagation result's maintained sorted views directly.  Enumeration order is
**deterministic**: variables in compile order (first occurrence), candidate
nodes in ascending node id, so repeated runs, test snapshots and different
propagators all agree on the output sequence.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from ..queries.atoms import Variable
from ..queries.graph import QueryGraph
from ..queries.query import ConjunctiveQuery
from ..trees.structure import TreeStructure
from .compile import compile_query
from .domains import Valuation
from .propagation import DEFAULT_PROPAGATOR, PropagatorLike, propagate


def boolean_query_holds(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> bool:
    """Boolean evaluation of an *acyclic* query.

    For acyclic queries over binary atoms, the existence of an arc-consistent
    prevaluation is equivalent to satisfiability (semijoin reduction is
    complete on join trees).  Raises ``ValueError`` on cyclic queries, for
    which this equivalence does not hold.
    """
    graph = QueryGraph(query)
    if not graph.is_acyclic():
        raise ValueError("the acyclic evaluator requires an acyclic query")
    return propagate(query, structure, pinned, propagator) is not None


def iter_satisfactions(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> Iterator[Valuation]:
    """Enumerate all satisfying valuations of an acyclic query, deterministically.

    The enumeration instantiates each shadow-tree component root first and
    then children given their (unique) already-assigned neighbour, filtering
    with the arc-consistent domains; for acyclic queries this is
    backtrack-free per solution (each partial assignment extends to at least
    one solution), though the total number of solutions may of course be
    large.  Candidates are tried in ascending node order (the propagation
    views are sorted arrays), so the output sequence is reproducible.
    """
    graph = QueryGraph(query)
    if not graph.is_acyclic():
        raise ValueError("the acyclic evaluator requires an acyclic query")
    result = propagate(query, structure, pinned, propagator)
    if result is None:
        return
    compiled = compile_query(query)
    variables = compiled.variables
    if not variables:
        yield {}
        return

    # Order variables so that each non-first variable of a component has at
    # least one earlier neighbour (BFS order over the shadow forest).
    order: list[Variable] = []
    seen: set[Variable] = set()
    for start in variables:
        if start in seen:
            continue
        queue = [start]
        seen.add(start)
        while queue:
            variable = queue.pop(0)
            order.append(variable)
            for atom in compiled.atoms_of(variable):
                other = atom.other(variable)
                if other not in seen:
                    seen.add(other)
                    queue.append(other)

    index = structure.index

    def consistent_with_assigned(
        variable: Variable, node: int, assignment: Valuation
    ) -> bool:
        # Self-loop atoms were already applied as filters during propagation.
        for atom in compiled.atoms_of(variable):
            other = atom.other(variable)
            if other in assignment:
                source_node = node if atom.source == variable else assignment[other]
                target_node = assignment[other] if atom.source == variable else node
                if not index.holds(atom.axis, source_node, target_node):
                    return False
        return True

    candidate_arrays = {variable: result.sorted_domain(variable) for variable in order}

    def extend(position: int, assignment: Valuation) -> Iterator[Valuation]:
        if position == len(order):
            yield dict(assignment)
            return
        variable = order[position]
        for node in candidate_arrays[variable]:
            if consistent_with_assigned(variable, node, assignment):
                assignment[variable] = node
                yield from extend(position + 1, assignment)
                del assignment[variable]

    yield from extend(0, {})


def count_satisfactions(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> int:
    """Count all satisfying valuations of an acyclic query."""
    return sum(1 for _ in iter_satisfactions(query, structure, pinned, propagator))
