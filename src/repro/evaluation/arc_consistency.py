"""Arc consistency: the maximal arc-consistent prevaluation (Proposition 3.1).

A prevaluation Phi is *arc-consistent* iff

* for each unary atom ``P(x)`` and each ``v`` in Phi(x), ``P(v)`` holds, and
* for each binary atom ``R(x, y)``: every ``v`` in Phi(x) has a witness
  ``w`` in Phi(y) with ``R(v, w)``, and every ``w`` in Phi(y) has a witness
  ``v`` in Phi(x) with ``R(v, w)``.

Proposition 3.1 phrases the computation of the unique subset-maximal
arc-consistent prevaluation as a propositional Horn-SAT instance solvable in
time O(||A|| * |Q|).  Two implementations are provided:

* :func:`maximal_arc_consistent` -- a worklist (AC-3 style) algorithm over the
  per-variable candidate domains.  It computes exactly the same fixpoint (the
  greatest simultaneous fixpoint of the deletion rules); since the AC-4
  support-counting engine (:mod:`repro.evaluation.ac4`) became the planner
  default it serves as the first-line ablation and cross-check.
* :func:`maximal_arc_consistent_horn` -- a literal transcription of the Horn
  program from the proof (unit propagation over ``Remove(x, v)`` atoms), kept
  as an ablation baseline and as a cross-check in the tests.

Engine selection lives in :mod:`repro.evaluation.propagation` (the planner's
``propagator=`` dimension); all engines consume the shared
:class:`~repro.evaluation.compile.CompiledQuery` representation.

Both return ``None`` when no arc-consistent prevaluation exists (some variable
loses all candidates), in which case the query is unsatisfiable on the
structure.

The worklist algorithm's revise step has two interchangeable implementations
(cross-checked against each other in the tests):

* :func:`_revise_interval` (the default) asks the tree's pre/post interval
  index (:mod:`repro.trees.index`) whether each candidate has a witness inside
  the opposite domain -- O(1) or O(log n) per candidate against a sorted-array
  view, so one revise pass is O((|Phi(x)| + |Phi(y)|) log n);
* :func:`_revise_enumeration` materializes ``axis_successors`` /
  ``axis_predecessors`` per candidate and intersects -- O(n) per candidate for
  the transitive axes.  It is kept as the fallback for axes the index does not
  know and as the ablation baseline for the benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Optional

from ..queries.atoms import AxisAtom, LabelAtom, Variable
from ..queries.query import ConjunctiveQuery
from ..trees.structure import TreeStructure
from .compile import AxisClass, CompiledAtom, CompiledQuery, compile_query
from .domains import Domains


def maximal_arc_consistent(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    use_index: bool = True,
) -> Optional[Domains]:
    """Compute the subset-maximal arc-consistent prevaluation (worklist form).

    Returns the prevaluation as a dict of node sets, or ``None`` if some
    variable ends up with an empty candidate set (no arc-consistent
    prevaluation exists, hence the query is not satisfied -- Lemma 3.4's
    complement).

    Runs on the compile-once representation (:mod:`repro.evaluation.compile`):
    normalized atoms, precomputed adjacency, per-atom axis classification and
    the initial-domain recipe all come from the :class:`CompiledQuery` instead
    of being re-derived per call.

    ``use_index=False`` forces the per-candidate enumeration revise step
    instead of the interval-index one; both reach the same fixpoint (the
    deletion rules are confluent), so the flag exists only for ablation
    benchmarks and cross-checking tests.
    """
    compiled = query if isinstance(query, CompiledQuery) else compile_query(query)
    domains = compiled.initial_domains(structure, pinned)
    if any(not domain for domain in domains.values()):
        return None

    # Self-loops R(x, x) are static per-node filters: apply them once.
    if not compiled.apply_loop_filters(domains, structure):
        return None

    queue: deque[CompiledAtom] = deque(compiled.edges)
    queued: set[CompiledAtom] = set(compiled.edges)

    while queue:
        atom = queue.popleft()
        queued.discard(atom)
        changed_variables = _revise(atom, domains, structure, use_index)
        for variable in changed_variables:
            if not domains[variable]:
                return None
            for neighbour_atom in compiled.atoms_of(variable):
                if neighbour_atom not in queued:
                    queue.append(neighbour_atom)
                    queued.add(neighbour_atom)
    return domains


def bulk_revise_sweep(
    compiled: CompiledQuery, domains: Domains, structure: TreeStructure
) -> bool:
    """One bulk interval-revise pass over every edge (no worklist, no repeats).

    This is the opening move of the ``hybrid`` propagator
    (:func:`repro.evaluation.ac4.hybrid_fixpoint`): on fast-converging queries
    (pure ``Child+`` chains) a single pass of AC-3's set-comprehension scans
    removes the bulk of the dead candidates far cheaper than per-candidate
    support bookkeeping, and whatever it leaves behind is finished off by the
    deletion-driven AC-4 engine.  Deleting only unsupported candidates keeps
    the fixpoint unchanged (the deletion rules are confluent).

    Mutates ``domains`` in place; returns ``False`` iff some domain empties.
    """
    for atom in compiled.edges:
        for variable in _revise(atom, domains, structure):
            if not domains[variable]:
                return False
    return True


def _revise(
    atom: CompiledAtom,
    domains: Domains,
    structure: TreeStructure,
    use_index: bool = True,
) -> list[Variable]:
    """Remove unsupported candidates for both endpoints of ``atom``.

    Dispatches on the compile-time axis classification: interval/local axes go
    through the index revise step, enumeration-class axes through the
    materializing one.  Returns the variables whose domains shrank.
    """
    if use_index and atom.axis_class is not AxisClass.ENUMERATION:
        return _revise_interval(atom, domains, structure)
    return _revise_enumeration(atom, domains, structure)


def _revise_interval(
    atom: CompiledAtom, domains: Domains, structure: TreeStructure
) -> list[Variable]:
    """Interval-index revise: witness tests against sorted-array domain views.

    Local axes (``Child``, ``NextSibling``, ``SuccPre``, ...) are answered by
    direct array lookups, interval axes (``Child+``, ``Child*``, ``Following``,
    ``NextSibling+``, ...) by bisection and per-view aggregates -- never by
    enumerating the relation.
    """
    changed: list[Variable] = []
    index = structure.index
    source_domain = domains[atom.source]
    target_domain = domains[atom.target]

    # Forward direction: every v in Phi(source) needs a witness in Phi(target).
    target_view = index.view(target_domain)
    keep_source = {
        v
        for v in source_domain
        if index.has_successor_in(atom.axis, v, target_view)
    }
    if keep_source != source_domain:
        domains[atom.source] = keep_source
        changed.append(atom.source)

    # Backward direction: every w in Phi(target) needs a witness in Phi(source).
    source_view = index.view(domains[atom.source])
    keep_target = {
        w
        for w in target_domain
        if index.has_predecessor_in(atom.axis, w, source_view)
    }
    if keep_target != target_domain:
        domains[atom.target] = keep_target
        changed.append(atom.target)
    return changed


def _revise_enumeration(
    atom: CompiledAtom, domains: Domains, structure: TreeStructure
) -> list[Variable]:
    """Enumeration revise: materialize the relation per candidate (baseline)."""
    changed: list[Variable] = []
    source_domain = domains[atom.source]
    target_domain = domains[atom.target]

    # Forward direction: every v in Phi(source) needs a witness in Phi(target).
    keep_source = set()
    for v in source_domain:
        successors = structure.axis_successors(atom.axis, v)
        if target_domain.intersection(successors):
            keep_source.add(v)
    if keep_source != source_domain:
        domains[atom.source] = keep_source
        changed.append(atom.source)

    # Backward direction: every w in Phi(target) needs a witness in Phi(source).
    source_domain = domains[atom.source]
    keep_target = set()
    for w in target_domain:
        predecessors = structure.axis_predecessors(atom.axis, w)
        if any(v in source_domain for v in predecessors):
            keep_target.add(w)
    if keep_target != target_domain:
        domains[atom.target] = keep_target
        changed.append(atom.target)
    return changed


def is_arc_consistent(
    query: ConjunctiveQuery, structure: TreeStructure, domains: Domains
) -> bool:
    """Check the arc-consistency conditions for a given prevaluation."""
    if any(not domain for domain in domains.values()):
        return False
    for atom in query.body:
        if isinstance(atom, LabelAtom):
            if any(
                not structure.unary_holds(atom.label, node)
                for node in domains[atom.variable]
            ):
                return False
        elif isinstance(atom, AxisAtom):
            source_domain = domains[atom.source]
            target_domain = domains[atom.target]
            for v in source_domain:
                if not any(
                    structure.axis_holds(atom.axis, v, w) for w in target_domain
                ):
                    return False
            for w in target_domain:
                if not any(
                    structure.axis_holds(atom.axis, v, w) for v in source_domain
                ):
                    return False
    return True


# ---------------------------------------------------------------------------
# Literal Horn-program implementation (Proposition 3.1), used as an ablation.
# ---------------------------------------------------------------------------


def maximal_arc_consistent_horn(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
) -> Optional[Domains]:
    """Compute the maximal arc-consistent prevaluation via the Horn program.

    The propositional atoms are ``Remove(x, v)``; the program contains

    * a fact ``Remove(x, v)`` for each unary atom ``P(x)`` and node ``v`` with
      ``not P(v)`` (and for pinned variables, each node other than the pin),
    * for each binary atom ``R(x, y)`` and node ``v``:
      ``Remove(x, v) <- AND { Remove(y, w) | R(v, w) }``,
    * for each binary atom ``R(x, y)`` and node ``w``:
      ``Remove(y, w) <- AND { Remove(x, v) | R(v, w) }``.

    Unit propagation (linear in the program size) computes the least model;
    the complement of ``Remove`` is the maximal arc-consistent prevaluation.
    """
    compiled = query if isinstance(query, CompiledQuery) else compile_query(query)
    variables = compiled.variables
    nodes = list(structure.domain())

    # Proposition index: (variable, node) -> proposition id.
    proposition_of: dict[tuple[Variable, int], int] = {}
    for variable in variables:
        for node in nodes:
            proposition_of[(variable, node)] = len(proposition_of)

    facts: list[int] = []
    # clauses: body size countdown + head; body_of maps proposition -> clause ids.
    clause_heads: list[int] = []
    clause_counts: list[int] = []
    watchers: dict[int, list[int]] = {}

    def add_clause(head: int, body: list[int]) -> None:
        if not body:
            facts.append(head)
            return
        clause_id = len(clause_heads)
        clause_heads.append(head)
        clause_counts.append(len(body))
        for proposition in body:
            watchers.setdefault(proposition, []).append(clause_id)

    # Unary facts.
    for variable, labels in compiled.labels_by_variable.items():
        for label_name in labels:
            for node in nodes:
                if not structure.unary_holds(label_name, node):
                    facts.append(proposition_of[(variable, node)])
    if pinned:
        for variable, pin in pinned.items():
            if variable not in compiled.variable_index:
                raise ValueError(f"pinned variable {variable!r} not in the query")
            for node in nodes:
                if node != pin:
                    facts.append(proposition_of[(variable, node)])

    # Binary clauses (normalized atoms; self-loops included).
    for atom in compiled.atoms:
        for v in nodes:
            body = [
                proposition_of[(atom.target, w)]
                for w in structure.axis_successors(atom.axis, v)
            ]
            add_clause(proposition_of[(atom.source, v)], body)
        for w in nodes:
            body = [
                proposition_of[(atom.source, v)]
                for v in structure.axis_predecessors(atom.axis, w)
            ]
            add_clause(proposition_of[(atom.target, w)], body)

    # Unit propagation over the Horn program.
    true_propositions: set[int] = set()
    queue = deque(facts)
    while queue:
        proposition = queue.popleft()
        if proposition in true_propositions:
            continue
        true_propositions.add(proposition)
        for clause_id in watchers.get(proposition, ()):
            clause_counts[clause_id] -= 1
            if clause_counts[clause_id] == 0:
                head = clause_heads[clause_id]
                if head not in true_propositions:
                    queue.append(head)

    # Complement: T = (Vars x A) - Remove.
    domains: Domains = {variable: set() for variable in variables}
    for (variable, node), proposition in proposition_of.items():
        if proposition not in true_propositions:
            domains[variable].add(node)
    if any(not domain for domain in domains.values()):
        return None
    return domains
