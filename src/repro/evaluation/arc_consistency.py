"""Arc consistency: the maximal arc-consistent prevaluation (Proposition 3.1).

A prevaluation Phi is *arc-consistent* iff

* for each unary atom ``P(x)`` and each ``v`` in Phi(x), ``P(v)`` holds, and
* for each binary atom ``R(x, y)``: every ``v`` in Phi(x) has a witness
  ``w`` in Phi(y) with ``R(v, w)``, and every ``w`` in Phi(y) has a witness
  ``v`` in Phi(x) with ``R(v, w)``.

Proposition 3.1 phrases the computation of the unique subset-maximal
arc-consistent prevaluation as a propositional Horn-SAT instance solvable in
time O(||A|| * |Q|).  Two implementations are provided:

* :func:`maximal_arc_consistent` -- a worklist (AC-3 style) algorithm over the
  per-variable candidate domains.  It computes exactly the same fixpoint (the
  greatest simultaneous fixpoint of the deletion rules); since the AC-4
  support-counting engine (:mod:`repro.evaluation.ac4`) became the planner
  default it serves as the first-line ablation and cross-check.
* :func:`maximal_arc_consistent_horn` -- a literal transcription of the Horn
  program from the proof (unit propagation over ``Remove(x, v)`` atoms), kept
  as an ablation baseline and as a cross-check in the tests.

Engine selection lives in :mod:`repro.evaluation.propagation` (the planner's
``propagator=`` dimension); all engines consume the shared
:class:`~repro.evaluation.compile.CompiledQuery` representation.

Both return ``None`` when no arc-consistent prevaluation exists (some variable
loses all candidates), in which case the query is unsatisfiable on the
structure.

The worklist algorithm's revise step has three interchangeable implementations
(cross-checked against each other in the tests):

* the *columnar* worklist (the default) keeps every domain in a delete-aware
  :class:`~repro.trees.index.MutableDomainView` and revises whole domains at
  once with the staircase kernels of :mod:`repro.trees.columnar` -- support
  counts for the interval axes come from cumulative membership columns in a
  few fused C-level passes, and deletions are O(1) amortized discards, so a
  revise pass never sorts and never loops per candidate;
* :func:`_revise_interval` asks the tree's pre/post interval index
  (:mod:`repro.trees.index`) whether each candidate has a witness inside
  the opposite domain -- O(1) or O(log n) per candidate against a sorted-array
  view, so one revise pass is O((|Phi(x)| + |Phi(y)|) log n).  It is the
  per-candidate ablation baseline the columnar kernels are benchmarked
  against (``columnar=False``);
* :func:`_revise_enumeration` materializes ``axis_successors`` /
  ``axis_predecessors`` per candidate and intersects -- O(n) per candidate for
  the transitive axes.  It is kept as the fallback for axes the index does not
  know and as the deepest ablation baseline (``use_index=False``).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Mapping, Optional

from ..queries.atoms import AxisAtom, LabelAtom, Variable
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis
from ..trees.columnar import (
    ancestor_counts,
    casualties,
    descendant_counts,
    threshold_casualties_by_end,
)
from ..trees.index import AxisIndex, MutableDomainView
from ..trees.structure import TreeStructure
from .compile import AxisClass, CompiledAtom, CompiledQuery, compile_query
from .domains import Domains


def maximal_arc_consistent(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    use_index: bool = True,
    columnar: bool = True,
) -> Optional[Domains]:
    """Compute the subset-maximal arc-consistent prevaluation (worklist form).

    Returns the prevaluation as a dict of node sets, or ``None`` if some
    variable ends up with an empty candidate set (no arc-consistent
    prevaluation exists, hence the query is not satisfied -- Lemma 3.4's
    complement).

    Runs on the compile-once representation (:mod:`repro.evaluation.compile`):
    normalized atoms, precomputed adjacency, per-atom axis classification and
    the initial-domain recipe all come from the :class:`CompiledQuery` instead
    of being re-derived per call.

    ``columnar=False`` forces the per-candidate interval revise step instead
    of the bulk columnar kernels; ``use_index=False`` additionally forces the
    materializing enumeration revise step.  All three reach the same fixpoint
    (the deletion rules are confluent), so the flags exist only for ablation
    benchmarks and cross-checking tests.
    """
    compiled = query if isinstance(query, CompiledQuery) else compile_query(query)
    domains = compiled.initial_domains(structure, pinned)
    if any(not domain for domain in domains.values()):
        return None

    # Self-loops R(x, x) are static per-node filters: apply them once.
    if not compiled.apply_loop_filters(domains, structure):
        return None

    if use_index and columnar:
        views = {
            variable: structure.index.mutable_view(domains[variable])
            for variable in compiled.variables
        }
        if not _worklist_columnar(compiled, views, structure):
            return None
        return {variable: view.members for variable, view in views.items()}

    queue: deque[CompiledAtom] = deque(compiled.edges)
    queued: set[CompiledAtom] = set(compiled.edges)

    while queue:
        atom = queue.popleft()
        queued.discard(atom)
        changed_variables = _revise(atom, domains, structure, use_index)
        for variable in changed_variables:
            if not domains[variable]:
                return None
            for neighbour_atom in compiled.atoms_of(variable):
                if neighbour_atom not in queued:
                    queue.append(neighbour_atom)
                    queued.add(neighbour_atom)
    return domains


def bulk_revise_sweep(
    compiled: CompiledQuery,
    domains: Domains,
    structure: TreeStructure,
    columnar: bool = True,
) -> bool:
    """One bulk interval-revise pass over every edge (no worklist, no repeats).

    This is the opening move of the ``hybrid`` propagator
    (:func:`repro.evaluation.ac4.hybrid_fixpoint`): on fast-converging queries
    (pure ``Child+`` chains) a single pass of AC-3's bulk scans removes the
    bulk of the dead candidates far cheaper than per-candidate support
    bookkeeping, and whatever it leaves behind is finished off by the
    deletion-driven AC-4 engine.  Deleting only unsupported candidates keeps
    the fixpoint unchanged (the deletion rules are confluent).

    Mutates ``domains`` in place; returns ``False`` iff some domain empties.
    With ``columnar=True`` the pass runs the staircase kernels over fresh
    mutable views and writes the surviving member sets back; the hybrid
    propagator avoids even that round trip by calling
    :func:`bulk_revise_views` on views it keeps.
    """
    if columnar:
        views = {
            variable: structure.index.mutable_view(domains[variable])
            for variable in compiled.variables
        }
        alive = bulk_revise_views(compiled, views, structure)
        for variable, view in views.items():
            domains[variable] = view.members
        return alive
    for atom in compiled.edges:
        for variable in _revise(atom, domains, structure):
            if not domains[variable]:
                return False
    return True


def bulk_revise_views(
    compiled: CompiledQuery,
    views: Mapping[Variable, MutableDomainView],
    structure: TreeStructure,
) -> bool:
    """One columnar revise pass over every edge, mutating the views in place.

    Returns ``False`` iff some view empties.  The views stay valid (and
    maintained) either way, so the hybrid propagator hands them straight to
    the AC-4 engine without rebuilding.
    """
    index = structure.index
    for atom in compiled.edges:
        for variable in _revise_columnar(atom, views, index, structure):
            if not views[variable].members:
                return False
    return True


# ---------------------------------------------------------------------------
# Columnar worklist: staircase kernels over maintained mutable views.
# ---------------------------------------------------------------------------


def _worklist_columnar(
    compiled: CompiledQuery,
    views: Mapping[Variable, MutableDomainView],
    structure: TreeStructure,
) -> bool:
    """Run the worklist to fixpoint over mutable views; False iff some empties.

    The per-candidate worklist re-sorts both domains into fresh
    :class:`~repro.trees.index.DomainView` snapshots on every revise of every
    atom; over a long-converging query that sorting alone dominates.  Here the
    domains *live* in delete-aware views -- kept sorted by construction, with
    bulk kernels producing the exact casualty list of each revise -- so total
    deletion work is bounded by the total number of deletions and each pass
    costs a handful of C-level column sweeps.
    """
    index = structure.index
    queue: deque[CompiledAtom] = deque(compiled.edges)
    queued: set[CompiledAtom] = set(compiled.edges)
    while queue:
        atom = queue.popleft()
        queued.discard(atom)
        for variable in _revise_columnar(atom, views, index, structure):
            if not views[variable].members:
                return False
            for neighbour_atom in compiled.atoms_of(variable):
                if neighbour_atom not in queued:
                    queue.append(neighbour_atom)
                    queued.add(neighbour_atom)
    return True


def _revise_columnar(
    atom: CompiledAtom,
    views: Mapping[Variable, MutableDomainView],
    index: AxisIndex,
    structure: TreeStructure,
) -> list[Variable]:
    """Columnar revise of one atom: discard all unsupported candidates at once.

    Returns the variables whose domains shrank.  (When used by
    :func:`bulk_revise_views` the returned variables' views may be consulted
    directly; the worklist uses the names to re-enqueue neighbours.)
    """
    changed: list[Variable] = []
    source_view = views[atom.source]
    target_view = views[atom.target]

    if atom.axis_class is AxisClass.ENUMERATION:
        # Axes outside the index vocabulary (none after normalization, but the
        # engine stays total): materialize the relation per candidate.
        dead = [
            u
            for u in source_view.array
            if not target_view.members.intersection(structure.axis_successors(atom.axis, u))
        ]
        if dead:
            for node in dead:
                source_view.discard(node)
            changed.append(atom.source)
            if not source_view.members:
                return changed
        dead = [
            w
            for w in target_view.array
            if not source_view.members.intersection(structure.axis_predecessors(atom.axis, w))
        ]
        if dead:
            for node in dead:
                target_view.discard(node)
            changed.append(atom.target)
        return changed

    dead = _unsupported_forward(atom.axis, source_view, target_view, index, structure)
    if dead:
        discard = source_view.discard
        for node in dead:
            discard(node)
        changed.append(atom.source)
        if not source_view.members:
            return changed

    dead = _unsupported_backward(atom.axis, target_view, source_view, index, structure)
    if dead:
        discard = target_view.discard
        for node in dead:
            discard(node)
        changed.append(atom.target)
    return changed


def _unsupported_forward(
    axis: Axis,
    watched: MutableDomainView,
    support: MutableDomainView,
    index: AxisIndex,
    structure: TreeStructure,
) -> list[int]:
    """Watched candidates ``u`` with no ``v`` in the support: ``axis(u, v)``."""
    candidates = watched.array
    if not candidates:
        return []
    support_array = support.array
    if not support_array:
        return list(candidates)
    if axis is Axis.CHILD_PLUS or axis is Axis.CHILD_STAR:
        counts = descendant_counts(
            candidates, index.subtree_end_plus1, support.cum_pre, axis is Axis.CHILD_STAR
        )
        return casualties(candidates, counts)
    if axis is Axis.FOLLOWING:
        # Supported iff some support node opens after u's subtree closes.
        return threshold_casualties_by_end(candidates, index.subtree_end, support_array[-1])
    if axis is Axis.DOCUMENT_ORDER:
        # Supported iff max(support) > u: the casualties are a suffix slice.
        return list(candidates[bisect_left(candidates, support_array[-1]) :])
    # Local and sibling-threshold axes: per-candidate O(1) witness tests
    # against the support view's aggregates (already bulk-built and cached).
    has_successor_in = index.has_successor_in
    return [u for u in candidates if not has_successor_in(axis, u, support)]


def _unsupported_backward(
    axis: Axis,
    watched: MutableDomainView,
    support: MutableDomainView,
    index: AxisIndex,
    structure: TreeStructure,
) -> list[int]:
    """Watched candidates ``w`` with no ``u`` in the support: ``axis(u, w)``."""
    candidates = watched.array
    if not candidates:
        return []
    support_array = support.array
    if not support_array:
        return list(candidates)
    if axis is Axis.CHILD_PLUS or axis is Axis.CHILD_STAR:
        include_self = axis is Axis.CHILD_STAR
        counts = ancestor_counts(
            candidates,
            support.cum_pre,
            support.cum_end,
            support.live_mask if include_self else None,
        )
        return casualties(candidates, counts)
    if axis is Axis.FOLLOWING:
        # Supported iff some support subtree closes before w opens: the
        # casualties are the prefix w <= min(subtree_end over support).
        return list(candidates[: bisect_right(candidates, support.min_end)])
    if axis is Axis.DOCUMENT_ORDER:
        return list(candidates[: bisect_right(candidates, support_array[0])])
    has_predecessor_in = index.has_predecessor_in
    return [w for w in candidates if not has_predecessor_in(axis, w, support)]


def _revise(
    atom: CompiledAtom,
    domains: Domains,
    structure: TreeStructure,
    use_index: bool = True,
) -> list[Variable]:
    """Remove unsupported candidates for both endpoints of ``atom``.

    Dispatches on the compile-time axis classification: interval/local axes go
    through the index revise step, enumeration-class axes through the
    materializing one.  Returns the variables whose domains shrank.
    """
    if use_index and atom.axis_class is not AxisClass.ENUMERATION:
        return _revise_interval(atom, domains, structure)
    return _revise_enumeration(atom, domains, structure)


def _revise_interval(
    atom: CompiledAtom, domains: Domains, structure: TreeStructure
) -> list[Variable]:
    """Interval-index revise: witness tests against sorted-array domain views.

    Local axes (``Child``, ``NextSibling``, ``SuccPre``, ...) are answered by
    direct array lookups, interval axes (``Child+``, ``Child*``, ``Following``,
    ``NextSibling+``, ...) by bisection and per-view aggregates -- never by
    enumerating the relation.
    """
    changed: list[Variable] = []
    index = structure.index
    source_domain = domains[atom.source]
    target_domain = domains[atom.target]

    # Forward direction: every v in Phi(source) needs a witness in Phi(target).
    target_view = index.view(target_domain)
    keep_source = {
        v
        for v in source_domain
        if index.has_successor_in(atom.axis, v, target_view)
    }
    if keep_source != source_domain:
        domains[atom.source] = keep_source
        changed.append(atom.source)

    # Backward direction: every w in Phi(target) needs a witness in Phi(source).
    source_view = index.view(domains[atom.source])
    keep_target = {
        w
        for w in target_domain
        if index.has_predecessor_in(atom.axis, w, source_view)
    }
    if keep_target != target_domain:
        domains[atom.target] = keep_target
        changed.append(atom.target)
    return changed


def _revise_enumeration(
    atom: CompiledAtom, domains: Domains, structure: TreeStructure
) -> list[Variable]:
    """Enumeration revise: materialize the relation per candidate (baseline)."""
    changed: list[Variable] = []
    source_domain = domains[atom.source]
    target_domain = domains[atom.target]

    # Forward direction: every v in Phi(source) needs a witness in Phi(target).
    keep_source = set()
    for v in source_domain:
        successors = structure.axis_successors(atom.axis, v)
        if target_domain.intersection(successors):
            keep_source.add(v)
    if keep_source != source_domain:
        domains[atom.source] = keep_source
        changed.append(atom.source)

    # Backward direction: every w in Phi(target) needs a witness in Phi(source).
    source_domain = domains[atom.source]
    keep_target = set()
    for w in target_domain:
        predecessors = structure.axis_predecessors(atom.axis, w)
        if any(v in source_domain for v in predecessors):
            keep_target.add(w)
    if keep_target != target_domain:
        domains[atom.target] = keep_target
        changed.append(atom.target)
    return changed


def is_arc_consistent(
    query: ConjunctiveQuery, structure: TreeStructure, domains: Domains
) -> bool:
    """Check the arc-consistency conditions for a given prevaluation."""
    if any(not domain for domain in domains.values()):
        return False
    for atom in query.body:
        if isinstance(atom, LabelAtom):
            if any(
                not structure.unary_holds(atom.label, node)
                for node in domains[atom.variable]
            ):
                return False
        elif isinstance(atom, AxisAtom):
            source_domain = domains[atom.source]
            target_domain = domains[atom.target]
            for v in source_domain:
                if not any(
                    structure.axis_holds(atom.axis, v, w) for w in target_domain
                ):
                    return False
            for w in target_domain:
                if not any(
                    structure.axis_holds(atom.axis, v, w) for v in source_domain
                ):
                    return False
    return True


# ---------------------------------------------------------------------------
# Literal Horn-program implementation (Proposition 3.1), used as an ablation.
# ---------------------------------------------------------------------------


def maximal_arc_consistent_horn(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
) -> Optional[Domains]:
    """Compute the maximal arc-consistent prevaluation via the Horn program.

    The propositional atoms are ``Remove(x, v)``; the program contains

    * a fact ``Remove(x, v)`` for each unary atom ``P(x)`` and node ``v`` with
      ``not P(v)`` (and for pinned variables, each node other than the pin),
    * for each binary atom ``R(x, y)`` and node ``v``:
      ``Remove(x, v) <- AND { Remove(y, w) | R(v, w) }``,
    * for each binary atom ``R(x, y)`` and node ``w``:
      ``Remove(y, w) <- AND { Remove(x, v) | R(v, w) }``.

    Unit propagation (linear in the program size) computes the least model;
    the complement of ``Remove`` is the maximal arc-consistent prevaluation.
    """
    compiled = query if isinstance(query, CompiledQuery) else compile_query(query)
    variables = compiled.variables
    nodes = list(structure.domain())

    # Proposition index: (variable, node) -> proposition id.
    proposition_of: dict[tuple[Variable, int], int] = {}
    for variable in variables:
        for node in nodes:
            proposition_of[(variable, node)] = len(proposition_of)

    facts: list[int] = []
    # clauses: body size countdown + head; body_of maps proposition -> clause ids.
    clause_heads: list[int] = []
    clause_counts: list[int] = []
    watchers: dict[int, list[int]] = {}

    def add_clause(head: int, body: list[int]) -> None:
        if not body:
            facts.append(head)
            return
        clause_id = len(clause_heads)
        clause_heads.append(head)
        clause_counts.append(len(body))
        for proposition in body:
            watchers.setdefault(proposition, []).append(clause_id)

    # Unary facts.
    for variable, labels in compiled.labels_by_variable.items():
        for label_name in labels:
            for node in nodes:
                if not structure.unary_holds(label_name, node):
                    facts.append(proposition_of[(variable, node)])
    if pinned:
        for variable, pin in pinned.items():
            if variable not in compiled.variable_index:
                raise ValueError(f"pinned variable {variable!r} not in the query")
            for node in nodes:
                if node != pin:
                    facts.append(proposition_of[(variable, node)])

    # Binary clauses (normalized atoms; self-loops included).
    for atom in compiled.atoms:
        for v in nodes:
            body = [
                proposition_of[(atom.target, w)]
                for w in structure.axis_successors(atom.axis, v)
            ]
            add_clause(proposition_of[(atom.source, v)], body)
        for w in nodes:
            body = [
                proposition_of[(atom.source, v)]
                for v in structure.axis_predecessors(atom.axis, w)
            ]
            add_clause(proposition_of[(atom.target, w)], body)

    # Unit propagation over the Horn program.
    true_propositions: set[int] = set()
    queue = deque(facts)
    while queue:
        proposition = queue.popleft()
        if proposition in true_propositions:
            continue
        true_propositions.add(proposition)
        for clause_id in watchers.get(proposition, ()):
            clause_counts[clause_id] -= 1
            if clause_counts[clause_id] == 0:
                head = clause_heads[clause_id]
                if head not in true_propositions:
                    queue.append(head)

    # Complement: T = (Vars x A) - Remove.
    domains: Domains = {variable: set() for variable in variables}
    for (variable, node), proposition in proposition_of.items():
        if proposition not in true_propositions:
            domains[variable].add(node)
    if any(not domain for domain in domains.values()):
        return None
    return domains
