"""The generic backtracking evaluator (the exponential baseline).

This evaluator works for every conjunctive query (cyclic or not, any axes) and
serves three purposes in the reproduction:

* it is the *baseline* against which the polynomial-time algorithms are
  compared (Table I benchmarks: the tractable side scales, the NP-hard side
  blows up),
* it is the ground truth for correctness tests of the faster evaluators on
  small instances,
* with ``count_solutions`` / ``iter_solutions`` it powers answer enumeration
  for arbitrary queries.

The search uses arc consistency as preprocessing, a smallest-domain-first
variable order restricted to variables connected to already-assigned ones,
consistency checks against already-assigned neighbours, and *index-based
forward checking*: a freshly assigned node must still have an axis witness
inside the (static) candidate domain of every unassigned neighbour, a
necessary condition tested in O(log n) against the domain's sorted-array view
(:mod:`repro.trees.index`) before the subtree of the search is entered.
The worst case remains exponential -- necessarily so, by Section 5.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from ..queries.atoms import AxisAtom, Variable
from ..queries.query import ConjunctiveQuery
from ..trees.structure import TreeStructure
from .arc_consistency import maximal_arc_consistent
from .domains import Valuation, domain_views, valuation_satisfies


class SearchStatistics:
    """Mutable counters describing one backtracking run (used by benchmarks)."""

    def __init__(self) -> None:
        self.nodes_expanded = 0
        self.backtracks = 0
        self.forward_prunes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchStatistics(nodes={self.nodes_expanded}, "
            f"backtracks={self.backtracks}, forward_prunes={self.forward_prunes})"
        )


def iter_solutions(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    use_arc_consistency: bool = True,
    statistics: Optional[SearchStatistics] = None,
) -> Iterator[Valuation]:
    """Enumerate all satisfying valuations by backtracking search."""
    variables = query.variables()
    if not variables:
        yield {}
        return

    if use_arc_consistency:
        domains = maximal_arc_consistent(query, structure, pinned)
        if domains is None:
            return
    else:
        from .domains import initial_domains

        domains = initial_domains(query, structure, pinned)
        if any(not domain for domain in domains.values()):
            return

    atoms_of: dict[Variable, list[AxisAtom]] = {v: [] for v in variables}
    for atom in query.axis_atoms():
        atoms_of[atom.source].append(atom)
        if atom.target != atom.source:
            atoms_of[atom.target].append(atom)

    stats = statistics if statistics is not None else SearchStatistics()

    # Sorted-array views of the (static) domains, for forward witness checks.
    index = structure.index
    views = domain_views(structure, domains)

    def select_variable(assignment: Valuation) -> Variable:
        unassigned = [v for v in variables if v not in assignment]
        connected = [
            v
            for v in unassigned
            if any(
                (atom.source in assignment or atom.target in assignment)
                for atom in atoms_of[v]
            )
        ]
        pool = connected if connected else unassigned
        return min(pool, key=lambda v: len(domains[v]))

    def consistent(variable: Variable, node: int, assignment: Valuation) -> bool:
        for atom in atoms_of[variable]:
            source = node if atom.source == variable else assignment.get(atom.source)
            target = node if atom.target == variable else assignment.get(atom.target)
            if source is None or target is None:
                continue
            if not structure.axis_holds(atom.axis, source, target):
                return False
        return True

    def forward_check(variable: Variable, node: int, assignment: Valuation) -> bool:
        """A necessary condition: witnesses must survive in unassigned domains."""
        for atom in atoms_of[variable]:
            if atom.source == atom.target:
                continue
            if atom.source == variable and atom.target not in assignment:
                if not index.has_successor_in(atom.axis, node, views[atom.target]):
                    return False
            elif atom.target == variable and atom.source not in assignment:
                if not index.has_predecessor_in(atom.axis, node, views[atom.source]):
                    return False
        return True

    def search(assignment: Valuation) -> Iterator[Valuation]:
        if len(assignment) == len(variables):
            yield dict(assignment)
            return
        variable = select_variable(assignment)
        for node in sorted(domains[variable]):
            stats.nodes_expanded += 1
            if not consistent(variable, node, assignment):
                stats.backtracks += 1
                continue
            if not forward_check(variable, node, assignment):
                stats.forward_prunes += 1
                continue
            assignment[variable] = node
            yield from search(assignment)
            del assignment[variable]

    yield from search({})


def boolean_query_holds(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    use_arc_consistency: bool = True,
    statistics: Optional[SearchStatistics] = None,
) -> bool:
    """Boolean evaluation: is there at least one satisfying valuation?"""
    for _ in iter_solutions(
        query, structure, pinned, use_arc_consistency, statistics
    ):
        return True
    return False


def count_solutions(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
) -> int:
    """Count all satisfying valuations (exponentially many in the worst case)."""
    return sum(1 for _ in iter_solutions(query, structure, pinned))


def find_solution(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
) -> Optional[Valuation]:
    """Return some satisfying valuation, or ``None``."""
    for solution in iter_solutions(query, structure, pinned):
        assert valuation_satisfies(query, structure, solution)
        return solution
    return None
