"""The generic backtracking evaluator (the exponential baseline).

This evaluator works for every conjunctive query (cyclic or not, any axes) and
serves three purposes in the reproduction:

* it is the *baseline* against which the polynomial-time algorithms are
  compared (Table I benchmarks: the tractable side scales, the NP-hard side
  blows up),
* it is the ground truth for correctness tests of the faster evaluators on
  small instances,
* with ``count_solutions`` / ``iter_solutions`` it powers answer enumeration
  for arbitrary queries.

The search uses arc consistency as preprocessing (through the pluggable
``propagator=`` engine, AC-4 support counting by default), a
smallest-domain-first variable order restricted to variables connected to
already-assigned ones, consistency checks against already-assigned neighbours,
and *index-based forward checking*: a freshly assigned node must still have an
axis witness inside the (static) candidate domain of every unassigned
neighbour, a necessary condition tested in O(log n) against the domain's
sorted-array view (:mod:`repro.trees.index`) before the subtree of the search
is entered.  The views are the ones the propagation engine already maintains
-- AC-4 hands its incremental views over at the fixpoint instead of having
them rebuilt.  Candidates are tried in ascending node order, so the solution
sequence is deterministic.  The worst case remains exponential -- necessarily
so, by Section 5.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from ..queries.atoms import Variable
from ..queries.query import ConjunctiveQuery
from ..trees.structure import TreeStructure
from .compile import compile_query
from .domains import Valuation, valuation_satisfies
from .propagation import DEFAULT_PROPAGATOR, PropagationResult, PropagatorLike, propagate


class SearchStatistics:
    """Mutable counters describing one backtracking run (used by benchmarks)."""

    def __init__(self) -> None:
        self.nodes_expanded = 0
        self.backtracks = 0
        self.forward_prunes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchStatistics(nodes={self.nodes_expanded}, "
            f"backtracks={self.backtracks}, forward_prunes={self.forward_prunes})"
        )


def iter_solutions(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    use_arc_consistency: bool = True,
    statistics: Optional[SearchStatistics] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> Iterator[Valuation]:
    """Enumerate all satisfying valuations by backtracking search."""
    compiled = compile_query(query)
    variables = compiled.variables
    if not variables:
        yield {}
        return

    if use_arc_consistency:
        result = propagate(query, structure, pinned, propagator)
        if result is None:
            return
    else:
        domains = compiled.initial_domains(structure, pinned)
        if any(not domain for domain in domains.values()):
            return
        result = PropagationResult(structure, domains)

    domains = result.domains
    # Sorted-array views of the (static) domains, for forward witness checks
    # and deterministic candidate order; maintained views when AC-4 ran.
    views = result.views
    index = structure.index
    loops = compiled.loops

    stats = statistics if statistics is not None else SearchStatistics()

    def select_variable(assignment: Valuation) -> Variable:
        unassigned = [v for v in variables if v not in assignment]
        connected = [
            v
            for v in unassigned
            if any(
                (atom.source in assignment or atom.target in assignment)
                for atom in compiled.atoms_of(v)
            )
        ]
        pool = connected if connected else unassigned
        return min(pool, key=lambda v: len(domains[v]))

    def consistent(variable: Variable, node: int, assignment: Valuation) -> bool:
        for atom in compiled.atoms_of(variable):
            source = node if atom.source == variable else assignment.get(atom.source)
            target = node if atom.target == variable else assignment.get(atom.target)
            if source is None or target is None:
                continue
            if not index.holds(atom.axis, source, target):
                return False
        for atom in loops:
            if atom.source == variable and not index.holds(atom.axis, node, node):
                return False
        return True

    def forward_check(variable: Variable, node: int, assignment: Valuation) -> bool:
        """A necessary condition: witnesses must survive in unassigned domains."""
        for atom in compiled.atoms_of(variable):
            if atom.source == variable and atom.target not in assignment:
                if not index.has_successor_in(atom.axis, node, views[atom.target]):
                    return False
            elif atom.target == variable and atom.source not in assignment:
                if not index.has_predecessor_in(atom.axis, node, views[atom.source]):
                    return False
        return True

    def search(assignment: Valuation) -> Iterator[Valuation]:
        if len(assignment) == len(variables):
            yield dict(assignment)
            return
        variable = select_variable(assignment)
        for node in views[variable].array:
            stats.nodes_expanded += 1
            if not consistent(variable, node, assignment):
                stats.backtracks += 1
                continue
            if not forward_check(variable, node, assignment):
                stats.forward_prunes += 1
                continue
            assignment[variable] = node
            yield from search(assignment)
            del assignment[variable]

    yield from search({})


def boolean_query_holds(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    use_arc_consistency: bool = True,
    statistics: Optional[SearchStatistics] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> bool:
    """Boolean evaluation: is there at least one satisfying valuation?"""
    for _ in iter_solutions(
        query, structure, pinned, use_arc_consistency, statistics, propagator
    ):
        return True
    return False


def count_solutions(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> int:
    """Count all satisfying valuations (exponentially many in the worst case)."""
    return sum(1 for _ in iter_solutions(query, structure, pinned, propagator=propagator))


def find_solution(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> Optional[Valuation]:
    """Return some satisfying valuation, or ``None``."""
    for solution in iter_solutions(query, structure, pinned, propagator=propagator):
        assert valuation_satisfies(query, structure, solution)
        return solution
    return None
