"""Compile-once query representation shared by every evaluation engine.

Every evaluator used to re-derive the same facts about a query on every call:
``axis_atoms()`` filtered the body, ``atoms_of``/adjacency maps were rebuilt by
hand in :mod:`arc_consistency`, :mod:`acyclic` and :mod:`backtracking`, and the
initial-domain computation re-walked the body per evaluation.  This module
factors all of that into a single :class:`CompiledQuery` produced (and cached)
by :func:`compile_query`:

* **variable numbering** -- ``variables`` in first-occurrence order plus a
  ``variable_index`` mapping, so engines can use dense arrays when they want;
* **atom normalization** -- inverse axes (``Parent``, ``Ancestor``,
  ``Preceding``, ...) are rewritten to their forward counterpart with the
  endpoints swapped (``Parent(x, y)`` denotes the same constraint as
  ``Child(y, x)``), and duplicate constraints are dropped, so engines only ever
  see the forward axis vocabulary;
* **axis classification** -- each atom is tagged :class:`AxisClass` ``INTERVAL``
  (answerable by bisection/aggregates over pre/post ranks), ``LOCAL``
  (answerable by direct array lookups) or ``ENUMERATION`` (requires
  materializing the relation), which replaces the try/except dispatch the AC-3
  revise step used;
* **adjacency** -- per-variable tuples of the (non-loop) atoms touching the
  variable, plus the self-loop atoms separately (a self-loop is a static node
  filter, not a propagation edge);
* **initial-domain recipe** -- the per-variable unary relation names, so
  :meth:`CompiledQuery.initial_domains` builds the starting prevaluation
  without re-scanning the body.

Compilation depends only on the query (never on the structure), so
:func:`compile_query` memoizes on the (hashable, immutable)
:class:`~repro.queries.query.ConjunctiveQuery` itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property, lru_cache
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from ..decomposition.decompose import TreeDecomposition

from ..queries.atoms import AxisAtom, LabelAtom, Variable
from ..queries.query import ConjunctiveQuery
from ..trees.axes import INVERSE, Axis
from ..trees.structure import TreeStructure
from .domains import Domains


class AxisClass(str, Enum):
    """How the interval index can answer witness queries for an axis."""

    INTERVAL = "interval"
    LOCAL = "local"
    ENUMERATION = "enumeration"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Axes answered by bisection / order statistics over pre/post rank arrays.
INTERVAL_AXES: frozenset[Axis] = frozenset(
    {
        Axis.CHILD_PLUS,
        Axis.CHILD_STAR,
        Axis.FOLLOWING,
        Axis.NEXT_SIBLING_PLUS,
        Axis.NEXT_SIBLING_STAR,
        Axis.DOCUMENT_ORDER,
    }
)

#: Axes answered by a direct local-structure array lookup (parent, sibling, ...).
LOCAL_AXES: frozenset[Axis] = frozenset(
    {Axis.CHILD, Axis.NEXT_SIBLING, Axis.SUCC_PRE, Axis.SELF}
)

#: Inverse axes normalised away during compilation (argument swap).
_REVERSED_AXES: frozenset[Axis] = frozenset(
    {
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.PREVIOUS_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.PRECEDING,
    }
)


def classify_axis(axis: Axis) -> AxisClass:
    """The index's answer strategy for ``axis`` (after normalization)."""
    if axis in INTERVAL_AXES:
        return AxisClass.INTERVAL
    if axis in LOCAL_AXES:
        return AxisClass.LOCAL
    return AxisClass.ENUMERATION


@dataclass(frozen=True)
class CompiledAtom:
    """A normalized binary atom: forward axis, classified, original kept."""

    axis: Axis
    source: Variable
    target: Variable
    axis_class: AxisClass
    original: AxisAtom

    @property
    def is_loop(self) -> bool:
        return self.source == self.target

    def other(self, variable: Variable) -> Variable:
        """The endpoint opposite to ``variable`` (itself for self-loops)."""
        return self.target if variable == self.source else self.source

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.axis.value}({self.source}, {self.target})"


def normalize_atom(atom: AxisAtom) -> CompiledAtom:
    """Rewrite an atom over an inverse axis to the forward axis, endpoints swapped."""
    axis, source, target = atom.axis, atom.source, atom.target
    if axis in _REVERSED_AXES:
        axis, source, target = INVERSE[axis], target, source
    return CompiledAtom(axis, source, target, classify_axis(axis), atom)


@dataclass(frozen=True, eq=False)
class CompiledQuery:
    """The compile-once representation every evaluation engine consumes.

    ``atoms`` holds every distinct normalized binary constraint; ``edges`` the
    non-loop subset (the propagation graph), ``loops`` the self-loop subset
    (static per-node filters).  ``adjacency`` maps each variable to the edges
    touching it, in body order.
    """

    query: ConjunctiveQuery
    variables: tuple[Variable, ...]
    variable_index: Mapping[Variable, int]
    atoms: tuple[CompiledAtom, ...]
    edges: tuple[CompiledAtom, ...]
    loops: tuple[CompiledAtom, ...]
    adjacency: Mapping[Variable, tuple[CompiledAtom, ...]]
    labels_by_variable: Mapping[Variable, tuple[str, ...]]
    #: Is the (deduplicated, normalized) edge multigraph a forest?  Computed
    #: once at compile time; distinct parallel constraints between one
    #: variable pair count as a cycle, self-loops live in ``loops`` (static
    #: filters) and do not.  On forests the arc-consistent fixpoint is
    #: globally consistent, which the planner's monadic fast path exploits.
    shadow_is_forest: bool

    # -- initial-domain recipe -------------------------------------------------

    def initial_domains(
        self,
        structure: TreeStructure,
        pinned: Optional[Mapping[Variable, int]] = None,
    ) -> Domains:
        """Per-variable candidate node sets before propagation.

        Equivalent to :func:`repro.evaluation.domains.initial_domains`, but
        driven by the precomputed per-variable label lists instead of a body
        scan.  ``pinned`` restricts the given variables to a single node each
        (the singleton-relation reduction of k-ary answering to Boolean
        evaluation).
        """
        all_nodes = structure.domain()
        domains: Domains = {}
        for variable in self.variables:
            labels = self.labels_by_variable.get(variable, ())
            if labels:
                # unary_member_set is memoized on the structure, so resident
                # documents (the serving layer) hand out their label sets
                # without re-materializing them per evaluation.
                candidates = set(structure.unary_member_set(labels[0]))
                for label in labels[1:]:
                    candidates &= structure.unary_member_set(label)
            else:
                candidates = set(all_nodes)
            domains[variable] = candidates
        if pinned:
            for variable, node in pinned.items():
                if variable not in domains:
                    raise ValueError(f"pinned variable {variable!r} not in the query")
                domains[variable] &= {node}
        return domains

    def apply_loop_filters(self, domains: Domains, structure: TreeStructure) -> bool:
        """Apply the self-loop atoms ``R(x, x)`` as static per-node filters.

        A self-loop constrains each candidate in isolation (``R(v, v)`` either
        holds or not, independently of every other domain), so it is applied
        once up front rather than propagated.  Mutates ``domains`` in place;
        returns ``False`` iff some domain empties (no arc-consistent
        prevaluation exists).  Shared by the AC-3 and AC-4 engines so their
        fixpoints cannot diverge on loop semantics.
        """
        for loop in self.loops:
            domain = domains[loop.source]
            keep = {v for v in domain if structure.axis_holds(loop.axis, v, v)}
            if not keep:
                return False
            domains[loop.source] = keep
        return True

    # -- structural decomposition ----------------------------------------------

    @cached_property
    def decomposition(self) -> "TreeDecomposition":
        """The query's tree decomposition (lazy, cached on the compiled form).

        Computed from the normalized constraint graph on first access and then
        resident for the lifetime of the compiled artifact -- the serving
        layer's query cache holds these, so a decomposition is searched once
        per distinct (alpha-equivalence class of) query, not per request.
        ``decomposition.width`` is what the planner's engine routing consults.
        """
        from ..decomposition.decompose import decompose

        return decompose(self)

    # -- convenience -----------------------------------------------------------

    def atoms_of(self, variable: Variable) -> tuple[CompiledAtom, ...]:
        """The non-loop atoms touching ``variable`` (the propagation edges)."""
        return self.adjacency.get(variable, ())

    @property
    def has_enumeration_atoms(self) -> bool:
        return any(atom.axis_class is AxisClass.ENUMERATION for atom in self.atoms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledQuery(variables={len(self.variables)}, "
            f"edges={len(self.edges)}, loops={len(self.loops)})"
        )


@lru_cache(maxsize=1024)
def compile_query(query: ConjunctiveQuery) -> CompiledQuery:
    """Compile (and memoize) the shared evaluation-ready form of ``query``.

    Safe to cache aggressively: queries are immutable and hashable, and the
    compiled form depends on nothing but the query.
    """
    variables = query.variables()
    variable_index = {variable: i for i, variable in enumerate(variables)}

    seen: dict[tuple[Axis, Variable, Variable], CompiledAtom] = {}
    for atom in query.body:
        if not isinstance(atom, AxisAtom):
            continue
        compiled = normalize_atom(atom)
        seen.setdefault((compiled.axis, compiled.source, compiled.target), compiled)
    atoms = tuple(seen.values())
    edges = tuple(atom for atom in atoms if not atom.is_loop)
    loops = tuple(atom for atom in atoms if atom.is_loop)

    adjacency: dict[Variable, list[CompiledAtom]] = {v: [] for v in variables}
    for atom in edges:
        adjacency[atom.source].append(atom)
        adjacency[atom.target].append(atom)

    labels: dict[Variable, list[str]] = {}
    for atom in query.body:
        if isinstance(atom, LabelAtom):
            bucket = labels.setdefault(atom.variable, [])
            if atom.label not in bucket:
                bucket.append(atom.label)

    # Union-find over the deduplicated edges: a forest iff no edge joins two
    # already-connected variables (which also catches parallel constraints).
    parent: dict[Variable, Variable] = {v: v for v in variables}

    def find(variable: Variable) -> Variable:
        while parent[variable] != variable:
            parent[variable] = parent[parent[variable]]
            variable = parent[variable]
        return variable

    shadow_is_forest = True
    for atom in edges:
        root_source, root_target = find(atom.source), find(atom.target)
        if root_source == root_target:
            shadow_is_forest = False
            break
        parent[root_source] = root_target

    return CompiledQuery(
        query=query,
        variables=variables,
        variable_index=variable_index,
        atoms=atoms,
        edges=edges,
        loops=loops,
        adjacency={v: tuple(atoms_list) for v, atoms_list in adjacency.items()},
        labels_by_variable={v: tuple(label_list) for v, label_list in labels.items()},
        shadow_is_forest=shadow_is_forest,
    )
