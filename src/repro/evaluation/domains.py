"""Prevaluations, valuations and initial candidate domains (Section 3).

A *prevaluation* Phi assigns to each query variable a non-empty set of nodes;
a *valuation* theta assigns a single node.  The evaluation algorithms
manipulate prevaluations as ``dict[Variable, set[int]]`` ("domains") and
valuations as ``dict[Variable, int]``.

:func:`initial_domains` builds the starting prevaluation: every variable gets
all nodes satisfying its unary atoms (and, for pinned variables, exactly the
pinned node).  This corresponds to applying the first clause group of the
Horn program of Proposition 3.1.

Alongside the mutable ``set`` form, domains have a *sorted-array companion
representation*: a :class:`~repro.trees.index.DomainView` per variable
(:func:`domain_views`), against which the tree's interval index answers
witness queries by bisection instead of relation enumeration.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..queries.atoms import LabelAtom, Variable
from ..queries.query import ConjunctiveQuery
from ..trees.index import DomainView
from ..trees.structure import TreeStructure

Domains = dict[Variable, set[int]]
Valuation = dict[Variable, int]


def initial_domains(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
) -> Domains:
    """Per-variable candidate node sets before arc consistency.

    ``pinned`` restricts the given variables to a single node each -- the
    singleton-relation trick used to reduce answer checking to Boolean
    evaluation (discussion after Theorem 3.5).

    Delegates to the compile-once recipe
    (:meth:`repro.evaluation.compile.CompiledQuery.initial_domains`) so there
    is exactly one implementation of the starting prevaluation.
    """
    from .compile import compile_query  # local import: compile depends on this module

    return compile_query(query).initial_domains(structure, pinned)


def is_total(domains: Domains) -> bool:
    """A prevaluation must assign a *non-empty* set to every variable."""
    return all(domain for domain in domains.values())


def valuation_satisfies(
    query: ConjunctiveQuery, structure: TreeStructure, valuation: Mapping[Variable, int]
) -> bool:
    """Check whether a total valuation satisfies every atom of the query."""
    from ..queries.atoms import AxisAtom  # local import to keep module load light

    for atom in query.body:
        if isinstance(atom, LabelAtom):
            if not structure.unary_holds(atom.label, valuation[atom.variable]):
                return False
        elif isinstance(atom, AxisAtom):
            if not structure.axis_holds(
                atom.axis, valuation[atom.source], valuation[atom.target]
            ):
                return False
    return True


def copy_domains(domains: Domains) -> Domains:
    return {variable: set(nodes) for variable, nodes in domains.items()}


def domain_views(structure: TreeStructure, domains: Domains) -> dict[Variable, DomainView]:
    """Sorted-array companion views of every domain (one per variable).

    The views are frozen snapshots: they stay valid for as long as the
    underlying sets are not mutated.  The evaluation pipeline itself now
    carries *maintained* delete-aware views through propagation
    (:class:`~repro.trees.index.MutableDomainView`, handed over by
    :class:`~repro.evaluation.propagation.PropagationResult`); this helper
    remains for consumers that have a plain prevaluation in hand.
    """
    index = structure.index
    return {variable: index.view(nodes) for variable, nodes in domains.items()}
