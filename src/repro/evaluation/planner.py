"""The evaluation planner: dispatching on the dichotomy.

Given a query, the planner chooses the cheapest applicable engine:

1. **X-property evaluation** (Theorem 3.5) whenever the query's signature is
   on the tractable side of the dichotomy (Theorem 1.1),
2. **acyclic evaluation** (Yannakakis-style) whenever the query graph's shadow
   is a forest -- this covers every signature, since acyclic queries are
   tractable regardless of the axes used,
3. **decomposition evaluation** (:mod:`repro.decomposition`) for cyclic
   queries whose constraint graph has a tree decomposition of width at most
   :data:`MAX_AUTO_DECOMPOSITION_WIDTH` -- bag materialization plus
   Yannakakis semijoin passes, polynomial for bounded width even though the
   signature is NP-hard in general,
4. **backtracking search** otherwise (cyclic *and* high-width query over an
   NP-hard signature; by Section 5 no general polynomial algorithm is
   expected).  Backtracking remains selectable everywhere as the ablation
   and cross-check path.

Orthogonally to the engine choice, every path needs the subset-maximal
arc-consistent prevaluation; *how* it is computed is the second planner
dimension, ``propagator=`` (:class:`~repro.evaluation.propagation.Propagator`):
``ac4`` -- the support-counting engine over interval ranks (the default) --
with ``ac3`` (worklist) and ``horn`` (unit propagation) kept as cross-checked
ablations.

k-ary answer enumeration is reduced to Boolean evaluation with singleton
("pinned") domains, exactly as described after Theorem 3.5: checking whether a
tuple is an answer adds fresh singleton unary relations, so a k-ary query is
answered in ``O(|A|^k . ||A|| . |Q|)`` on the tractable side.
"""

from __future__ import annotations

from enum import Enum
from itertools import product
from typing import Mapping, Optional

from ..decomposition import yannakakis
from ..observability import tracing
from ..queries.apq import UnionQuery, as_union
from ..queries.graph import QueryGraph
from ..queries.query import ConjunctiveQuery
from ..trees.structure import TreeStructure
from ..trees.tree import Tree
from ..xproperty.dichotomy import is_tractable
from . import acyclic, backtracking, xprop_evaluator
from .compile import CompiledQuery, compile_query
from .domains import Valuation
from .propagation import DEFAULT_PROPAGATOR, PropagatorLike, propagate


class Engine(str, Enum):
    """Available evaluation engines."""

    AUTO = "auto"
    XPROPERTY = "xproperty"
    ACYCLIC = "acyclic"
    DECOMPOSITION = "decomposition"
    BACKTRACKING = "backtracking"
    #: The SQLite accel-table backend (:mod:`repro.backends.sqlite`): the
    #: out-of-core path.  Auto-chosen only when the document lives solely in
    #: the accel store (``choose_engine(..., accel_only=True)``, which the
    #: serving layer derives from :meth:`DocumentStore.residency`); always
    #: selectable for cross-checking.  Ignores ``propagator`` (SQLite plans
    #: the join).
    SQL = "sql"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Cyclic queries whose tree decomposition achieves at most this width are
#: routed to the decomposition engine instead of backtracking.  Width 2 covers
#: triangles, diamonds and every series-parallel constraint graph while
#: keeping bag materialization at O(n^3) worst case; wider queries would pay
#: n^(w+1) bag sizes, where first-solution backtracking is usually the better
#: gamble.  Forcing ``engine="decomposition"`` bypasses the bound.
MAX_AUTO_DECOMPOSITION_WIDTH = 2


def choose_engine(query: ConjunctiveQuery, accel_only: bool = False) -> Engine:
    """Pick the engine the planner would use for this query.

    ``accel_only`` is the document-residency signal: a document that lives
    only in the SQLite accel store (no resident ``TreeStructure``/axis index)
    can only be evaluated by the SQL backend, so residency overrides the
    query-shape dispatch.  Without it the choice depends on the query alone
    and never selects :attr:`Engine.SQL`.
    """
    if accel_only:
        return Engine.SQL
    if is_tractable(query.signature()):
        return Engine.XPROPERTY
    if QueryGraph(query).is_acyclic():
        return Engine.ACYCLIC
    if compile_query(query).decomposition.width <= MAX_AUTO_DECOMPOSITION_WIDTH:
        return Engine.DECOMPOSITION
    return Engine.BACKTRACKING


def is_satisfied(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    engine: Engine = Engine.AUTO,
    pinned: Optional[Mapping[str, int]] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
    lowering: str = "tree",
    materialize: bool = False,
) -> bool:
    """Boolean evaluation of (the existential closure of) a query.

    ``lowering`` / ``materialize`` only affect the SQL engine, where they pick
    the join-tree vs single-block translation and TEMP-table bag
    materialization; every in-memory engine ignores them.
    """
    boolean_query = query.as_boolean()
    chosen = choose_engine(boolean_query) if engine is Engine.AUTO else engine
    if chosen is Engine.SQL:
        from ..backends.sqlite import structure_is_satisfied

        return structure_is_satisfied(
            boolean_query,
            structure,
            pinned=pinned,
            lowering=lowering,
            materialize=materialize,
        )
    if chosen is Engine.XPROPERTY:
        return xprop_evaluator.boolean_query_holds(
            boolean_query, structure, pinned=pinned, propagator=propagator
        )
    if chosen is Engine.ACYCLIC:
        return acyclic.boolean_query_holds(
            boolean_query, structure, pinned=pinned, propagator=propagator
        )
    if chosen is Engine.DECOMPOSITION:
        return yannakakis.boolean_query_holds(
            boolean_query, structure, pinned=pinned, propagator=propagator
        )
    return backtracking.boolean_query_holds(
        boolean_query, structure, pinned=pinned, propagator=propagator
    )


def check_answer(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    answer: tuple[int, ...],
    engine: Engine = Engine.AUTO,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> bool:
    """Is ``answer`` (a tuple of nodes, one per head variable) in the result?

    Implements the singleton-relation reduction to Boolean evaluation.
    """
    if len(answer) != query.arity:
        raise ValueError(
            f"answer arity {len(answer)} does not match query arity {query.arity}"
        )
    pinned = dict(zip(query.head, answer))
    return is_satisfied(query, structure, engine, pinned, propagator)


def evaluate(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    engine: Engine = Engine.AUTO,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
    compiled: Optional[CompiledQuery] = None,
    lowering: str = "tree",
    materialize: bool = False,
) -> frozenset[tuple[int, ...]]:
    """Compute all answers of a k-ary query.

    Boolean queries return ``{()}`` when satisfied and the empty set otherwise.
    Monadic acyclic queries read their answers straight off the arc-consistent
    fixpoint: on forest-shaped queries the fixpoint is globally consistent
    (every surviving candidate extends to a full solution of its component --
    the same fact the acyclic enumerator rests on), so the head variable's
    domain *is* the answer set.  Queries routed (or forced) to the
    decomposition engine enumerate their answers in one join-tree traversal
    (:func:`repro.decomposition.yannakakis.evaluate_answers`), never touching
    the per-tuple Boolean reduction.  Remaining k-ary queries enumerate
    candidate head tuples from the fixpoint (a sound over-approximation of
    the answer projection) and check each tuple via the Boolean reduction.

    ``compiled`` lets callers that keep compiled artifacts resident (the
    serving layer's query cache) bypass the compile-cache lookup; it must be
    the compilation of ``query``.
    """
    if query.is_boolean:
        with tracing.span("enumerate", strategy="boolean"):
            satisfied = is_satisfied(
                query,
                structure,
                engine,
                propagator=propagator,
                lowering=lowering,
                materialize=materialize,
            )
            tracing.annotate(satisfied=satisfied)
        return frozenset({()}) if satisfied else frozenset()

    if engine is Engine.SQL:
        from ..backends.sqlite import evaluate_structure

        with tracing.span("sql_execute", engine="sql"):
            answers = evaluate_structure(
                query, structure, lowering=lowering, materialize=materialize
            )
            tracing.annotate(answers=len(answers))
        return answers
    if compiled is None:
        compiled = compile_query(query)
    chosen = choose_engine(query) if engine is Engine.AUTO else engine
    if chosen is Engine.DECOMPOSITION:
        return yannakakis.evaluate_answers(
            query, structure, propagator=propagator, compiled=compiled
        )
    result = propagate(compiled, structure, propagator=propagator)
    if result is None:
        return frozenset()
    if query.is_monadic and compiled.shadow_is_forest:
        # Global consistency of the arc-consistent fixpoint on shadow forests:
        # no per-candidate Boolean checks needed.  Forest-ness is judged on the
        # compiled (normalized, deduplicated) edges -- distinct parallel
        # constraints on one variable pair count as a cycle and never take
        # this path, while self-loops were already applied as static filters.
        with tracing.span("enumerate", strategy="fixpoint_projection"):
            answers = frozenset((node,) for node in result.sorted_domain(query.head[0]))
            tracing.annotate(answers=len(answers))
        return answers
    # Atoms connecting two head variables can be checked in O(1) per candidate
    # tuple from the tree's rank arrays, skipping the full Boolean evaluation
    # for tuples that already violate one of them.
    head_set = set(query.head)
    head_atoms = [
        atom
        for atom in compiled.atoms
        if atom.source in head_set and atom.target in head_set
    ]
    index = structure.index
    candidate_sets = [result.sorted_domain(variable) for variable in query.head]
    answers: set[tuple[int, ...]] = set()
    with tracing.span("enumerate", strategy="candidate_product"):
        # Suppress tracing inside the loop: each Boolean-reduction check
        # would otherwise add its own propagate span per candidate tuple.
        with tracing.suppress():
            for candidate in product(*candidate_sets):
                # Head variables may repeat; a repeated variable must get one
                # node.
                pinned: dict[str, int] = {}
                consistent = True
                for variable, node in zip(query.head, candidate):
                    if variable in pinned and pinned[variable] != node:
                        consistent = False
                        break
                    pinned[variable] = node
                if not consistent:
                    continue
                if not all(
                    index.holds(atom.axis, pinned[atom.source], pinned[atom.target])
                    for atom in head_atoms
                ):
                    continue
                if is_satisfied(query, structure, engine, pinned, propagator):
                    answers.add(tuple(candidate))
        tracing.annotate(answers=len(answers))
    return frozenset(answers)


def evaluate_union(
    union: UnionQuery | ConjunctiveQuery,
    structure: TreeStructure,
    engine: Engine = Engine.AUTO,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> frozenset[tuple[int, ...]]:
    """Evaluate a union of conjunctive queries (a PQ / APQ)."""
    union = as_union(union)
    answers: set[tuple[int, ...]] = set()
    for disjunct in union:
        answers.update(evaluate(disjunct, structure, engine, propagator))
    return frozenset(answers)


def evaluate_on_tree(
    query: ConjunctiveQuery | UnionQuery,
    tree: Tree,
    engine: Engine = Engine.AUTO,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> frozenset[tuple[int, ...]]:
    """Convenience wrapper evaluating directly on a tree (full Ax signature)."""
    structure = TreeStructure(tree)
    if isinstance(query, UnionQuery):
        return evaluate_union(query, structure, engine, propagator)
    return evaluate(query, structure, engine, propagator)


def satisfying_assignment(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> Optional[Valuation]:
    """Return some satisfying valuation of the query's body (or ``None``).

    Uses the X-property witness on tractable signatures and backtracking
    otherwise.
    """
    boolean_query = query.as_boolean()
    if is_tractable(boolean_query.signature()):
        witness = xprop_evaluator.witness(boolean_query, structure, propagator=propagator)
        if witness is not None:
            return witness
    return backtracking.find_solution(boolean_query, structure, propagator=propagator)
