"""The propagator dimension: one fixpoint, three interchangeable engines.

Every evaluator needs the subset-maximal arc-consistent prevaluation
(Proposition 3.1); *how* it is computed is an engineering choice the planner
now exposes as the ``propagator=`` dimension:

* :attr:`Propagator.AC4` (the default) -- the support-counting engine of
  :mod:`repro.evaluation.ac4`: counters/thresholds over pre/post interval
  ranks, deletion-driven, maintained (never rebuilt) domain views;
* :attr:`Propagator.AC3` -- the worklist engine of
  :mod:`repro.evaluation.arc_consistency` (interval-index revise steps), kept
  as the cross-checked ablation;
* :attr:`Propagator.HORN` -- the literal Horn-SAT transcription of the
  Proposition 3.1 proof, the ground-truth baseline;
* :attr:`Propagator.HYBRID` -- one bulk AC-3 revise sweep to harvest the
  cheap deletions at bulk-scan cost, then AC-4 support counting on the
  shrunken domains (closing the ROADMAP gap on fast-converging pure
  ``Child+`` chains where AC-3's set scans beat AC-4's bookkeeping).

All three compute the same fixpoint (the deletion rules are confluent); the
property tests assert it.  :func:`propagate` wraps the choice and returns a
:class:`PropagationResult` carrying both the plain domain sets and -- for
consumers that keep querying witnesses, like the backtracking forward checker
and the acyclic enumerator -- per-variable sorted-array views, which AC-4
hands over for free (its maintained views ARE the fixpoint) and the other
engines build once on demand.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Mapping, Optional, Union

from ..observability import tracing
from ..observability.metrics import REGISTRY
from ..queries.atoms import Variable
from ..queries.query import ConjunctiveQuery
from ..trees.structure import TreeStructure
from .ac4 import Views, ac4_fixpoint, hybrid_fixpoint
from .arc_consistency import maximal_arc_consistent, maximal_arc_consistent_horn
from .compile import CompiledQuery, compile_query
from .domains import Domains

PROPAGATE_SECONDS = REGISTRY.histogram(
    "cqtrees_propagate_seconds",
    "Arc-consistency fixpoint latency in seconds, by propagator.",
    ("propagator",),
)


class Propagator(str, Enum):
    """Arc-consistency engine choices (``ac4`` is the planner default)."""

    AC4 = "ac4"
    AC3 = "ac3"
    HORN = "horn"
    HYBRID = "hybrid"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Accepted anywhere a propagator is taken: the enum or its string value.
PropagatorLike = Union[Propagator, str]

DEFAULT_PROPAGATOR = Propagator.AC4


def as_propagator(value: PropagatorLike) -> Propagator:
    """Coerce ``"ac4" | "ac3" | "horn"`` (or the enum) to :class:`Propagator`."""
    if isinstance(value, Propagator):
        return value
    try:
        return Propagator(value)
    except ValueError:
        raise ValueError(
            f"unknown propagator {value!r}; expected one of "
            f"{', '.join(p.value for p in Propagator)}"
        ) from None


class PropagationResult:
    """The fixpoint, as plain sets plus (lazily) sorted-array views.

    ``domains`` maps each variable to its surviving candidate set.  ``views``
    maps each variable to a sorted-array view suitable for the index witness
    primitives; for AC-4 these are the maintained
    :class:`~repro.trees.index.MutableDomainView` objects straight out of the
    engine, for AC-3/Horn they are built once on first access.
    """

    __slots__ = ("_structure", "domains", "_views")

    def __init__(
        self,
        structure: TreeStructure,
        domains: Domains,
        views: Optional[Views] = None,
    ):
        self._structure = structure
        self.domains = domains
        self._views = views

    @property
    def views(self):
        if self._views is None:
            index = self._structure.index
            self._views = {
                variable: index.mutable_view(nodes)
                for variable, nodes in self.domains.items()
            }
        return self._views

    def sorted_domain(self, variable: Variable) -> list[int]:
        """The surviving candidates of ``variable`` in ascending node order."""
        return list(self.views[variable].array)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {variable: len(nodes) for variable, nodes in self.domains.items()}
        return f"PropagationResult({sizes})"


def propagate(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
    columnar: bool = True,
) -> Optional[PropagationResult]:
    """Compute the maximal arc-consistent prevaluation with the chosen engine.

    Returns ``None`` when no arc-consistent prevaluation exists (some domain
    empties), i.e. the query is unsatisfiable on the structure.  Accepts a
    pre-compiled query directly, so callers holding resident artifacts (the
    serving layer's query cache) skip even the compile-cache lookup.

    ``columnar=False`` forces the per-candidate ablation paths of the chosen
    engine (same fixpoint; benchmark/cross-check use only).  The Horn engine
    has no columnar dimension and ignores the flag.

    Every call lands in the per-propagator latency histogram
    (:data:`PROPAGATE_SECONDS`); inside an active trace a ``propagate`` span
    records per-variable domain sizes before and after the fixpoint -- the
    domain-shrinkage signal the cost-model roadmap item needs -- which costs
    an initial-domain materialization and is therefore trace-only.
    """
    chosen = as_propagator(propagator)
    if not tracing.is_active():
        started = time.perf_counter()
        result = _propagate(query, structure, pinned, chosen, columnar)
        PROPAGATE_SECONDS.observe(time.perf_counter() - started, propagator=chosen.value)
        return result
    with tracing.span("propagate", propagator=chosen.value):
        compiled = query if isinstance(query, CompiledQuery) else compile_query(query)
        initial = compiled.initial_domains(structure, pinned)
        tracing.annotate(
            domains_before={
                variable: len(nodes) for variable, nodes in sorted(initial.items())
            }
        )
        started = time.perf_counter()
        result = _propagate(compiled, structure, pinned, chosen, columnar)
        PROPAGATE_SECONDS.observe(time.perf_counter() - started, propagator=chosen.value)
        if result is None:
            tracing.annotate(satisfiable=False)
        else:
            tracing.annotate(
                satisfiable=True,
                domains_after={
                    variable: len(nodes) for variable, nodes in sorted(result.domains.items())
                },
            )
    return result


def _propagate(
    query: ConjunctiveQuery | CompiledQuery,
    structure: TreeStructure,
    pinned: Optional[Mapping[Variable, int]],
    chosen: Propagator,
    columnar: bool,
) -> Optional[PropagationResult]:
    if chosen is Propagator.AC4 or chosen is Propagator.HYBRID:
        fixpoint = ac4_fixpoint if chosen is Propagator.AC4 else hybrid_fixpoint
        views = fixpoint(query, structure, pinned, columnar=columnar)
        if views is None:
            return None
        domains = {variable: view.members for variable, view in views.items()}
        return PropagationResult(structure, domains, views)
    if chosen is Propagator.AC3:
        domains = maximal_arc_consistent(query, structure, pinned, columnar=columnar)
    else:
        domains = maximal_arc_consistent_horn(query, structure, pinned)
    if domains is None:
        return None
    return PropagationResult(structure, domains)
