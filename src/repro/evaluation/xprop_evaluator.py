"""The polynomial-time evaluator for X-property structures (Lemma 3.4 / Thm 3.5).

The algorithm is exactly the one of the paper:

1. compute the subset-maximal arc-consistent prevaluation Phi
   (Proposition 3.1); if none exists the query is false;
2. otherwise the *minimum valuation* -- mapping each variable to the
   ``<``-smallest node of its candidate set, where ``<`` is an order with
   respect to which all used axes have the X-property -- is guaranteed to be a
   satisfaction (Lemma 3.4), so the Boolean query is true.

For a structure/order combination *without* the X-property the minimum
valuation may fail; :func:`boolean_query_holds` exposes a ``verify`` mode that
checks the produced valuation and raises if the guarantee is violated (the
tests use it to confirm Lemma 3.4 on random trees, and to exhibit its failure
beyond the tractability frontier).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..queries.atoms import Variable
from ..queries.query import ConjunctiveQuery
from ..trees.orders import Order, minimum
from ..trees.structure import TreeStructure
from ..xproperty.dichotomy import order_for
from .compile import compile_query
from .domains import Domains, Valuation, valuation_satisfies
from .propagation import DEFAULT_PROPAGATOR, PropagatorLike, propagate


class XPropertyEvaluationError(RuntimeError):
    """Raised in ``verify`` mode when the minimum valuation is not consistent."""


def choose_order(query: ConjunctiveQuery) -> Optional[Order]:
    """Pick an order making all of the query's axes X (None if impossible)."""
    return order_for(query.signature())


def minimum_valuation(
    structure: TreeStructure, domains: Domains, order: Order
) -> Valuation:
    """The minimum valuation of a prevaluation w.r.t. an order (Lemma 3.4)."""
    return {
        variable: minimum(structure.tree, order, sorted(nodes))
        for variable, nodes in domains.items()
    }


def boolean_query_holds(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    order: Optional[Order] = None,
    pinned: Optional[Mapping[Variable, int]] = None,
    verify: bool = False,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> bool:
    """Evaluate a Boolean query using the Theorem 3.5 algorithm.

    Parameters
    ----------
    order:
        The total order to use for the minimum valuation.  When omitted it is
        chosen from the query's signature via the dichotomy (Theorem 4.1); a
        ``ValueError`` is raised if the signature is not tractable, since the
        algorithm's correctness then has no guarantee.
    pinned:
        Optional variable pinning (singleton domains), used to answer k-ary
        queries tuple by tuple.
    verify:
        When True, the minimum valuation is re-checked against the query and
        an :class:`XPropertyEvaluationError` is raised if it fails.  This is
        how the tests certify Lemma 3.4 empirically.
    """
    if order is None:
        order = choose_order(query)
        if order is None:
            raise ValueError(
                f"signature {query.signature()} is not tractable; "
                "use the backtracking evaluator instead"
            )
    result = propagate(query, structure, pinned, propagator)
    if result is None:
        return False
    if not compile_query(query).variables:
        # A query with an empty body is trivially true.
        return True
    valuation = minimum_valuation(structure, result.domains, order)
    if verify and not valuation_satisfies(query, structure, valuation):
        raise XPropertyEvaluationError(
            "minimum valuation is not a satisfaction although an arc-consistent "
            "prevaluation exists; the structure/order pair lacks the X-property"
        )
    return True


def witness(
    query: ConjunctiveQuery,
    structure: TreeStructure,
    order: Optional[Order] = None,
    pinned: Optional[Mapping[Variable, int]] = None,
    propagator: PropagatorLike = DEFAULT_PROPAGATOR,
) -> Optional[Valuation]:
    """Return a satisfying valuation (the minimum valuation) or ``None``.

    Only sound for tractable signatures; the returned valuation is always
    verified before being handed back, so a ``None`` result with a satisfiable
    query cannot happen on tractable signatures (Lemma 3.4) and the function
    degrades gracefully (returns ``None``) if misused.
    """
    if order is None:
        order = choose_order(query)
        if order is None:
            return None
    result = propagate(query, structure, pinned, propagator)
    if result is None:
        return None
    valuation = minimum_valuation(structure, result.domains, order)
    if valuation_satisfies(query, structure, valuation):
        return valuation
    return None
