"""Experiments regenerating every table and figure of the paper."""

from . import (
    figure8,
    figure9,
    polytime,
    report,
    rewriting_report,
    table1,
    table2,
    xproperty_figures,
)

__all__ = [
    "figure8",
    "figure9",
    "polytime",
    "report",
    "rewriting_report",
    "table1",
    "table2",
    "xproperty_figures",
]
