"""Experiment ``fig8``: the CQ -> APQ rewrite derivation of Figure 8.

Figure 8 traces the rewriting of the introduction's query (Figure 1)

    Q(z) <- S(x), Child+(x, y), NP(y), Child+(x, z), PP(z), Following(y, z)

into an acyclic positive query: the Following atom is first replaced via
Eq. (1), then the join lifters of Theorem 6.6 are applied bottom-up until all
disjuncts are acyclic; most disjuncts die as unsatisfiable and a small APQ
remains.  This module reruns that derivation with tracing switched on and
verifies the equivalence of input and output empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..queries.apq import UnionQuery
from ..queries.containment import equivalent_on_samples
from ..queries.query import ConjunctiveQuery
from ..rewriting.to_apq import RewriteTrace, to_apq
from ..workloads.linguistics import figure1_query


@dataclass
class Figure8Result:
    query: ConjunctiveQuery
    apq: UnionQuery
    trace: RewriteTrace
    equivalent_on_samples: bool

    def render(self, include_trace: bool = True) -> str:
        lines = [
            "Figure 8: rewriting the introduction query into an APQ",
            "",
            f"input : {self.query}",
            f"output: {len(self.apq)} acyclic disjunct(s), total size {self.apq.size()}",
        ]
        for disjunct in self.apq:
            lines.append(f"    {disjunct}")
        lines.append(
            f"empirical equivalence on random trees: {self.equivalent_on_samples}"
        )
        lines.append(f"rewrite steps recorded: {len(self.trace)}")
        if include_trace:
            lines.append("")
            lines.append(str(self.trace))
        return "\n".join(lines)


def run(samples: int = 12, tree_size: int = 14) -> Figure8Result:
    """Rerun the Figure 8 derivation."""
    query = figure1_query()
    trace = RewriteTrace()
    apq = to_apq(query, trace=trace)
    counterexample = equivalent_on_samples(
        query,
        apq,
        samples=samples,
        size=tree_size,
        alphabet=("S", "NP", "PP"),
        seed=8,
    )
    return Figure8Result(
        query=query,
        apq=apq,
        trace=trace,
        equivalent_on_samples=counterexample is None,
    )
