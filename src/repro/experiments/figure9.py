"""Experiment ``fig9`` / Theorem 7.1: succinctness of the diamond queries.

Measures, for growing ``n``:

* the size of ``D_n`` (linear in ``n``),
* the size of the APQ produced by the Section 6 rewriting (exponential in
  ``n`` -- the translation's blow-up, which Theorem 7.1 shows is unavoidable),
* a consistency check that ``D_n`` is true on all ``2^n`` structures of
  ``PS(n, p)``, the scattered-path family of Figure 9(b),
* the Example 7.8 separation: a path structure constructed via Lemma 7.3 that
  satisfies a candidate small acyclic query but not ``D_2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..evaluation.planner import evaluate_on_tree
from ..queries.parser import parse_query
from ..succinctness.blowup import (
    BlowupPoint,
    diamond_true_on_all_ps,
    measure_blowup,
    render_blowup_table,
)
from ..succinctness.diamonds import diamond_query
from ..succinctness.path_structures import lemma73_structure


@dataclass
class Figure9Result:
    blowup: list[BlowupPoint]
    diamonds_true_on_ps: dict[int, bool] = field(default_factory=dict)
    example78_separates: bool = False

    def render(self) -> str:
        lines = ["Figure 9 / Theorem 7.1: CQ -> APQ blow-up on the diamond queries", ""]
        lines.append(render_blowup_table(self.blowup))
        lines.append("")
        for n, value in sorted(self.diamonds_true_on_ps.items()):
            lines.append(f"D_{n} true on all 2^{n} structures of PS({n}, p): {value}")
        lines.append(
            "Example 7.8 separation (Lemma 7.3 structure satisfies Q but not D_2): "
            f"{self.example78_separates}"
        )
        return "\n".join(lines)


def example78() -> bool:
    """Reproduce Example 7.8: the Lemma 7.3 structure separates Q from D_2.

    ``Q`` is an acyclic query whose variable-paths never contain both ``Xp1``
    and ``Xp2``; the constructed path structure is a model of ``Q`` but not of
    ``D_2``, witnessing ``Q`` is not contained in ``D_2``.
    """
    # No variable-path of this acyclic query contains both Xp1 and Xp2, while
    # D_2 does have such a path; Lemma 7.3 then yields a separating structure.
    candidate = parse_query(
        "Q <- Y1(a), Child+(a, b), X1(b), Child+(b, c), Y2(c), "
        "Child+(c, d), X2(d), Child+(d, e), Y3(e), "
        "Child+(c, dp), Xp2(dp), Child+(dp, ep), Y3(ep), "
        "Y1(ap), Child+(ap, bp), Xp1(bp), Child+(bp, cp), Y2(cp), "
        "Child+(cp, dq), X2(dq), Child+(dq, eq), Y3(eq)"
    )
    separator = lemma73_structure(candidate, ("Xp1", "Xp2"))
    q_true = bool(evaluate_on_tree(candidate, separator))
    d2_true = bool(evaluate_on_tree(diamond_query(2), separator))
    return q_true and not d2_true


def run(max_n: int = 4, pad: int = 2, check_ps_up_to: int = 3) -> Figure9Result:
    """Run the succinctness experiment."""
    result = Figure9Result(blowup=measure_blowup(max_n))
    for n in range(1, check_ps_up_to + 1):
        result.diamonds_true_on_ps[n] = diamond_true_on_all_ps(n, pad)
    result.example78_separates = example78()
    return result
