"""Experiment ``thm3.5``: the O(||A|| * |Q|) evaluation bound, measured.

Theorem 3.5 gives an ``O(||A|| * |Q|)`` algorithm for Boolean conjunctive
queries on structures with the X-property.  This experiment measures the
evaluator's wall-clock time while scaling

* the tree size at fixed query size, and
* the query size at fixed tree size,

and reports the growth ratios; both should look (near-)linear, i.e. doubling
the input roughly doubles the time.  An ablation compares the worklist
arc-consistency implementation against the literal Horn-program implementation
of Proposition 3.1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from ..evaluation.arc_consistency import maximal_arc_consistent, maximal_arc_consistent_horn
from ..evaluation.xprop_evaluator import boolean_query_holds
from ..hardness.hard_instances import random_cyclic_query
from ..trees.axes import Axis
from ..trees.generators import random_tree
from ..trees.structure import TreeStructure


@dataclass(frozen=True)
class TimingPoint:
    parameter: int
    seconds: float


@dataclass
class PolytimeResult:
    tree_scaling: list[TimingPoint] = field(default_factory=list)
    query_scaling: list[TimingPoint] = field(default_factory=list)
    ablation_worklist: list[TimingPoint] = field(default_factory=list)
    ablation_horn: list[TimingPoint] = field(default_factory=list)

    def render(self) -> str:
        lines = ["Theorem 3.5: polynomial-time evaluation, measured", ""]
        lines.append("Tree-size scaling (fixed query, {Child+, Child*} signature):")
        lines.extend(
            f"  |A| = {point.parameter:5d}   {point.seconds * 1000:9.2f} ms"
            for point in self.tree_scaling
        )
        lines.append("Query-size scaling (fixed tree):")
        lines.extend(
            f"  |Q| = {point.parameter:5d}   {point.seconds * 1000:9.2f} ms"
            for point in self.query_scaling
        )
        lines.append("Arc-consistency ablation (worklist vs literal Horn program):")
        for worklist, horn in zip(self.ablation_worklist, self.ablation_horn):
            lines.append(
                f"  |A| = {worklist.parameter:5d}   worklist {worklist.seconds * 1000:8.2f} ms"
                f"   horn {horn.seconds * 1000:8.2f} ms"
            )
        return "\n".join(lines)


def _time(function: Callable[[], object]) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def run(
    tree_sizes: tuple[int, ...] = (100, 200, 400, 800),
    query_sizes: tuple[int, ...] = (4, 8, 16, 32),
    ablation_sizes: tuple[int, ...] = (50, 100, 200),
    seed: int = 0,
) -> PolytimeResult:
    result = PolytimeResult()
    fixed_query = random_cyclic_query(
        (Axis.CHILD_PLUS, Axis.CHILD_STAR), num_variables=8, num_extra_atoms=4, seed=seed
    )
    for size in tree_sizes:
        tree = random_tree(size, alphabet=("A", "B", "C"), seed=seed + size)
        structure = TreeStructure(tree)
        result.tree_scaling.append(
            TimingPoint(size, _time(lambda: boolean_query_holds(fixed_query, structure)))
        )

    fixed_tree = random_tree(300, alphabet=("A", "B", "C"), seed=seed + 1)
    fixed_structure = TreeStructure(fixed_tree)
    for size in query_sizes:
        query = random_cyclic_query(
            (Axis.CHILD_PLUS, Axis.CHILD_STAR),
            num_variables=size,
            num_extra_atoms=size // 2,
            seed=seed + size,
        )
        result.query_scaling.append(
            TimingPoint(
                query.size(),
                _time(lambda: boolean_query_holds(query, fixed_structure)),
            )
        )

    ablation_query = random_cyclic_query(
        (Axis.CHILD_PLUS, Axis.CHILD_STAR), num_variables=6, num_extra_atoms=3, seed=seed
    )
    for size in ablation_sizes:
        tree = random_tree(size, alphabet=("A", "B", "C"), seed=seed + 7 * size)
        structure = TreeStructure(tree)
        result.ablation_worklist.append(
            TimingPoint(size, _time(lambda: maximal_arc_consistent(ablation_query, structure)))
        )
        result.ablation_horn.append(
            TimingPoint(
                size, _time(lambda: maximal_arc_consistent_horn(ablation_query, structure))
            )
        )
    return result
