"""Assemble the full experiment report (the content behind EXPERIMENTS.md).

``python -m repro.experiments.report`` runs every experiment and prints the
combined report; ``write_report(path)`` writes it to a file.  The benchmarks
under ``benchmarks/`` time the same code paths with pytest-benchmark.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from . import figure8, figure9, polytime, rewriting_report, table1, table2, xproperty_figures


@dataclass
class FullReport:
    sections: list[tuple[str, str]]

    def render(self) -> str:
        parts: list[str] = []
        for title, body in self.sections:
            parts.append("=" * 78)
            parts.append(title)
            parts.append("=" * 78)
            parts.append(body)
            parts.append("")
        return "\n".join(parts)


def run(quick: bool = False) -> FullReport:
    """Run every experiment; ``quick=True`` trims the expensive sweeps."""
    sections: list[tuple[str, str]] = []
    sections.append(
        ("Experiment table1 -- Table I (dichotomy)", table1.run(full=not quick).render())
    )
    sections.append(("Experiment table2 -- Table II (NAND)", table2.run().render()))
    sections.append(
        (
            "Experiments fig2/fig3/thm4.1 -- X-property",
            xproperty_figures.run(num_trees=6 if quick else 12).render(),
        )
    )
    sections.append(
        ("Experiment thm3.5 -- polynomial-time evaluation", polytime.run().render())
    )
    sections.append(
        ("Experiment fig8 -- CQ -> APQ rewrite trace", figure8.run().render(include_trace=False))
    )
    sections.append(
        (
            "Experiments thm6.6/6.9/6.10/prop6.14 -- expressiveness",
            rewriting_report.run(quick=quick).render(),
        )
    )
    sections.append(
        (
            "Experiment fig9/thm7.1 -- succinctness",
            figure9.run(max_n=3 if quick else 4).render(),
        )
    )
    return FullReport(sections)


def write_report(path: str, quick: bool = False) -> None:
    report = run(quick=quick)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report.render())


if __name__ == "__main__":  # pragma: no cover - manual entry point
    quick_flag = "--quick" in sys.argv
    print(run(quick=quick_flag).render())
