"""Experiment ``thm6.x``: the expressiveness theorems, checked empirically.

* Theorem 6.6 / 6.10: every conjunctive query over Ax has an equivalent APQ --
  checked by rewriting batches of random cyclic queries per signature family
  and testing equivalence on random trees and on all small trees.
* Theorem 6.9: the printed ``Following`` join lifters are transcribed
  literally and *verified*; the verification exhibits counterexamples for four
  of them (see the lifters module docstring), which is reported here as a
  reproduction discrepancy.  The default pipeline is unaffected (it eliminates
  ``Following`` via Eq. (1)).
* Proposition 6.14: the linear-time rewriting for {Child, NextSibling}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..hardness.hard_instances import random_cyclic_query
from ..queries.containment import equivalent_on_samples, equivalent_on_trees
from ..queries.graph import is_acyclic
from ..rewriting.child_nextsibling import rewrite_child_nextsibling_apq
from ..rewriting.lifters import (
    THEOREM_66_AXES,
    find_lifter_counterexample,
    lifter,
    paper_theorem_69_lifter,
)
from ..rewriting.to_apq import to_apq
from ..trees.axes import Axis
from ..trees.generators import all_trees


@dataclass
class SignatureRewriteSummary:
    axes: tuple[Axis, ...]
    queries_rewritten: int
    all_equivalent: bool
    max_disjuncts: int
    max_blowup: float


@dataclass
class RewritingReport:
    signature_summaries: list[SignatureRewriteSummary] = field(default_factory=list)
    lifters_66_verified: int = 0
    lifters_66_failed: list[tuple[str, str]] = field(default_factory=list)
    lifters_69_failed: list[str] = field(default_factory=list)
    prop614_equivalent: bool = True

    def render(self) -> str:
        lines = ["Expressiveness (Section 6), checked empirically", ""]
        lines.append(
            f"Theorem 6.6 lifters verified: {self.lifters_66_verified} "
            f"(failures: {self.lifters_66_failed or 'none'})"
        )
        lines.append(
            "Theorem 6.9 printed lifters NOT equivalent to their phi under Eq. (1) "
            f"semantics: {self.lifters_69_failed or 'none'} (reproduction discrepancy; "
            "the pipeline uses the Theorem 6.10 route instead)"
        )
        lines.append("")
        lines.append("CQ -> APQ on random cyclic queries per signature:")
        for summary in self.signature_summaries:
            axes = ", ".join(axis.value for axis in summary.axes)
            lines.append(
                f"  {{{axes}}}: {summary.queries_rewritten} queries, "
                f"all equivalent={summary.all_equivalent}, "
                f"max disjuncts={summary.max_disjuncts}, max blow-up x{summary.max_blowup:.1f}"
            )
        lines.append("")
        lines.append(
            f"Proposition 6.14 (linear-time {{Child, NextSibling}} rewriting) equivalent "
            f"on samples: {self.prop614_equivalent}"
        )
        return "\n".join(lines)


def verify_66_lifters(tree_sizes: Sequence[int] = (5,)) -> tuple[int, list[tuple[str, str]]]:
    """Verify every Theorem 6.6 lifter on all trees up to the given sizes."""
    trees = []
    for size in tree_sizes:
        trees.extend(all_trees(size, ("A", "B")))
    verified = 0
    failed: list[tuple[str, str]] = []
    for r in sorted(THEOREM_66_AXES, key=lambda a: a.value):
        for s in sorted(THEOREM_66_AXES, key=lambda a: a.value):
            counterexample = find_lifter_counterexample(lifter(r, s), trees)
            if counterexample is None:
                verified += 1
            else:
                failed.append((r.value, s.value))
    return verified, failed


def verify_69_lifters(tree_sizes: Sequence[int] = (5,)) -> list[str]:
    """Which printed Theorem 6.9 formulas fail verification (expected: four)."""
    trees = []
    for size in tree_sizes:
        trees.extend(all_trees(size, ("A", "B")))
    failed: list[str] = []
    for r in (
        Axis.CHILD,
        Axis.NEXT_SIBLING,
        Axis.NEXT_SIBLING_PLUS,
        Axis.NEXT_SIBLING_STAR,
        Axis.FOLLOWING,
    ):
        candidate = paper_theorem_69_lifter(r)
        if find_lifter_counterexample(candidate, trees) is not None:
            failed.append(r.value)
    return failed


_SIGNATURE_FAMILIES: tuple[tuple[Axis, ...], ...] = (
    (Axis.CHILD, Axis.CHILD_PLUS),
    (Axis.CHILD_STAR, Axis.NEXT_SIBLING_PLUS),
    (Axis.CHILD_PLUS, Axis.NEXT_SIBLING),
    (Axis.CHILD, Axis.FOLLOWING),
)


def rewrite_random_queries(
    axes: tuple[Axis, ...],
    num_queries: int = 4,
    num_variables: int = 4,
    seed: int = 0,
) -> SignatureRewriteSummary:
    """Rewrite random cyclic queries over ``axes`` and check equivalence."""
    all_equivalent = True
    max_disjuncts = 0
    max_blowup = 0.0
    for index in range(num_queries):
        query = random_cyclic_query(
            axes,
            num_variables=num_variables,
            num_extra_atoms=1,
            alphabet=("A", "B"),
            seed=seed * 101 + index,
        )
        apq = to_apq(query)
        max_disjuncts = max(max_disjuncts, len(apq))
        if query.size():
            max_blowup = max(max_blowup, apq.size() / query.size())
        if not all(is_acyclic(disjunct) for disjunct in apq):
            all_equivalent = False
            continue
        counterexample = equivalent_on_samples(
            query, apq, samples=6, size=12, alphabet=("A", "B"), seed=index
        )
        exhaustive = equivalent_on_trees(query, apq, max_size=3, alphabet=("A", "B"))
        if counterexample is not None or exhaustive is not None:
            all_equivalent = False
    return SignatureRewriteSummary(
        axes=axes,
        queries_rewritten=num_queries,
        all_equivalent=all_equivalent,
        max_disjuncts=max_disjuncts,
        max_blowup=max_blowup,
    )


def check_prop614(num_queries: int = 5, seed: int = 0) -> bool:
    """Proposition 6.14: the linear-time rewriting is equivalence-preserving."""
    for index in range(num_queries):
        query = random_cyclic_query(
            (Axis.CHILD, Axis.NEXT_SIBLING),
            num_variables=4,
            num_extra_atoms=1,
            alphabet=("A", "B"),
            seed=seed * 31 + index,
        )
        apq = rewrite_child_nextsibling_apq(query)
        if equivalent_on_samples(query, apq, samples=6, size=12, seed=index) is not None:
            return False
        if equivalent_on_trees(query, apq, max_size=3) is not None:
            return False
    return True


def run(quick: bool = False) -> RewritingReport:
    report = RewritingReport()
    sizes = (4,) if quick else (5,)
    report.lifters_66_verified, report.lifters_66_failed = verify_66_lifters(sizes)
    report.lifters_69_failed = verify_69_lifters(sizes)
    families = _SIGNATURE_FAMILIES[:2] if quick else _SIGNATURE_FAMILIES
    for axes in families:
        report.signature_summaries.append(
            rewrite_random_queries(axes, num_queries=2 if quick else 4)
        )
    report.prop614_equivalent = check_prop614(num_queries=3 if quick else 5)
    return report
