"""Experiment ``table2``: regenerate Table II (the NAND gadget distances).

Table II is the function ``NAND(k, l)`` used by the Theorem 5.2 wiring.  The
experiment regenerates the table and records the structural sanity checks that
can be made without the (figure-only) gadget tree: the table is symmetric
under ``NAND(k, l) = NAND(4 - l, 4 - k)`` and strictly decreasing in ``k`` /
increasing in ``l``, reflecting that a higher selected position on the left
needs more Following steps to block a lower position on the right.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardness.nand import NAND, nand, render_table2


@dataclass
class Table2Result:
    values: dict[tuple[int, int], int]
    antisymmetric: bool
    monotone: bool

    def render(self) -> str:
        lines = ["Table II (NAND(k, l) Following-step distances)", ""]
        lines.append(render_table2())
        lines.append("")
        lines.append(f"NAND(k, l) = NAND(4 - l, 4 - k) holds: {self.antisymmetric}")
        lines.append(
            f"Monotone (decreasing in k, increasing in l): {self.monotone}"
        )
        return "\n".join(lines)


def run() -> Table2Result:
    antisymmetric = all(
        nand(k, l) == nand(4 - l, 4 - k) for k in (1, 2, 3) for l in (1, 2, 3)
    )
    monotone = all(
        nand(k, l) > nand(k + 1, l) for k in (1, 2) for l in (1, 2, 3)
    ) and all(
        nand(k, l) < nand(k, l + 1) for k in (1, 2, 3) for l in (1, 2)
    )
    return Table2Result(values=dict(NAND), antisymmetric=antisymmetric, monotone=monotone)
