"""Experiments ``fig2`` / ``fig3`` / Theorem 4.1: the X-property, mechanically.

* Figure 2 is the definition picture of the X-property; we regenerate it as a
  mechanical check of Definition 3.2 on explicit toy relations.
* Figure 3 shows the two counterexamples of Example 4.5 (Following vs the
  pre-order, inverse Descendant vs the post-order); we rebuild the exact trees
  and report the violations found.
* Theorem 4.1 lists which axes have the X-property w.r.t. which order; we
  verify the positive claims on a batch of random trees and confirm the
  negative combinations have counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trees.axes import AX, Axis
from ..trees.generators import random_tree
from ..trees.orders import ALL_ORDERS, Order
from ..xproperty.counterexamples import Counterexample, all_counterexamples
from ..xproperty.definition import has_x_property
from ..xproperty.dichotomy import X_PROPERTY_AXES


@dataclass
class XPropertyFiguresResult:
    #: (axis, order) -> fraction of sampled trees on which the X-property held.
    theorem41_grid: dict[tuple[Axis, Order], float] = field(default_factory=dict)
    counterexamples: list[Counterexample] = field(default_factory=list)
    theorem41_positive_confirmed: bool = True

    def render(self) -> str:
        lines = [
            "Theorem 4.1: X-property of each axis w.r.t. each order "
            "(fraction of sampled random trees on which it holds)",
            "",
        ]
        header = f"{'axis':<14}" + "".join(f"{order.value:>8}" for order in ALL_ORDERS)
        lines.append(header)
        for axis in sorted(AX, key=lambda a: a.value):
            row = f"{axis.value:<14}"
            for order in ALL_ORDERS:
                fraction = self.theorem41_grid.get((axis, order), float("nan"))
                marker = "*" if axis in X_PROPERTY_AXES[order] else " "
                row += f"{fraction:>7.2f}{marker}"
            lines.append(row)
        lines.append("")
        lines.append("(* = Theorem 4.1 asserts the X-property for every tree)")
        lines.append(
            f"All Theorem 4.1 positive claims confirmed on the sample: "
            f"{self.theorem41_positive_confirmed}"
        )
        lines.append("")
        lines.append("Figure 3 counterexamples:")
        for counterexample in self.counterexamples:
            status = "violation found" if counterexample.confirms_failure else "NO violation"
            lines.append(
                f"  {counterexample.axis.value} vs <{counterexample.order.value}: {status} "
                f"({counterexample.violation})"
            )
        return "\n".join(lines)


def run(num_trees: int = 12, tree_size: int = 18, seed: int = 0) -> XPropertyFiguresResult:
    """Run the X-property verification grid and the Figure 3 counterexamples."""
    result = XPropertyFiguresResult()
    trees = [
        random_tree(tree_size, alphabet=("A", "B"), seed=seed + index)
        for index in range(num_trees)
    ]
    for axis in AX:
        for order in ALL_ORDERS:
            holds_count = sum(1 for tree in trees if has_x_property(tree, axis, order))
            fraction = holds_count / len(trees)
            result.theorem41_grid[(axis, order)] = fraction
            if axis in X_PROPERTY_AXES[order] and fraction < 1.0:
                result.theorem41_positive_confirmed = False
    result.counterexamples = all_counterexamples()
    return result
