"""Section 5: NP-hardness machinery (1-in-3 3SAT, reductions, hard instances)."""

from .hard_instances import (
    HardWorkload,
    grid_query,
    hard_workload,
    random_cyclic_query,
    theorem51_workload,
)
from .nand import NAND, nand, render_table2
from .sat import (
    Assignment,
    OneInThreeInstance,
    brute_force_solutions,
    count_solutions,
    is_satisfiable,
    random_instance,
    satisfiable_instance,
    solve_backtracking,
    unsatisfiable_instance,
)
from .theorem51 import (
    Theorem51Reduction,
    build_data_tree,
    build_query,
    decide_by_selection,
    decode_assignment,
    decode_selection,
    encode_selection,
    reduce_instance,
)

__all__ = [
    "Assignment",
    "HardWorkload",
    "NAND",
    "OneInThreeInstance",
    "Theorem51Reduction",
    "brute_force_solutions",
    "build_data_tree",
    "build_query",
    "count_solutions",
    "decide_by_selection",
    "decode_assignment",
    "decode_selection",
    "encode_selection",
    "grid_query",
    "hard_workload",
    "is_satisfiable",
    "nand",
    "random_cyclic_query",
    "random_instance",
    "reduce_instance",
    "render_table2",
    "satisfiable_instance",
    "solve_backtracking",
    "theorem51_workload",
    "unsatisfiable_instance",
]
