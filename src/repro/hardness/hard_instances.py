"""Calibrated hard query instances for the NP-hard signatures of Table I.

The paper proves NP-hardness of the remaining two-axis signatures (Theorems
5.2-5.8) with clause gadgets whose data trees are only given as figures that
the available text does not fully specify (see DESIGN.md, substitution 2).
For the *empirical* side of the Table I reproduction we therefore use
generator-based hard instances:

* :func:`theorem51_workload` -- the exact Theorem 5.1 reduction (the verified
  gadget), parameterised by the number of clauses; used for the
  ``{Child, Child+}`` / ``{Child, Child*}`` cells,
* :func:`random_cyclic_query` / :func:`grid_query` -- dense cyclic queries over
  an arbitrary two-axis signature, which exercise the exponential behaviour of
  generic evaluation on the NP-hard cells while the same shapes remain easy on
  the tractable cells (evaluated by the X-property algorithm),
* :func:`hard_workload` -- a convenience bundle (tree + query batches) used by
  ``benchmarks/bench_table1.py`` and ``benchmarks/bench_hardness.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..queries.atoms import AxisAtom, LabelAtom
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis
from ..trees.generators import random_tree
from ..trees.structure import Signature, TreeStructure
from .sat import satisfiable_instance
from .theorem51 import Theorem51Reduction, reduce_instance


@dataclass(frozen=True)
class HardWorkload:
    """A (structure, queries) pair used by the hardness benchmarks."""

    structure: TreeStructure
    queries: tuple[ConjunctiveQuery, ...]
    description: str


def theorem51_workload(
    num_clauses: int,
    num_variables: Optional[int] = None,
    variant: str = "tau4",
    seed: int = 0,
) -> Theorem51Reduction:
    """A satisfiable 1-in-3 instance of the given size run through Theorem 5.1."""
    num_variables = num_variables if num_variables is not None else max(3, num_clauses + 2)
    instance = satisfiable_instance(num_variables, num_clauses, seed=seed)
    return reduce_instance(instance, variant)  # type: ignore[arg-type]


def random_cyclic_query(
    axes: Sequence[Axis],
    num_variables: int,
    num_extra_atoms: int,
    alphabet: Sequence[str] = ("A", "B", "C"),
    label_probability: float = 0.5,
    seed: Optional[int] = None,
) -> ConjunctiveQuery:
    """A random Boolean query guaranteed to contain undirected cycles.

    The query graph is a *directed-acyclic ring*: a path
    ``v0 -> v1 -> ... -> v(n-1)`` plus the chord ``v0 -> v(n-1)``, which closes
    an undirected cycle without creating a directed one (a directed ring would
    be trivially unsatisfiable over trees by Lemma 6.4 and would make the
    instances worthless).  ``num_extra_atoms`` additional chords are added,
    always oriented from the lower-indexed to the higher-indexed variable so
    the graph stays a DAG; axes are drawn uniformly from ``axes`` and unary
    label atoms are sprinkled in.  Such queries are the generic "hard shape"
    on NP-hard signatures and the generic "easy shape" on tractable ones.
    """
    if num_variables < 3:
        raise ValueError("need at least three variables for a cyclic query")
    rng = random.Random(seed)
    variables = [f"v{i}" for i in range(num_variables)]
    atoms: list = []
    for index in range(num_variables - 1):
        atoms.append(
            AxisAtom(rng.choice(list(axes)), variables[index], variables[index + 1])
        )
    atoms.append(AxisAtom(rng.choice(list(axes)), variables[0], variables[-1]))
    for _ in range(num_extra_atoms):
        first, second = sorted(rng.sample(range(num_variables), 2))
        atoms.append(
            AxisAtom(rng.choice(list(axes)), variables[first], variables[second])
        )
    for variable in variables:
        if rng.random() < label_probability:
            atoms.append(LabelAtom(rng.choice(list(alphabet)), variable))
    return ConjunctiveQuery((), tuple(atoms), name="random-cyclic")


def grid_query(
    vertical: Axis,
    horizontal: Axis,
    rows: int,
    columns: int,
    alphabet: Sequence[str] = (),
    seed: Optional[int] = None,
) -> ConjunctiveQuery:
    """A rows x columns grid query: vertical atoms down columns, horizontal along rows.

    Grid queries are maximally cyclic for their size and are the classic
    worst-case shape for structural-decomposition-based evaluation.
    """
    rng = random.Random(seed)
    atoms: list = []
    variable = lambda r, c: f"g{r}_{c}"  # noqa: E731 - tiny local helper
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                atoms.append(AxisAtom(horizontal, variable(r, c), variable(r, c + 1)))
            if r + 1 < rows:
                atoms.append(AxisAtom(vertical, variable(r, c), variable(r + 1, c)))
            if alphabet and rng.random() < 0.4:
                atoms.append(LabelAtom(rng.choice(list(alphabet)), variable(r, c)))
    return ConjunctiveQuery((), tuple(atoms), name=f"grid-{rows}x{columns}")


def hard_workload(
    axes: Sequence[Axis],
    tree_size: int = 60,
    num_queries: int = 5,
    num_variables: int = 8,
    num_extra_atoms: int = 4,
    seed: int = 0,
) -> HardWorkload:
    """A bundle of random cyclic queries over a random tree for a signature."""
    tree = random_tree(
        tree_size,
        alphabet=("A", "B", "C"),
        max_children=3,
        unlabeled_probability=0.2,
        seed=seed,
    )
    signature = Signature(frozenset(axes))
    structure = TreeStructure(tree, signature)
    queries = tuple(
        random_cyclic_query(
            axes,
            num_variables=num_variables,
            num_extra_atoms=num_extra_atoms,
            seed=seed * 1000 + index,
        )
        for index in range(num_queries)
    )
    description = "random cyclic queries over " + ", ".join(a.value for a in axes)
    return HardWorkload(structure, queries, description)
