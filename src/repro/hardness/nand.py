"""Table II: the NAND(k, l) gadget distances of Theorem 5.2.

In the reduction from 1-in-3 3SAT to conjunctive queries over
``{Child, Following}`` (Theorem 5.2), the interaction between two clause
gadgets is wired with atoms ``Following^NAND(k, l)(x, y)``: they forbid the
query variables labelled ``L_k`` (in the left copy) and ``L_l`` (in the right
copy) from *both* being mapped to their topmost data-tree positions.

The table (paper's Table II)::

    k \\ l   1    2    3
    1      10   13   18
    2       5    8   13
    3       2    5   10
"""

from __future__ import annotations

#: Table II of the paper.
NAND: dict[tuple[int, int], int] = {
    (1, 1): 10, (1, 2): 13, (1, 3): 18,
    (2, 1): 5,  (2, 2): 8,  (2, 3): 13,
    (3, 1): 2,  (3, 2): 5,  (3, 3): 10,
}


def nand(k: int, l: int) -> int:
    """The number of ``Following`` steps for positions ``k`` and ``l`` (1-based)."""
    try:
        return NAND[(k, l)]
    except KeyError as error:
        raise ValueError("NAND is defined for k, l in {1, 2, 3}") from error


def render_table2() -> str:
    """Regenerate Table II as text."""
    lines = ["k\\l   1    2    3"]
    for k in (1, 2, 3):
        row = "  ".join(f"{nand(k, l):3d}" for l in (1, 2, 3))
        lines.append(f"{k}    {row}")
    return "\n".join(lines)
