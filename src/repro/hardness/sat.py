"""1-in-3 3SAT: instances, generators and solvers (the source problem of Section 5).

All NP-hardness reductions in the paper start from ONE-IN-THREE 3SAT with
positive literals only [Schaefer 1978]: given clauses of exactly three positive
literals, is there a truth assignment making *exactly one* literal per clause
true?

This module provides

* :class:`OneInThreeInstance` -- an immutable instance,
* :func:`brute_force_solutions` / :func:`is_satisfiable` -- an exhaustive
  solver used as ground truth when verifying the reductions,
* :func:`solve_backtracking` -- a faster clause-propagation solver used by the
  benchmarks on larger instances,
* :func:`random_instance` / :func:`satisfiable_instance` /
  :func:`unsatisfiable_instance` -- generators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Optional, Sequence

Clause = tuple[str, str, str]
Assignment = dict[str, bool]


@dataclass(frozen=True)
class OneInThreeInstance:
    """A 1-in-3 3SAT instance over positive literals.

    Each clause is an *ordered* triple of variable names (the proofs of
    Section 5 refer to "the k-th literal of clause C_i"); a variable may occur
    in several clauses but, w.l.o.g. (as the paper assumes), not twice in the
    same clause.
    """

    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if len(clause) != 3:
                raise ValueError(f"clauses must have exactly three literals: {clause}")
            if len(set(clause)) != 3:
                raise ValueError(
                    f"a clause must not contain a literal twice: {clause}"
                )

    @classmethod
    def of(cls, *clauses: Sequence[str]) -> "OneInThreeInstance":
        return cls(tuple(tuple(clause) for clause in clauses))  # type: ignore[arg-type]

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def variables(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for clause in self.clauses:
            for literal in clause:
                seen.setdefault(literal, None)
        return tuple(seen)

    def is_solution(self, assignment: Assignment) -> bool:
        """Exactly one true literal in every clause?"""
        return all(
            sum(1 for literal in clause if assignment.get(literal, False)) == 1
            for clause in self.clauses
        )

    def selection_to_assignment(self, selection: Sequence[int]) -> Assignment:
        """Turn a per-clause literal selection (1-based positions) into truth values.

        ``selection[i] = k`` means the k-th literal of clause ``i`` is the true
        one.  Raises ``ValueError`` when the selection is inconsistent (the
        same variable selected in one clause but unselected in another).
        """
        if len(selection) != self.num_clauses:
            raise ValueError("selection length must equal the number of clauses")
        assignment = {variable: False for variable in self.variables()}
        for clause, position in zip(self.clauses, selection):
            if position not in (1, 2, 3):
                raise ValueError("literal positions are 1, 2 or 3")
            assignment[clause[position - 1]] = True
        if not self.is_solution(assignment):
            raise ValueError("the selection does not induce a 1-in-3 solution")
        return assignment

    def __str__(self) -> str:
        return " AND ".join(
            "1-in-3(" + ", ".join(clause) + ")" for clause in self.clauses
        )


def brute_force_solutions(instance: OneInThreeInstance) -> Iterator[Assignment]:
    """Enumerate all solutions by trying every assignment (ground truth)."""
    variables = instance.variables()
    for values in product((False, True), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if instance.is_solution(assignment):
            yield assignment


def is_satisfiable(instance: OneInThreeInstance) -> bool:
    """Exhaustive satisfiability test (exponential; fine for small instances)."""
    for _ in brute_force_solutions(instance):
        return True
    return False


def count_solutions(instance: OneInThreeInstance) -> int:
    return sum(1 for _ in brute_force_solutions(instance))


def solve_backtracking(instance: OneInThreeInstance) -> Optional[Assignment]:
    """A clause-by-clause backtracking solver (faster than brute force).

    Chooses, for each clause in turn, which literal is the true one, and
    propagates the induced truth values; backtracks on conflict.
    """
    variables = instance.variables()
    assignment: dict[str, bool] = {}

    def consistent_choice(clause: Clause, position: int) -> Optional[list[str]]:
        """Try to select clause[position] as true; return newly fixed variables."""
        newly_fixed: list[str] = []
        for index, literal in enumerate(clause):
            wanted = index == position
            if literal in assignment:
                if assignment[literal] != wanted:
                    for fixed in newly_fixed:
                        del assignment[fixed]
                    return None
            else:
                assignment[literal] = wanted
                newly_fixed.append(literal)
        return newly_fixed

    def search(clause_index: int) -> bool:
        if clause_index == instance.num_clauses:
            return True
        clause = instance.clauses[clause_index]
        for position in range(3):
            newly_fixed = consistent_choice(clause, position)
            if newly_fixed is None:
                continue
            if search(clause_index + 1):
                return True
            for fixed in newly_fixed:
                del assignment[fixed]
        return False

    if not search(0):
        return None
    for variable in variables:
        assignment.setdefault(variable, False)
    return dict(assignment)


def random_instance(
    num_variables: int,
    num_clauses: int,
    seed: Optional[int] = None,
) -> OneInThreeInstance:
    """A uniformly random instance (near num_clauses ~ 0.6 * num_variables the
    satisfiable/unsatisfiable phase transition makes instances hardest)."""
    if num_variables < 3:
        raise ValueError("need at least three variables to form a clause")
    rng = random.Random(seed)
    variables = [f"u{i}" for i in range(num_variables)]
    clauses = tuple(
        tuple(rng.sample(variables, 3)) for _ in range(num_clauses)
    )
    return OneInThreeInstance(clauses)  # type: ignore[arg-type]


def satisfiable_instance(
    num_variables: int,
    num_clauses: int,
    seed: Optional[int] = None,
) -> OneInThreeInstance:
    """A random instance guaranteed satisfiable (planted solution)."""
    if num_variables < 3:
        raise ValueError("need at least three variables to form a clause")
    rng = random.Random(seed)
    variables = [f"u{i}" for i in range(num_variables)]
    planted = {variable: rng.random() < 0.3 for variable in variables}
    if not any(planted.values()):
        planted[variables[0]] = True
    true_variables = [v for v in variables if planted[v]]
    false_variables = [v for v in variables if not planted[v]]
    while len(false_variables) < 2:
        extra = f"u{len(variables)}"
        variables.append(extra)
        planted[extra] = False
        false_variables.append(extra)
    clauses = []
    for _ in range(num_clauses):
        true_literal = rng.choice(true_variables)
        false_pair = rng.sample(false_variables, 2)
        clause = [true_literal] + false_pair
        rng.shuffle(clause)
        clauses.append(tuple(clause))
    return OneInThreeInstance(tuple(clauses))  # type: ignore[arg-type]


def unsatisfiable_instance() -> OneInThreeInstance:
    """A small canonical unsatisfiable instance (the four triples over {a,b,c,d}).

    Any 1-in-3 solution of the first three clauses must make exactly one of
    a, b, c, d true (a quick case analysis), but then the remaining clause --
    the triple omitting that variable -- has no true literal.  The tests also
    verify unsatisfiability by brute force.
    """
    return OneInThreeInstance.of(
        ("a", "b", "c"),
        ("a", "b", "d"),
        ("a", "c", "d"),
        ("b", "c", "d"),
    )
