"""The Theorem 5.1 reduction: 1-in-3 3SAT -> CQ over {Child, Child+} / {Child, Child*}.

This is the one NP-hardness gadget of Section 5 that is fully recoverable from
the proof text (the Figure 4 data tree is described implicitly by the
satisfying valuations used in the correctness argument), so the reproduction
implements it exactly and verifies it mechanically against the brute-force
1-in-3 3SAT solver.

The fixed data tree over the alphabet ``{X, Y, L1, L2, L3}``:

* a chain of three ``X``-labelled nodes ``v1 -> v2 -> v3`` (``v1`` the root);
* below ``v3``, three chains ("branches") of ten nodes each,
  ``w[m][1] ... w[m][10]`` for ``m = 1, 2, 3``;
* ``w[m][m]`` carries label ``Y``;
* ``w[m][t]`` for ``t = 4..10`` carries the two labels ``{L1, L2, L3} - {Lm}``;
* ``w[m][5+m]`` additionally carries ``Lm`` (so it is the only node of branch
  ``m`` labelled ``Lm``).

The query for an instance ``C_1, ..., C_m`` (ordered clauses of three positive
literals):

* for each clause ``i``: ``X(x_i), Y(y_i), Child^3(x_i, y_i)``;
* for every pair of clause positions that share a literal -- the k-th literal
  of ``C_i`` equals the l-th literal of ``C_j`` (``i != j``) -- a variable
  ``z_{k,l,i,j}`` with atoms ``L_k(z)``, ``Child^o(y_i, z)`` and
  ``Child^(8+k-l)(x_j, z)``, where ``o`` is ``+`` on ``tau4 = {Child, Child+}``
  and ``*`` on ``tau5 = {Child, Child*}``.

The query is satisfiable on the fixed tree iff the instance has a 1-in-3
solution; :func:`decode_selection` recovers the per-clause literal selection
from a satisfying valuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from ..queries.atoms import AxisAtom, LabelAtom
from ..queries.query import ConjunctiveQuery, axis_chain
from ..trees.axes import Axis
from ..trees.node import Node
from ..trees.structure import Signature, TreeStructure
from ..trees.tree import Tree
from .sat import Assignment, OneInThreeInstance

Variant = Literal["tau4", "tau5"]

#: Depth of each branch below v3 in the fixed data tree.
_BRANCH_LENGTH = 10


@dataclass(frozen=True)
class Theorem51Reduction:
    """The output of the reduction: fixed tree, query and bookkeeping."""

    instance: OneInThreeInstance
    variant: Variant
    tree: Tree
    query: ConjunctiveQuery
    #: node id of v_k for k = 1, 2, 3
    v_nodes: tuple[int, int, int]
    #: node id of w[m][t], keyed by (m, t), both 1-based
    w_nodes: dict[tuple[int, int], int]

    def structure(self) -> TreeStructure:
        """The reduction's fixed tree packaged with the variant's signature."""
        axes = (
            Signature.of(Axis.CHILD, Axis.CHILD_PLUS)
            if self.variant == "tau4"
            else Signature.of(Axis.CHILD, Axis.CHILD_STAR)
        )
        return TreeStructure(self.tree, axes)


def build_data_tree() -> tuple[Tree, tuple[int, int, int], dict[tuple[int, int], int]]:
    """Build the fixed Figure 4 data tree.

    Returns the tree together with the node ids of ``v1, v2, v3`` and of the
    branch nodes ``w[m][t]``.
    """
    v1 = Node(("X",))
    v2 = v1.add(("X",))
    v3 = v2.add(("X",))
    w_node_objects: dict[tuple[int, int], Node] = {}
    for m in (1, 2, 3):
        parent = v3
        for t in range(1, _BRANCH_LENGTH + 1):
            labels: set[str] = set()
            if t == m:
                labels.add("Y")
            if 4 <= t <= _BRANCH_LENGTH:
                labels.update(f"L{k}" for k in (1, 2, 3) if k != m)
            if t == 5 + m:
                labels.add(f"L{m}")
            parent = parent.add(labels)
            w_node_objects[(m, t)] = parent
    tree = Tree(v1)
    v_ids = (tree.nodes.index(v1), tree.nodes.index(v2), tree.nodes.index(v3))
    w_ids = {key: node.index for key, node in w_node_objects.items()}
    return tree, v_ids, w_ids


def build_query(instance: OneInThreeInstance, variant: Variant = "tau4") -> ConjunctiveQuery:
    """Build the Boolean conjunctive query encoding the instance."""
    if variant not in ("tau4", "tau5"):
        raise ValueError("variant must be 'tau4' or 'tau5'")
    descendant_axis = Axis.CHILD_PLUS if variant == "tau4" else Axis.CHILD_STAR
    atoms: list = []
    for i, _clause in enumerate(instance.clauses, start=1):
        atoms.append(LabelAtom("X", f"x{i}"))
        atoms.append(LabelAtom("Y", f"y{i}"))
        atoms.extend(axis_chain(Axis.CHILD, 3, f"x{i}", f"y{i}"))
    for i, clause_i in enumerate(instance.clauses, start=1):
        for j, clause_j in enumerate(instance.clauses, start=1):
            if i == j:
                continue
            for k, literal_k in enumerate(clause_i, start=1):
                for l, literal_l in enumerate(clause_j, start=1):
                    if literal_k != literal_l:
                        continue
                    z = f"z_{k}_{l}_{i}_{j}"
                    atoms.append(LabelAtom(f"L{k}", z))
                    atoms.append(AxisAtom(descendant_axis, f"y{i}", z))
                    atoms.extend(axis_chain(Axis.CHILD, 8 + k - l, f"x{j}", z))
    return ConjunctiveQuery((), tuple(atoms), name=f"Thm5.1[{variant}]")


def reduce_instance(
    instance: OneInThreeInstance, variant: Variant = "tau4"
) -> Theorem51Reduction:
    """Run the full reduction for an instance."""
    tree, v_ids, w_ids = build_data_tree()
    query = build_query(instance, variant)
    return Theorem51Reduction(instance, variant, tree, query, v_ids, w_ids)


def encode_selection(
    reduction: Theorem51Reduction, selection: list[int]
) -> dict[str, int]:
    """The valuation of the proof's forward direction for a literal selection.

    ``selection[i - 1] = k`` selects the k-th literal of clause ``C_i``.  Only
    the clause variables ``x_i, y_i`` and the coincidence variables ``z`` are
    assigned (chain variables are left to the evaluator); the returned partial
    valuation can be used as pinning to confirm that it extends to a
    satisfaction.
    """
    instance = reduction.instance
    if len(selection) != instance.num_clauses:
        raise ValueError("selection length must match the number of clauses")
    valuation: dict[str, int] = {}
    for i, sigma_i in enumerate(selection, start=1):
        valuation[f"x{i}"] = reduction.v_nodes[sigma_i - 1]
        valuation[f"y{i}"] = reduction.w_nodes[(sigma_i, sigma_i)]
    for i, clause_i in enumerate(instance.clauses, start=1):
        for j, clause_j in enumerate(instance.clauses, start=1):
            if i == j:
                continue
            for k, literal_k in enumerate(clause_i, start=1):
                for l, literal_l in enumerate(clause_j, start=1):
                    if literal_k != literal_l:
                        continue
                    z = f"z_{k}_{l}_{i}_{j}"
                    sigma_i, sigma_j = selection[i - 1], selection[j - 1]
                    valuation[z] = reduction.w_nodes[(sigma_i, 5 + k - l + sigma_j)]
    return valuation


def decide_by_selection(reduction: Theorem51Reduction) -> Optional[list[int]]:
    """Decide satisfiability of the reduction query by selection enumeration.

    Any satisfaction must map each ``x_i`` to one of ``v1, v2, v3`` (those are
    the only ``X``-labelled nodes), so the query is satisfiable iff it is
    satisfiable under one of the ``3^m`` pinnings of the ``x_i``.  Each pinned
    check is cheap (almost everything else is forced), which makes this an
    exact decision procedure for reduction queries that is much faster than
    unrestricted backtracking on unsatisfiable instances.  Returns a
    witnessing selection or ``None``.
    """
    from itertools import product as _product

    from ..evaluation import backtracking as _backtracking

    structure = reduction.structure()
    for selection in _product((1, 2, 3), repeat=reduction.instance.num_clauses):
        pinned = {
            f"x{i + 1}": reduction.v_nodes[position - 1]
            for i, position in enumerate(selection)
        }
        if _backtracking.boolean_query_holds(reduction.query, structure, pinned=pinned):
            return list(selection)
    return None


def decode_selection(
    reduction: Theorem51Reduction, valuation: dict[str, int]
) -> list[int]:
    """Recover the per-clause literal selection from a satisfying valuation."""
    selection: list[int] = []
    for i in range(1, reduction.instance.num_clauses + 1):
        node = valuation[f"x{i}"]
        try:
            selection.append(reduction.v_nodes.index(node) + 1)
        except ValueError as error:
            raise ValueError(
                f"x{i} is mapped to node {node}, which is not one of v1, v2, v3"
            ) from error
    return selection


def decode_assignment(
    reduction: Theorem51Reduction, valuation: dict[str, int]
) -> Assignment:
    """Recover a full truth assignment from a satisfying valuation."""
    selection = decode_selection(reduction, valuation)
    return reduction.instance.selection_to_assignment(selection)
