"""Dependency-free observability core: metrics, tracing, accounting, profiling.

Five pieces, threaded through every layer of the serving stack:

* :mod:`repro.observability.metrics` -- thread-safe counters/gauges and
  fixed-bucket histograms whose bucket arrays merge across shard worker
  processes, rendered in Prometheus text format at ``GET /metrics``; plus the
  slow-query ring buffer surfaced under ``/stats``.
* :mod:`repro.observability.accounting` -- plan-vs-actual cost feedback:
  per-engine calibration, drift-ratio histograms and the bounded top-drift
  table behind ``/stats`` and ``cq-trees drift``.
* :mod:`repro.observability.profiler` -- the in-process wall-clock sampling
  profiler behind ``POST /profile`` / ``GET /profile``.
* :mod:`repro.observability.tracing` -- context-local span trees attached to
  ``RequestResult`` when a request sets ``debug: true``.
* :mod:`repro.observability.logging` -- ``key=value`` structured logging for
  runtime output (bare ``print`` in ``src/`` is ruff-banned).
"""

from repro.observability.accounting import ACCOUNTING, PLAN_DRIFT, PlanAccounting
from repro.observability.logging import get_logger
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    SLOW_LOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
    percentile_from_buckets,
)
from repro.observability.profiler import PROFILER, SamplingProfiler, merge_snapshots
from repro.observability.tracing import Span, annotate, current_span, is_active, span, trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "DEFAULT_LATENCY_BUCKETS",
    "REGISTRY",
    "SLOW_LOG",
    "percentile_from_buckets",
    "ACCOUNTING",
    "PLAN_DRIFT",
    "PlanAccounting",
    "PROFILER",
    "SamplingProfiler",
    "merge_snapshots",
    "Span",
    "annotate",
    "current_span",
    "is_active",
    "span",
    "trace",
    "get_logger",
]
