"""Dependency-free observability core: metrics, tracing spans, structured logs.

Three pieces, threaded through every layer of the serving stack:

* :mod:`repro.observability.metrics` -- thread-safe counters/gauges and
  fixed-bucket histograms whose bucket arrays merge across shard worker
  processes, rendered in Prometheus text format at ``GET /metrics``; plus the
  slow-query ring buffer surfaced under ``/stats``.
* :mod:`repro.observability.tracing` -- context-local span trees attached to
  ``RequestResult`` when a request sets ``debug: true``.
* :mod:`repro.observability.logging` -- ``key=value`` structured logging for
  runtime output (bare ``print`` in ``src/`` is ruff-banned).
"""

from repro.observability.logging import get_logger
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    SLOW_LOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
)
from repro.observability.tracing import Span, annotate, current_span, is_active, span, trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "DEFAULT_LATENCY_BUCKETS",
    "REGISTRY",
    "SLOW_LOG",
    "Span",
    "annotate",
    "current_span",
    "is_active",
    "span",
    "trace",
    "get_logger",
]
