"""Plan-vs-actual accounting: how wrong were the cost model's estimates?

The PR 9 planner attaches an ``estimated_cost`` (abstract work units) and
per-bag row estimates to every :class:`~repro.planning.plan.QueryPlan`, and the
metrics layer already histograms those estimates -- but nothing ever compared
them to what execution *actually* cost.  This module closes that loop:

* every successfully executed request is recorded with its actual elapsed
  time, rows enumerated and per-stage durations next to the plan's estimates;
* a per-engine **calibration** (running mean of ``log(cost units / second)``)
  converts abstract units into predicted seconds, so the **drift ratio**
  ``actual_seconds / predicted_seconds`` is dimensionless: ``1.0`` means the
  estimate was exactly as expensive as this engine's typical unit, ``> 1``
  means the plan under-estimated (the request was slower than its cost
  implied), ``< 1`` over-estimated;
* drift ratios land in the :data:`PLAN_DRIFT` histogram (labelled by
  engine/propagator/lowering, power-of-two buckets) in the process
  :data:`~repro.observability.metrics.REGISTRY`, so ``/metrics`` exposes the
  drift distribution and shard snapshots merge it for free;
* the worst offenders survive in a bounded **top-drift table** (canonical
  query, stats bucket, stage timings) surfaced under ``/stats`` and by the
  ``cq-trees drift`` CLI verb.

Everything is mergeable: :meth:`PlanAccounting.snapshot` is a plain picklable
dict (calibration sums merge by addition, top tables by re-ranking the union),
so shard workers ship their accounting over the existing control channel
exactly like metric snapshots.  Note drift ratios in worker entries were
computed against that worker's own calibration at record time; with
homogeneous workers the calibrations converge, and the merged table stays an
honest "worst seen anywhere" list either way.
"""

from __future__ import annotations

import math
import threading
from typing import Optional

from .metrics import REGISTRY

__all__ = ["ACCOUNTING", "PLAN_DRIFT", "DRIFT_BUCKETS", "PlanAccounting"]

#: Drift-ratio bucket bounds: powers of two from 1/256 to 256 (``+Inf``
#: implicit).  Symmetric in log space around 1.0 = "estimate was spot on".
DRIFT_BUCKETS: tuple[float, ...] = tuple(2.0**exponent for exponent in range(-8, 9))

#: Drift-ratio distribution, labelled by the plan knobs that chose the path.
PLAN_DRIFT = REGISTRY.histogram(
    "cqtrees_plan_drift_ratio",
    "Actual-over-predicted request seconds per executed plan "
    "(1.0 = the cost estimate matched this engine's calibration)",
    ("engine", "propagator", "lowering"),
    buckets=DRIFT_BUCKETS,
)


def _severity(drift: float) -> float:
    """How wrong an estimate was, direction-free: ``abs(log2(drift))``."""
    return abs(math.log2(drift)) if drift > 0 else float("inf")


class PlanAccounting:
    """Per-process plan-vs-actual ledger: calibration + bounded top-drift table.

    Thread-safe; ``capacity`` bounds the top-drift table (worst entries by
    ``|log2(drift)|``, ties broken newest-first by insertion order).
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._requests = 0
        self._skipped = 0
        # engine -> [sample count, sum of log(cost units per second)]
        self._engines: dict[str, list] = {}
        self._top: list[dict] = []

    # -- recording -------------------------------------------------------------

    def record(
        self,
        *,
        query_key: str,
        query_text: str,
        doc: str,
        rows: int,
        elapsed_ms: float,
        stage_ms: dict,
        engine: str,
        propagator: str,
        lowering: str,
        routing: str,
        stats_bucket: str,
        estimated_cost: float,
        estimated_rows: float,
    ) -> Optional[float]:
        """Account one executed request; returns the drift ratio recorded.

        Requests with a non-positive cost estimate or elapsed time carry no
        calibration signal and are counted as skipped (returns ``None``).
        The first request an engine ever serves seeds its calibration and
        records drift ``1.0`` by definition.
        """
        seconds = elapsed_ms / 1000.0
        if estimated_cost <= 0 or seconds <= 0:
            with self._lock:
                self._skipped += 1
            return None
        rate = estimated_cost / seconds  # cost units per second, this request
        with self._lock:
            calibration = self._engines.setdefault(engine, [0, 0.0])
            if calibration[0] > 0:
                typical_rate = math.exp(calibration[1] / calibration[0])
                drift = typical_rate / rate
            else:
                drift = 1.0
            calibration[0] += 1
            calibration[1] += math.log(rate)
            self._requests += 1
            entry = {
                "drift": round(drift, 4),
                "direction": "under-estimate" if drift >= 1.0 else "over-estimate",
                "doc": doc,
                "query_key": query_key,
                "query": query_text,
                "engine": engine,
                "propagator": propagator,
                "lowering": lowering,
                "routing": routing,
                "stats_bucket": stats_bucket,
                "estimated_cost": round(estimated_cost, 1),
                "estimated_rows": round(estimated_rows, 1),
                "rows": rows,
                "elapsed_ms": round(elapsed_ms, 3),
                "stage_ms": {name: round(value, 3) for name, value in stage_ms.items()},
            }
            self._top.append(entry)
            self._rerank()
        PLAN_DRIFT.observe(drift, engine=engine, propagator=propagator, lowering=lowering)
        return drift

    def _rerank(self) -> None:
        """Keep only the ``capacity`` worst entries (call with the lock held)."""
        if len(self._top) > self.capacity:
            self._top.sort(key=lambda entry: _severity(entry["drift"]), reverse=True)
            del self._top[self.capacity :]

    # -- merge / snapshot ------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain picklable dict: what shard workers ship to the parent."""
        with self._lock:
            return {
                "requests": self._requests,
                "skipped": self._skipped,
                "engines": {engine: list(pair) for engine, pair in self._engines.items()},
                "top": [dict(entry) for entry in self._top],
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Sum calibrations and re-rank the union of top-drift tables."""
        with self._lock:
            self._requests += snapshot.get("requests", 0)
            self._skipped += snapshot.get("skipped", 0)
            for engine, (count, log_rate_sum) in snapshot.get("engines", {}).items():
                calibration = self._engines.setdefault(engine, [0, 0.0])
                calibration[0] += count
                calibration[1] += log_rate_sum
            self._top.extend(dict(entry) for entry in snapshot.get("top", []))
            self._rerank()

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict:
        """The ``/stats`` rendering: calibration rates + ranked drift table."""
        with self._lock:
            engines = {
                engine: {
                    "count": count,
                    "units_per_second": round(math.exp(log_rate_sum / count), 1) if count else None,
                }
                for engine, (count, log_rate_sum) in sorted(self._engines.items())
            }
            top = sorted(
                (dict(entry) for entry in self._top),
                key=lambda entry: _severity(entry["drift"]),
                reverse=True,
            )
            return {
                "requests": self._requests,
                "skipped": self._skipped,
                "capacity": self.capacity,
                "engines": engines,
                "top_drift": top,
            }

    def clear(self) -> None:
        with self._lock:
            self._requests = 0
            self._skipped = 0
            self._engines.clear()
            self._top.clear()


#: The process-default ledger (shard workers clear it right after the fork,
#: like the metrics registry, so parent-inherited state never double-counts).
ACCOUNTING = PlanAccounting()
