"""Structured logging for the serving stack.

Runtime output in ``src/`` goes through here instead of bare ``print`` (the
ruff ``T201`` gate enforces that); the CLI keeps printing because stdout *is*
its interface.  Lines are ``key=value`` structured text on stderr::

    2026-08-08T12:00:00Z level=info logger=repro.service.async request method=POST path=/query status=200

Level comes from ``REPRO_LOG_LEVEL`` (default ``info``); the handler writes to
stderr so servers started by the smoke harness keep stdout clean for banners.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import TextIO

__all__ = ["StructuredLogger", "get_logger"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _configured_level() -> int:
    return _LEVELS.get(os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower(), 20)


def _format_value(value: object) -> str:
    text = str(value)
    if text == "" or any(ch in text for ch in ' "='):
        return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'
    return text


class StructuredLogger:
    """A tiny key=value logger; one line per event, thread-safe."""

    _lock = threading.Lock()

    def __init__(self, name: str, stream: "TextIO | None" = None):
        self.name = name
        self._stream = stream

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if _LEVELS[level] < _configured_level():
            return
        stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        parts = [stamp, f"level={level}", f"logger={self.name}", event]
        parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
        line = " ".join(parts)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(line + "\n")
            stream.flush()

    def debug(self, event: str, **fields: object) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("error", event, fields)


_loggers: dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructuredLogger(name)
            _loggers[name] = logger
        return logger
