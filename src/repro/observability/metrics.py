"""Dependency-free metrics: counters, gauges, mergeable histograms, Prometheus text.

The serving stack needs operational visibility without growing a dependency:
this module is plain stdlib (``threading`` + ``bisect``) and provides the three
Prometheus metric kinds the ROADMAP's load-harness item asks for:

* :class:`Counter` -- monotone totals, optionally labelled
  (``requests_total{status="ok"}``);
* :class:`Gauge` -- point-in-time levels (resident documents);
* :class:`Histogram` -- **fixed-bucket** latency/size distributions.  Fixed
  buckets are the whole design: two histograms with the same bucket bounds
  merge by summing their bucket arrays, so worker processes can ship their
  histograms over the existing shard control channel and the parent adds them
  up -- fleet-wide p50/p99 without any sketch library.

Every metric lives in a :class:`MetricsRegistry`.  :meth:`MetricsRegistry.render`
emits the Prometheus text exposition format (``GET /metrics``);
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge_snapshot` are
the cross-process halves: a snapshot is a plain picklable dict of bucket
arrays and counter values, and merging sums value-by-value (gauges sum too --
per-shard levels aggregate to fleet levels).

All operations are thread-safe; the per-family lock is held for a dict update
and an array increment, so the hot-path cost of ``observe()`` is a bisect plus
two additions -- cheap enough to leave enabled in production (the service
benchmark gates the overhead at < 5%).

The module-level :data:`REGISTRY` is the process default every instrumented
subsystem records into; :data:`SLOW_LOG` is the slow-query ring buffer the
``/stats`` route surfaces.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections import deque
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryLog",
    "DEFAULT_LATENCY_BUCKETS",
    "REGISTRY",
    "SLOW_LOG",
    "percentile_from_buckets",
]

#: Default latency bucket upper bounds, in seconds: 100 microseconds to 10
#: seconds on a roughly-2.5x grid.  ``+Inf`` is implicit (the overflow slot).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default bucket upper bounds for row/byte size distributions.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_le(bound: float) -> str:
    """Bucket ``le`` label values (``0.005``, ``1``, ``+Inf``)."""
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound)


def percentile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Estimate the ``q``-percentile from fixed-bucket counts.

    ``bounds`` are the finite ascending upper bounds and ``counts`` the
    non-cumulative per-bucket tallies (``len(bounds) + 1`` slots, overflow
    last).  The estimate interpolates linearly *within* the bucket holding the
    rank -- the same scheme as Prometheus's ``histogram_quantile`` -- so it is
    exact to within one bucket width, which is all a fixed grid can promise.
    Observations in the ``+Inf`` overflow slot clamp to the last finite bound.
    Returns ``None`` on an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("percentile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for slot, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count:
            if slot >= len(bounds):
                return float(bounds[-1])
            lower = float(bounds[slot - 1]) if slot > 0 else 0.0
            upper = float(bounds[slot])
            fraction = max(0.0, rank - previous) / count
            return lower + (upper - lower) * fraction
    return float(bounds[-1])  # pragma: no cover - all mass in the overflow slot


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labelnames: Sequence[str], key: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label(value)}"' for name, value in zip(labelnames, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Family:
    """Common machinery: labelled sample keys behind one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def label_sets(self) -> list[tuple[str, ...]]:
        """Every label-value combination this family has seen, sorted."""
        with self._lock:
            return sorted(self._values)


class Counter(_Family):
    """A monotonically increasing total (per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))

    def _render(self) -> Iterable[str]:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield f"{self.name}{_render_labels(self.labelnames, key)} {_format_value(value)}"

    def _snapshot_values(self) -> dict:
        with self._lock:
            return {json.dumps(list(key)): value for key, value in self._values.items()}

    def _merge_values(self, values: dict) -> None:
        with self._lock:
            for encoded, value in values.items():
                key = tuple(json.loads(encoded))
                self._values[key] = self._values.get(key, 0.0) + value


class Gauge(_Family):
    """A settable level.  Merging snapshots *sums* gauges: per-shard resident
    counts aggregate to the fleet total."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))

    _render = Counter._render
    _snapshot_values = Counter._snapshot_values
    _merge_values = Counter._merge_values


class Histogram(_Family):
    """A fixed-bucket distribution; bucket arrays merge across processes.

    ``buckets`` are ascending finite upper bounds; an implicit ``+Inf``
    overflow slot is appended.  Each label combination holds ``(counts, sum)``
    where ``counts[i]`` is the number of observations in bucket ``i`` (NOT
    cumulative -- cumulation happens at render time, summation at merge time).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be a non-empty ascending sequence")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        slot = bisect_left(self.buckets, value)
        with self._lock:
            entry = self._values.get(key)
            if entry is None:
                entry = [[0] * (len(self.buckets) + 1), 0.0]
                self._values[key] = entry
            entry[0][slot] += 1
            entry[1] += value

    def totals(self, **labels: object) -> tuple[int, float]:
        """``(count, sum)`` for one label combination (0, 0.0 if unseen)."""
        with self._lock:
            entry = self._values.get(self._key(labels))
            if entry is None:
                return 0, 0.0
            return sum(entry[0]), float(entry[1])

    def bucket_counts(self, **labels: object) -> list[int]:
        """The raw (non-cumulative) bucket array, ``+Inf`` slot included."""
        with self._lock:
            entry = self._values.get(self._key(labels))
            return [0] * (len(self.buckets) + 1) if entry is None else list(entry[0])

    def quantile(self, q: float, **labels: object) -> Optional[float]:
        """Approximate quantile: the upper bound of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        counts = self.bucket_counts(**labels)
        total = sum(counts)
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for slot, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank:
                return self.buckets[slot] if slot < len(self.buckets) else float("inf")
        return float("inf")  # pragma: no cover - defensive

    def percentile(self, q: float, **labels: object) -> Optional[float]:
        """Interpolated quantile (see :func:`percentile_from_buckets`)."""
        return percentile_from_buckets(self.buckets, self.bucket_counts(**labels), q)

    def _render(self) -> Iterable[str]:
        with self._lock:
            items = sorted((key, (list(entry[0]), entry[1])) for key, entry in self._values.items())
        bounds = self.buckets + (float("inf"),)
        for key, (counts, total) in items:
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += count
                labels = _render_labels(
                    self.labelnames, key, extra=f'le="{_format_le(bound)}"'
                )
                yield f"{self.name}_bucket{labels} {cumulative}"
            plain = _render_labels(self.labelnames, key)
            yield f"{self.name}_sum{plain} {_format_value(total)}"
            yield f"{self.name}_count{plain} {cumulative}"

    def _snapshot_values(self) -> dict:
        with self._lock:
            return {
                json.dumps(list(key)): [list(entry[0]), entry[1]]
                for key, entry in self._values.items()
            }

    def _merge_values(self, values: dict) -> None:
        with self._lock:
            for encoded, (counts, total) in values.items():
                key = tuple(json.loads(encoded))
                entry = self._values.get(key)
                if entry is None:
                    entry = [[0] * (len(self.buckets) + 1), 0.0]
                    self._values[key] = entry
                if len(counts) != len(entry[0]):
                    raise ValueError(
                        f"histogram {self.name!r}: cannot merge {len(counts)} buckets "
                        f"into {len(entry[0])}"
                    )
                for slot, count in enumerate(counts):
                    entry[0][slot] += count
                entry[1] += total


class MetricsRegistry:
    """A named set of metric families, renderable and mergeable.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: instrumented
    modules can declare the same family independently and share it (redeclaring
    with a different configuration is an error, not a silent fork).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: "dict[str, _Family]" = {}

    def _get_or_create(self, factory, name: str, help: str, labelnames, **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, factory) or existing.labelnames != tuple(labelnames):
                    raise ValueError(f"metric {name!r} already registered with another shape")
                return existing
            family = factory(name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda family: family.name)
        for family in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(family._render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """A plain picklable dict of every family's configuration and values.

        This is what shard workers ship over the control channel; the parent
        feeds it to :meth:`merge_snapshot`.
        """
        with self._lock:
            families = list(self._families.values())
        payload: dict = {}
        for family in families:
            entry = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "values": family._snapshot_values(),
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
            payload[family.name] = entry
        return payload

    def merge_snapshot(self, snapshot: dict) -> None:
        """Sum a :meth:`snapshot` into this registry (creating families)."""
        factories = {"counter": self.counter, "gauge": self.gauge, "histogram": self.histogram}
        for name, entry in snapshot.items():
            factory = factories.get(entry["kind"])
            if factory is None:
                raise ValueError(f"unknown metric kind {entry['kind']!r} for {name!r}")
            if entry["kind"] == "histogram":
                family = factory(
                    name, entry["help"], entry["labelnames"], buckets=entry["buckets"]
                )
            else:
                family = factory(name, entry["help"], entry["labelnames"])
            family._merge_values(entry["values"])

    def reset(self) -> None:
        """Zero every family's samples, keeping the families registered.

        Values are cleared *in place* so module-level metric handles stay
        valid -- shard workers call this right after the fork to drop the
        counts inherited from the parent without orphaning the ``Counter`` /
        ``Histogram`` objects instrumented modules captured at import time.
        """
        with self._lock:
            families = list(self._families.values())
        for family in families:
            with family._lock:
                family._values.clear()


class SlowQueryLog:
    """A bounded ring buffer of the slowest-looking requests.

    Requests at or above ``threshold_ms`` are recorded (newest last) with
    whatever attribution the caller passes -- the ``/stats`` route surfaces
    the entries so an operator sees *which* queries are slow, not just that
    the latency histogram has a tail.
    """

    def __init__(self, capacity: int = 64, threshold_ms: float = 100.0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.threshold_ms = threshold_ms
        self._lock = threading.Lock()
        self._entries: "deque[dict]" = deque(maxlen=capacity)
        self._recorded = 0

    def maybe_record(self, elapsed_ms: float, **fields: object) -> bool:
        """Record iff ``elapsed_ms`` is at or over the threshold."""
        if elapsed_ms < self.threshold_ms:
            return False
        entry = {"elapsed_ms": round(elapsed_ms, 3), **fields}
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return True

    def entries(self) -> list[dict]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "threshold_ms": self.threshold_ms,
                "recorded": self._recorded,
                "entries": list(self._entries),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._recorded = 0


#: The process-default registry every instrumented subsystem records into.
#: Shard worker processes reset it right after the fork, so worker snapshots
#: never double-count metrics inherited from the parent.
REGISTRY = MetricsRegistry()

#: The process-default slow-query ring buffer (surfaced under ``/stats``).
SLOW_LOG = SlowQueryLog()
