"""An in-process wall-clock sampling profiler (stdlib only, fork-aware).

``py-spy`` is the right tool when you can attach from outside, but the serving
container often can't run a second process (and must not grow a dependency),
so this samples from *within*: a daemon thread wakes ``hz`` times per second,
asks ``sys._current_frames()`` for every thread's stack, and folds each stack
into a ``collapsed`` string (``file:function`` frames joined root-first with
``;`` -- the flamegraph.pl / speedscope "folded" format), counting samples per
distinct stack.  Wall-clock sampling, not CPU: a thread blocked on a lock or a
queue is sampled where it blocks, which is exactly what you want when chasing
tail latency in a mostly-I/O front end.

Cost model: the sampler sleeps between ticks, each tick is one
``sys._current_frames()`` call plus a few dict increments, so an idle profiler
costs nothing and a running one costs roughly ``hz * threads`` frame walks per
second.  The distinct-stack table is bounded (``max_stacks``); overflow samples
are still counted (``dropped``) so totals stay honest.

Sharded serving: each worker process runs its own :data:`PROFILER` (the
parent broadcasts start/stop over the control channel), ships
:meth:`SamplingProfiler.snapshot` dicts back, and the parent sums them with
:func:`merge_snapshots` -- folded stacks merge by adding counts, the same trick
the fixed-bucket histograms use.  Workers call :meth:`SamplingProfiler.reset`
right after the fork: the inherited sampler thread does not survive ``fork``,
so the child must forget it rather than try to join a ghost.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Iterable, Optional

__all__ = ["PROFILER", "SamplingProfiler", "merge_snapshots"]

#: Default sampling frequency.  97 Hz (prime) sidesteps lockstep with common
#: 10ms/100ms periodic work, the same reason perf defaults to 99.
DEFAULT_HZ = 97

#: Hard bounds on accepted frequencies: above ~1 kHz the sampler itself
#: becomes the workload.
MIN_HZ, MAX_HZ = 1, 1000

#: Stop walking a stack past this depth (recursion guards the table size).
MAX_FRAMES = 64


class SamplingProfiler:
    """A start/stop wall-clock sampler aggregating collapsed-stack counts.

    ``start``/``stop`` are idempotent (they return whether the call changed
    anything), so HTTP handlers can be retried safely.  Counts accumulate
    across start/stop cycles until :meth:`clear`.
    """

    def __init__(self, hz: int = DEFAULT_HZ, max_stacks: int = 10_000):
        self.default_hz = hz
        self.max_stacks = max_stacks
        self._lock = threading.Lock()
        self._init_state()

    def _init_state(self) -> None:
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[threading.Event] = None
        self.hz = self.default_hz
        self._stacks: dict[str, int] = {}
        self._samples = 0
        self._dropped = 0
        self._started_at: Optional[float] = None
        self._active_seconds = 0.0

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None

    def start(self, hz: Optional[int] = None) -> bool:
        """Begin sampling; returns ``False`` (no-op) if already running."""
        if hz is not None and not MIN_HZ <= int(hz) <= MAX_HZ:
            raise ValueError(f"profiler hz must be in [{MIN_HZ}, {MAX_HZ}], got {hz}")
        with self._lock:
            if self._thread is not None:
                return False
            if hz is not None:
                self.hz = int(hz)
            stop_event = threading.Event()
            thread = threading.Thread(
                target=self._run,
                args=(stop_event, 1.0 / self.hz),
                name="cq-trees-profiler",
                daemon=True,
            )
            self._stop_event = stop_event
            self._thread = thread
            self._started_at = time.perf_counter()
            thread.start()
            return True

    def stop(self) -> bool:
        """Stop sampling; returns ``False`` (no-op) if not running."""
        with self._lock:
            thread, stop_event = self._thread, self._stop_event
            if thread is None:
                return False
            self._thread = None
            self._stop_event = None
            if self._started_at is not None:
                self._active_seconds += time.perf_counter() - self._started_at
                self._started_at = None
        stop_event.set()
        thread.join(timeout=2.0)
        return True

    def clear(self) -> None:
        """Drop accumulated samples (a running sampler keeps running)."""
        with self._lock:
            self._stacks = {}
            self._samples = 0
            self._dropped = 0
            self._active_seconds = 0.0
            if self._thread is not None:
                self._started_at = time.perf_counter()

    def reset(self) -> None:
        """Forget everything *including* the sampler thread handle.

        For forked children only: the thread object inherited from the parent
        is not alive in the child, so ``stop`` must not try to join it.
        """
        with self._lock:
            self._init_state()

    # -- sampling --------------------------------------------------------------

    def _run(self, stop_event: threading.Event, interval: float) -> None:
        own_ident = threading.get_ident()
        while not stop_event.wait(interval):
            self._sample(own_ident)

    def _sample(self, skip_ident: int) -> None:
        folded = []
        for ident, frame in sys._current_frames().items():
            if ident == skip_ident:
                continue
            parts = []
            while frame is not None and len(parts) < MAX_FRAMES:
                code = frame.f_code
                parts.append(f"{os.path.basename(code.co_filename)}:{code.co_name}")
                frame = frame.f_back
            parts.reverse()
            folded.append(";".join(parts))
        with self._lock:
            for stack in folded:
                self._samples += 1
                if stack in self._stacks:
                    self._stacks[stack] += 1
                elif len(self._stacks) < self.max_stacks:
                    self._stacks[stack] = 1
                else:
                    self._dropped += 1

    # -- reporting -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain picklable dict: state + folded-stack counts."""
        with self._lock:
            active = self._active_seconds
            if self._started_at is not None:
                active += time.perf_counter() - self._started_at
            return {
                "running": self._thread is not None,
                "hz": self.hz,
                "samples": self._samples,
                "dropped": self._dropped,
                "active_seconds": round(active, 3),
                "stacks": dict(self._stacks),
            }

    def control(self, action: str, hz: Optional[int] = None) -> dict:
        """Apply a start/stop/clear action; returns status (stacks omitted)."""
        if action == "start":
            changed = self.start(hz)
        elif action == "stop":
            changed = self.stop()
        elif action == "clear":
            self.clear()
            changed = True
        else:
            raise ValueError(f"unknown profiler action {action!r} (start|stop|clear)")
        status = self.snapshot()
        del status["stacks"]
        return {"action": action, "changed": changed, **status}


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Sum profiler snapshots across a fleet (folded stacks add up).

    ``running`` is true if any member is sampling; ``active_seconds`` is the
    max (members sample concurrently, so wall-clock does not add).
    """
    merged: dict = {
        "running": False,
        "hz": None,
        "samples": 0,
        "dropped": 0,
        "active_seconds": 0.0,
        "stacks": {},
    }
    for snapshot in snapshots:
        merged["running"] = merged["running"] or snapshot.get("running", False)
        if merged["hz"] is None:
            merged["hz"] = snapshot.get("hz")
        merged["samples"] += snapshot.get("samples", 0)
        merged["dropped"] += snapshot.get("dropped", 0)
        merged["active_seconds"] = max(
            merged["active_seconds"], snapshot.get("active_seconds", 0.0)
        )
        for stack, count in snapshot.get("stacks", {}).items():
            merged["stacks"][stack] = merged["stacks"].get(stack, 0) + count
    return merged


#: The process-default profiler (one sampler per process is the model:
#: shard workers each run their own and the parent merges snapshots).
PROFILER = SamplingProfiler()
