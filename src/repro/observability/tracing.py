"""Context-local tracing spans for request debugging.

A trace is a tree of :class:`Span` nodes recorded while a request executes:
``request -> parse -> compile -> decompose -> propagate -> enumerate`` (or the
SQL-lowering path).  The active span lives in a :class:`contextvars.ContextVar`,
so the instrumentation composes across threads (each request thread gets its
own context) and across ``async`` tasks for free, and crosses the shard
process boundary as a plain dict (``Span.to_json_dict`` is picklable JSON).

The design constraint is zero overhead when nobody asked for a trace: the
:func:`span` context manager checks the context variable and yields ``None``
immediately when no trace is active -- instrumented code never branches on a
flag itself, it just writes ``with span("propagate"):`` unconditionally.
Tracing only activates inside a ``with trace("request") as root:`` block,
which :func:`repro.service.core.run_request` opens when the request sets
``debug: true``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Span", "trace", "span", "annotate", "is_active", "current_span", "suppress"]


@dataclass
class Span:
    """One timed node in a trace tree."""

    name: str
    attributes: dict = field(default_factory=dict)
    elapsed_ms: float = 0.0
    children: "list[Span]" = field(default_factory=list)

    def to_json_dict(self) -> dict:
        payload: dict = {"name": self.name, "elapsed_ms": round(self.elapsed_ms, 3)}
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_json_dict() for child in self.children]
        return payload

    def find(self, name: str) -> "Optional[Span]":
        """Depth-first lookup by span name (handy in tests)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


_ACTIVE: "ContextVar[Optional[Span]]" = ContextVar("repro_active_span", default=None)


def is_active() -> bool:
    """True when a trace is being recorded in this context."""
    return _ACTIVE.get() is not None


def current_span() -> Optional[Span]:
    return _ACTIVE.get()


@contextmanager
def trace(name: str, **attributes: object) -> Iterator[Span]:
    """Open a root span and activate tracing for the dynamic extent."""
    root = Span(name, attributes=dict(attributes))
    token = _ACTIVE.set(root)
    started = time.perf_counter()
    try:
        yield root
    finally:
        root.elapsed_ms = (time.perf_counter() - started) * 1000.0
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, **attributes: object) -> Iterator[Optional[Span]]:
    """Record a child span under the active one; no-op without a trace."""
    parent = _ACTIVE.get()
    if parent is None:
        yield None
        return
    child = Span(name, attributes=dict(attributes))
    parent.children.append(child)
    token = _ACTIVE.set(child)
    started = time.perf_counter()
    try:
        yield child
    finally:
        child.elapsed_ms = (time.perf_counter() - started) * 1000.0
        _ACTIVE.reset(token)


def annotate(**attributes: object) -> None:
    """Attach attributes to the innermost active span (no-op otherwise)."""
    active = _ACTIVE.get()
    if active is not None:
        active.attributes.update(attributes)


@contextmanager
def suppress() -> Iterator[None]:
    """Deactivate tracing for the dynamic extent.

    Hot per-candidate loops (the planner's Boolean-reduction checks) would
    otherwise record one ``propagate`` span per candidate tuple -- thousands
    of nodes that bury the request tree.  The loop suppresses, the wrapping
    ``enumerate`` span keeps the aggregate timing.
    """
    token = _ACTIVE.set(None)
    try:
        yield
    finally:
        _ACTIVE.reset(token)
