"""Cost-based query planning: one :class:`QueryPlan` across every consumer.

The dichotomy (acyclic / X-property / bounded width) says *which* algorithm is
polynomial; this package decides *which is fastest on this document*.  It
combines cheap per-document statistics collected at registration
(:class:`~repro.planning.stats.DocumentStats`) with per-axis selectivity
estimates derived from the pre/post rank characterizations
(:mod:`repro.planning.cost`) into a single :class:`~repro.planning.plan.QueryPlan`
value -- engine, propagator, SQL lowering, decomposition, per-bag cardinality
estimates and an estimated cost -- consumed by the serving layer, the CLI and
the EXPLAIN surface.  The previous hard-coded rules survive as the
``routing="static"`` ablation, byte-identical by construction (every engine
and propagator computes the same answer set).
"""

from .cost import (
    MATERIALIZE_ROWS_THRESHOLD,
    backtracking_cost_estimate,
    bag_rows_estimate,
    choose_propagator,
    decomposition_cost_estimate,
    fixpoint_cost_estimate,
    flat_cost_estimate,
    variable_domain_estimate,
)
from .plan import ROUTINGS, QueryPlan, plan_query, validate_routing
from .stats import DocumentStats

__all__ = [
    "DocumentStats",
    "MATERIALIZE_ROWS_THRESHOLD",
    "QueryPlan",
    "ROUTINGS",
    "backtracking_cost_estimate",
    "bag_rows_estimate",
    "choose_propagator",
    "decomposition_cost_estimate",
    "fixpoint_cost_estimate",
    "flat_cost_estimate",
    "plan_query",
    "validate_routing",
    "variable_domain_estimate",
]
