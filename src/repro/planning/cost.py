"""Cardinality and cost estimates from pre/post rank characterizations.

Every estimate here comes from two sources the reproduction already has:

* **axis geometry** -- the pre/post rank characterizations of Section 2 bound
  the average partner count of each axis in closed form.  A node has exactly
  one parent, at most one next sibling and one document-order successor
  (partner ``~ 1``); its proper descendants average ``sum(depth) / n =
  depth_avg`` (each node is counted once per proper ancestor); its later
  siblings average about ``fanout_avg / 2``; and ``Following`` /
  ``DocumentOrder`` pair each node with about half the document;
* **label selectivity** -- the registration-time label histogram
  (:class:`~repro.planning.stats.DocumentStats`), giving per-variable domain
  sizes.

These feed an ``n^(width+1)``-style bag cardinality estimator
(:func:`bag_rows_estimate`) that mirrors the greedy cheapest-connection order
the static width-tie DP already uses (:func:`repro.decomposition.decompose._bag_cost`)
but with *measured* quantities in place of fixed axis weights -- the
per-instance, domain-aware half the ROADMAP left open.
"""

from __future__ import annotations

from typing import Optional

from ..decomposition.decompose import TreeDecomposition
from ..evaluation.compile import CompiledAtom, CompiledQuery
from ..evaluation.propagation import Propagator
from ..trees.axes import Axis
from .stats import DocumentStats

#: Estimated bag-relation rows above which the SQL lowering materializes the
#: bag as an indexed TEMP table instead of a plain CTE (satellite: the
#: ``ablation_cycle4`` dense-cycle gap, where SQLite re-evaluates large bag
#: CTEs inside correlated subqueries).  Below this the whole query runs in
#: milliseconds and the TEMP-table setup is pure overhead (measured ~1.3x on
#: 500-node documents at a 10k threshold), so the bar sits where bag CTEs
#: genuinely reach the re-evaluation regime.
MATERIALIZE_ROWS_THRESHOLD = 100_000.0


def _partner_estimate(axis: Axis, stats: DocumentStats) -> float:
    """Average ``|{v : axis(u, v)}|`` over nodes ``u`` (forward axes).

    Compiled queries only contain forward axes (inverses are normalized away
    with the endpoints swapped), and each estimate below is symmetric enough
    on average -- e.g. average ancestors per node equals average descendants
    per node, both ``sum(depth) / n`` -- that one number serves both
    directions.
    """
    if axis in (Axis.SELF, Axis.NEXT_SIBLING, Axis.SUCC_PRE, Axis.CHILD):
        # Child averages <1 partner downward but exactly 1 upward; 1 is the
        # safe symmetric figure for all four point-like axes.
        return 1.0
    if axis is Axis.CHILD_PLUS:
        return max(stats.depth_avg, 0.5)
    if axis is Axis.CHILD_STAR:
        return stats.depth_avg + 1.0
    if axis in (Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR):
        return max(stats.fanout_avg / 2.0, 0.5)
    # Following / DocumentOrder (and any enumeration fallback): half the tree.
    return max(stats.nodes / 2.0, 1.0)


def variable_domain_estimate(
    variable: str, compiled: CompiledQuery, stats: DocumentStats
) -> float:
    """Estimated candidate-domain size of ``variable`` before propagation.

    The most selective label wins (initial domains intersect all labels, so
    the minimum is an upper bound that is exact for single-label variables);
    unlabeled variables range over the whole document.  Labels unknown to
    approximate stats fall back to the full domain rather than zero.
    """
    counts = []
    for label in compiled.labels_by_variable.get(variable, ()):
        count = stats.label_count(label)
        if count is not None:
            counts.append(count)
    if not counts:
        return float(stats.nodes)
    return float(max(min(counts), 1))


def _cheapest_connection(
    variable: str,
    placed: set[str],
    atoms_by_pair: dict[frozenset[str], list[CompiledAtom]],
    stats: DocumentStats,
) -> Optional[float]:
    """Min partner estimate over atoms connecting ``variable`` to ``placed``."""
    best: Optional[float] = None
    for other in placed:
        for atom in atoms_by_pair.get(frozenset((variable, other)), ()):
            estimate = _partner_estimate(atom.axis, stats)
            if best is None or estimate < best:
                best = estimate
    return best


def bag_rows_estimate(
    bag: frozenset[str], compiled: CompiledQuery, stats: DocumentStats
) -> float:
    """Estimated rows of the bag relation (all satisfying tuples over ``bag``).

    Greedy join-order estimate mirroring ``_bag_cost``'s cheapest-connection
    order: start from each variable in turn, repeatedly add the variable with
    the cheapest extension, and take the minimum over starts.  Extending by
    ``v`` through an atom with partner estimate ``p`` multiplies rows by
    ``min(domain(v), p * domain(v) / n)`` -- the axis fan-out capped by the
    label filter -- and a fill edge (no atom) multiplies by ``domain(v)``
    outright, the cartesian ``n^(width+1)`` term decompositions are priced by.
    """
    variables = sorted(bag)
    if not variables:
        return 1.0
    domains = {v: variable_domain_estimate(v, compiled, stats) for v in variables}
    if len(variables) == 1:
        return max(domains[variables[0]], 1.0)

    atoms_by_pair: dict[frozenset[str], list[CompiledAtom]] = {}
    for atom in compiled.edges:
        if atom.source in bag and atom.target in bag:
            atoms_by_pair.setdefault(frozenset((atom.source, atom.target)), []).append(atom)

    n = float(max(stats.nodes, 1))
    best_rows: Optional[float] = None
    for start in variables:
        rows = domains[start]
        placed = {start}
        remaining = [v for v in variables if v != start]
        while remaining:
            step_rows: Optional[float] = None
            step_variable = remaining[0]
            for v in remaining:
                cheapest = _cheapest_connection(v, placed, atoms_by_pair, stats)
                if cheapest is None:
                    candidate = domains[v]  # fill edge: cartesian extension
                else:
                    candidate = min(domains[v], cheapest * domains[v] / n)
                if step_rows is None or candidate < step_rows:
                    step_rows, step_variable = candidate, v
            rows *= max(step_rows, 1e-6) if step_rows is not None else 1.0
            placed.add(step_variable)
            remaining.remove(step_variable)
        if best_rows is None or rows < best_rows:
            best_rows = rows
    return max(best_rows if best_rows is not None else 1.0, 1.0)


def decomposition_cost_estimate(
    decomposition: TreeDecomposition, compiled: CompiledQuery, stats: DocumentStats
) -> tuple[tuple[float, ...], float]:
    """Per-bag row estimates and their sum (the Yannakakis pass is linear in both)."""
    bag_rows = tuple(bag_rows_estimate(bag, compiled, stats) for bag in decomposition.bags)
    return bag_rows, max(sum(bag_rows), 1.0)


def fixpoint_cost_estimate(compiled: CompiledQuery, stats: DocumentStats) -> float:
    """One arc-consistency fixpoint: roughly nodes x atoms work."""
    return float(stats.nodes) * max(1, len(compiled.atoms))


def backtracking_cost_estimate(compiled: CompiledQuery, stats: DocumentStats) -> float:
    """Cost of the backtracking engine as the serving layer actually runs it.

    Boolean queries cost about two fixpoints (propagate, then first-witness
    search over the pruned domains).  Monadic queries over forest-shaped
    constraint graphs project the fixpoint directly.  Everything else pays the
    candidate-product: the product of distinct head-variable domain estimates,
    times a per-candidate satisfiability check priced as one fixpoint.
    """
    fixpoint = fixpoint_cost_estimate(compiled, stats)
    head = compiled.query.head
    if not head:
        return 2.0 * fixpoint
    if len(head) == 1 and compiled.shadow_is_forest:
        return fixpoint
    product = 1.0
    for variable in dict.fromkeys(head):
        product *= max(variable_domain_estimate(variable, compiled, stats), 1.0)
    return product * fixpoint


def flat_cost_estimate(compiled: CompiledQuery, stats: DocumentStats) -> float:
    """The flat (single-block) SQL lowering: one join over all variables."""
    return bag_rows_estimate(frozenset(compiled.variables), compiled, stats)


def choose_propagator(compiled: CompiledQuery) -> Propagator:
    """Propagator pick backed by the BENCH_ac4 ``ablation_hybrid`` ablation.

    Hybrid wins when some edge joins two unlabeled (full-domain) variables
    over a non-global axis -- AC-4's support counters are quadratic to seed
    exactly there, while the interval representation stays closed-form.  On
    global axes (``Following``, ``DocumentOrder``) AC-4 keeps a measured
    9.4x-vs-3.5x edge over the hybrid on deep chains, so those stay AC-4.
    """
    for atom in compiled.edges:
        if atom.axis in (Axis.FOLLOWING, Axis.DOCUMENT_ORDER):
            continue
        if not compiled.labels_by_variable.get(
            atom.source
        ) and not compiled.labels_by_variable.get(atom.target):
            return Propagator.HYBRID
    return Propagator.AC4
