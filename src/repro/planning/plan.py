"""The :class:`QueryPlan` value and the routing decision that produces it.

``plan_query`` is the single choke point every consumer (serving layer, CLI,
EXPLAIN, benchmarks) goes through.  Two routings exist:

* ``routing="cost"`` (the default) keeps the dichotomy's *complexity* tiers
  exactly as the static rule picks them -- X-property signatures, acyclic
  shadows and accel-only SQL are already the right asymptotic class and stay
  static -- and spends the estimates where the static rule was guessing:

  - the cyclic residue: ``MAX_AUTO_DECOMPOSITION_WIDTH`` is replaced by
    comparing the estimated decomposition cost (sum of per-bag row
    estimates) against the estimated backtracking cost on *this* document;
  - the SQL lowering: ``"flat"`` when the single-block join is estimated
    cheaper than the join-tree CTE cascade, plus TEMP-table materialization
    of large bags;
  - the propagator: hybrid where the AC-4 ablations show it winning.

* ``routing="static"`` reproduces the pre-planner behaviour bit for bit
  (static engine rule, AC-4, tree lowering, no materialization) and is kept
  on every entry point as the ablation baseline.  Answers are byte-identical
  under both routings by construction: every engine and propagator computes
  the same answer set.

Plans are pure functions of (canonical query, stats bucket, overrides), which
is what makes them cacheable in :class:`~repro.service.cache.QueryCache` and
alpha-renaming invariant (planning happens after canonicalization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..evaluation.compile import CompiledQuery, compile_query
from ..evaluation.planner import Engine, choose_engine
from ..evaluation.propagation import DEFAULT_PROPAGATOR, Propagator
from ..queries.query import ConjunctiveQuery
from .cost import (
    MATERIALIZE_ROWS_THRESHOLD,
    backtracking_cost_estimate,
    choose_propagator,
    decomposition_cost_estimate,
    fixpoint_cost_estimate,
    flat_cost_estimate,
)
from .stats import DocumentStats

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..decomposition.decompose import TreeDecomposition

#: Accepted values of the ``routing`` knob on every entry point.
ROUTINGS: tuple[str, ...] = ("cost", "static")

#: Engine tiers the cost router never second-guesses: they are the *complexity*
#: dispatch (tractable signature / acyclic shadow / residency), not a
#: performance guess.  Only the cyclic residue (decomposition vs backtracking)
#: is arbitrated by estimates.
_STATIC_TIERS = frozenset({Engine.XPROPERTY, Engine.ACYCLIC, Engine.SQL})


def validate_routing(value: str) -> str:
    """Validate a wire/CLI ``routing`` value."""
    if value not in ROUTINGS:
        raise ValueError(f"unknown routing: {value!r} (expected one of {ROUTINGS})")
    return value


@dataclass(frozen=True, eq=False)
class QueryPlan:
    """Everything downstream needs to run (and explain) one query on one document."""

    routing: str
    engine: Engine
    propagator: Propagator
    #: SQL lowering shape; meaningful only when ``engine`` is SQL but always
    #: reported so EXPLAIN shows the lowering that *would* run.
    lowering: str
    #: Materialize large bag CTEs as indexed TEMP tables (SQL tree lowering).
    materialize: bool
    decomposition: "TreeDecomposition"
    stats_bucket: str
    #: Estimated rows per decomposition bag, in ``decomposition.bags`` order.
    bag_rows: tuple[float, ...]
    decomposition_cost: float
    backtracking_cost: float
    tree_cost: float
    flat_cost: float
    #: The estimate for the engine/lowering actually chosen.
    estimated_cost: float

    def accounting_fields(self) -> dict:
        """The plan attribution the plan-vs-actual ledger records per request.

        ``estimated_rows`` is the widest bag: the cost model's proxy for the
        largest intermediate this plan expects to materialize (the quantity
        the Gottlob-Leone-Scarcello width bound actually controls), which is
        the number worth comparing against the rows the request enumerated.
        """
        return {
            "engine": self.engine.value,
            "propagator": self.propagator.value,
            "lowering": self.lowering,
            "routing": self.routing,
            "stats_bucket": self.stats_bucket,
            "estimated_cost": self.estimated_cost,
            "estimated_rows": max(self.bag_rows) if self.bag_rows else 0.0,
        }

    def describe(self) -> dict:
        """JSON-friendly rendering for EXPLAIN surfaces."""
        return {
            "routing": self.routing,
            "engine": self.engine.value,
            "propagator": self.propagator.value,
            "lowering": self.lowering,
            "materialize": self.materialize,
            "stats_bucket": self.stats_bucket,
            "estimates": {
                "bag_rows": [round(rows, 1) for rows in self.bag_rows],
                "decomposition_cost": round(self.decomposition_cost, 1),
                "backtracking_cost": round(self.backtracking_cost, 1),
                "tree_cost": round(self.tree_cost, 1),
                "flat_cost": round(self.flat_cost, 1),
                "estimated_cost": round(self.estimated_cost, 1),
            },
        }


def plan_query(
    query: ConjunctiveQuery,
    stats: DocumentStats,
    *,
    compiled: Optional[CompiledQuery] = None,
    routing: str = "cost",
    engine: Optional[Engine] = None,
    propagator: Optional[Propagator] = None,
    accel_only: bool = False,
) -> QueryPlan:
    """Produce the :class:`QueryPlan` for ``query`` over a document with ``stats``.

    ``engine`` / ``propagator`` are explicit user overrides and always win
    over both routings.  ``accel_only`` is the residency signal: such
    documents can only run on the SQL backend, so the engine tier is pinned
    there regardless of routing.
    """
    validate_routing(routing)
    if compiled is None:
        compiled = compile_query(query)

    decomposition = compiled.decomposition
    bag_rows, decomposition_total = decomposition_cost_estimate(decomposition, compiled, stats)
    backtracking_total = backtracking_cost_estimate(compiled, stats)
    tree_cost = decomposition_total
    flat_cost = flat_cost_estimate(compiled, stats)
    fixpoint = fixpoint_cost_estimate(compiled, stats)

    static_engine = choose_engine(query, accel_only=accel_only)
    if engine is not None and engine is not Engine.AUTO:
        chosen_engine = engine
    elif routing == "static" or static_engine in _STATIC_TIERS:
        chosen_engine = static_engine
    else:
        # The cyclic residue: per-instance decomposition-vs-backtracking
        # arbitration, replacing the static MAX_AUTO_DECOMPOSITION_WIDTH bound.
        chosen_engine = (
            Engine.DECOMPOSITION
            if decomposition_total <= backtracking_total
            else Engine.BACKTRACKING
        )

    if propagator is not None:
        chosen_propagator = propagator
    elif routing == "cost":
        chosen_propagator = choose_propagator(compiled)
    else:
        chosen_propagator = DEFAULT_PROPAGATOR

    if routing == "cost":
        lowering = "flat" if flat_cost < tree_cost else "tree"
        materialize = (
            chosen_engine is Engine.SQL
            and lowering == "tree"
            and bool(bag_rows)
            and max(bag_rows) > MATERIALIZE_ROWS_THRESHOLD
        )
    else:
        lowering = "tree"
        materialize = False

    if chosen_engine is Engine.SQL:
        estimated = flat_cost if lowering == "flat" else tree_cost
    elif chosen_engine is Engine.DECOMPOSITION:
        estimated = decomposition_total
    elif chosen_engine is Engine.BACKTRACKING:
        estimated = backtracking_total
    else:  # XPROPERTY / ACYCLIC: fixpoint-driven evaluation.
        estimated = fixpoint

    return QueryPlan(
        routing=routing,
        engine=chosen_engine,
        propagator=chosen_propagator,
        lowering=lowering,
        materialize=materialize,
        decomposition=decomposition,
        stats_bucket=stats.bucket(),
        bag_rows=bag_rows,
        decomposition_cost=decomposition_total,
        backtracking_cost=backtracking_total,
        tree_cost=tree_cost,
        flat_cost=flat_cost,
        estimated_cost=estimated,
    )
