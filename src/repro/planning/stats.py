"""Per-document statistics feeding the cost-based planner.

Collected once at registration (:meth:`DocumentStore.register_tree` forces the
axis index anyway, so every input here is one O(n) array sweep away): node
count, depth and fanout profiles, and the label-frequency histogram.  Two
derived quantities matter downstream:

* the **average depth** doubles as the average descendant count -- summing
  ``|descendants(v)|`` over all nodes counts each node once per proper
  ancestor, i.e. ``sum(depth)`` -- which calibrates the subtree axes
  (``Child+``, ``Child*``, ``Ancestor``);
* the **label histogram** gives per-variable domain selectivities
  (``count(label) / n``).

Plans are cached per canonical query x *stats bucket*
(:meth:`DocumentStats.bucket`): a stable string of log-scale size classes plus
a digest of the log-bucketed histogram.  Re-registering a document with a
materially different tree lands in a different bucket, so cached plans
invalidate naturally; cosmetic changes (a handful of nodes) keep the bucket
and reuse the plan.

Accel-only documents have no resident tree, only a node count
(:meth:`DocumentStats.approximate`): shape statistics fall back to
balanced-tree heuristics and unknown labels to the full domain, and the
bucket is marked approximate so it never collides with measured stats.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..trees.tree import Tree


def _log_bucket(value: float) -> int:
    """A power-of-two size class: 0, 1, 2, 4, 8, ... collapse to 0, 1, 2, 3, 4."""
    if value < 1:
        return 0
    return int(value).bit_length()


@dataclass(frozen=True, eq=False)
class DocumentStats:
    """Cheap per-document shape statistics (one O(n) pass at registration)."""

    nodes: int
    depth_max: int
    depth_avg: float
    fanout_max: int
    fanout_avg: float
    #: Nodes per label name (the inverted-index sizes).
    label_counts: Mapping[str, int] = field(default_factory=dict)
    #: True when derived from a node count alone (accel-only documents).
    approximate: bool = False

    @classmethod
    def of_tree(cls, tree: Tree) -> "DocumentStats":
        """Measure a finalised tree (register-time: the arrays already exist)."""
        n = len(tree)
        depths = tree.depth
        fanouts = [len(children) for children in tree.children_of]
        internal = sum(1 for fanout in fanouts if fanout)
        return cls(
            nodes=n,
            depth_max=max(depths),
            depth_avg=sum(depths) / n,
            fanout_max=max(fanouts),
            fanout_avg=(n - 1) / internal if internal else 0.0,
            label_counts={
                label: len(tree.nodes_with_label(label)) for label in sorted(tree.alphabet())
            },
        )

    @classmethod
    def approximate_from_nodes(cls, nodes: int) -> "DocumentStats":
        """Balanced-shape heuristics for a document known only by node count."""
        nodes = max(1, nodes)
        log_n = max(1.0, math.log2(nodes)) if nodes > 1 else 0.0
        return cls(
            nodes=nodes,
            depth_max=int(2 * log_n),
            depth_avg=log_n,
            fanout_max=max(2, int(log_n)),
            fanout_avg=2.0 if nodes > 1 else 0.0,
            label_counts={},
            approximate=True,
        )

    def label_count(self, label: str) -> Optional[int]:
        """Nodes carrying ``label``; ``None`` when unknown (approximate stats)."""
        if self.approximate and label not in self.label_counts:
            return None
        return self.label_counts.get(label, 0)

    def bucket(self) -> str:
        """The plan-cache key component: log-scale size classes plus a label digest.

        Stable across cosmetic re-registrations, different whenever the tree
        changed materially (node-count, depth or fanout size class, or any
        label's frequency class) -- which is exactly the plan-invalidation
        granularity the cache wants.
        """
        histogram = sorted(
            (label, _log_bucket(count)) for label, count in self.label_counts.items()
        )
        digest = zlib.crc32(repr(histogram).encode("utf-8")) & 0xFFFFFFFF
        prefix = "~" if self.approximate else ""
        return (
            f"{prefix}n{_log_bucket(self.nodes)}"
            f"d{_log_bucket(self.depth_max)}"
            f"f{_log_bucket(self.fanout_max)}"
            f"L{digest:08x}"
        )

    def describe(self) -> dict:
        """A JSON-friendly rendering (the EXPLAIN surface)."""
        return {
            "nodes": self.nodes,
            "depth_max": self.depth_max,
            "depth_avg": round(self.depth_avg, 3),
            "fanout_max": self.fanout_max,
            "fanout_avg": round(self.fanout_avg, 3),
            "labels": len(self.label_counts),
            "approximate": self.approximate,
            "bucket": self.bucket(),
        }
