"""Query model: conjunctive queries, query graphs, APQs, parsing, XPath."""

from .apq import UnionQuery, as_union
from .atoms import Atom, AxisAtom, LabelAtom, Variable, axis, label
from .canonical import canonical_key, canonicalize
from .simplify import simplify_query
from .containment import (
    answers_on,
    contained_on,
    contained_on_samples,
    contained_on_trees,
    equivalent_on_samples,
    equivalent_on_trees,
)
from .graph import QueryGraph, has_directed_cycle, is_acyclic
from .parser import QueryParseError, parse_query
from .query import ConjunctiveQuery, QueryBuilder, axis_chain
from .xpath import XPathTranslationError, apq_to_xpath, cq_to_xpath, xpath_to_cq

__all__ = [
    "Atom",
    "AxisAtom",
    "ConjunctiveQuery",
    "LabelAtom",
    "QueryBuilder",
    "QueryGraph",
    "QueryParseError",
    "UnionQuery",
    "Variable",
    "XPathTranslationError",
    "answers_on",
    "apq_to_xpath",
    "as_union",
    "axis",
    "axis_chain",
    "canonical_key",
    "canonicalize",
    "simplify_query",
    "contained_on",
    "contained_on_samples",
    "contained_on_trees",
    "cq_to_xpath",
    "equivalent_on_samples",
    "equivalent_on_trees",
    "has_directed_cycle",
    "is_acyclic",
    "label",
    "parse_query",
    "xpath_to_cq",
]
