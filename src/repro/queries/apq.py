"""Positive queries and acyclic positive queries (Section 6).

* ``PQ[F]``  -- positive queries: finite unions of conjunctive queries over F,
* ``APQ[F]`` -- acyclic positive queries: unions of *acyclic* conjunctive
  queries over F.

:class:`UnionQuery` represents either; :meth:`UnionQuery.is_acyclic` tells
whether it qualifies as an APQ.  The size of an APQ is the sum of the sizes of
its constituent conjunctive queries (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..trees.structure import Signature
from .graph import is_acyclic
from .query import ConjunctiveQuery


@dataclass(frozen=True)
class UnionQuery:
    """A finite union of conjunctive queries with a common arity."""

    disjuncts: tuple[ConjunctiveQuery, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        arities = {query.arity for query in self.disjuncts}
        if len(arities) > 1:
            raise ValueError(f"all disjuncts must share one arity, got {sorted(arities)}")

    @classmethod
    def of(cls, *queries: ConjunctiveQuery, name: str = "Q") -> "UnionQuery":
        return cls(tuple(queries), name)

    @classmethod
    def from_iterable(
        cls, queries: Iterable[ConjunctiveQuery], name: str = "Q"
    ) -> "UnionQuery":
        return cls(tuple(queries), name)

    # -- structure -------------------------------------------------------------

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity if self.disjuncts else 0

    @property
    def is_boolean(self) -> bool:
        return self.arity == 0

    def is_empty(self) -> bool:
        """An empty union is the unsatisfiable query."""
        return not self.disjuncts

    def is_acyclic(self) -> bool:
        """True iff every disjunct is acyclic, i.e. the union is an APQ."""
        return all(is_acyclic(query) for query in self.disjuncts)

    def signature(self) -> Signature:
        axes = frozenset()
        for query in self.disjuncts:
            axes |= query.signature().axes
        return Signature(axes)

    def size(self) -> int:
        """Sum of constituent query sizes (the Section 7 size measure)."""
        return sum(query.size() for query in self.disjuncts)

    # -- simplification --------------------------------------------------------

    def deduplicated(self) -> "UnionQuery":
        """Remove syntactically duplicate disjuncts (same head, same atom set)."""
        seen: set[tuple] = set()
        kept: list[ConjunctiveQuery] = []
        for query in self.disjuncts:
            key = (query.head, frozenset(query.body))
            if key not in seen:
                seen.add(key)
                kept.append(query)
        return UnionQuery(tuple(kept), self.name)

    def union(self, other: "UnionQuery") -> "UnionQuery":
        return UnionQuery(self.disjuncts + other.disjuncts, self.name)

    def __str__(self) -> str:
        if not self.disjuncts:
            return f"{self.name}: (empty union / unsatisfiable)"
        return "\n UNION \n".join(str(query) for query in self.disjuncts)


def as_union(query: ConjunctiveQuery | UnionQuery) -> UnionQuery:
    """Lift a single conjunctive query to a one-disjunct union."""
    if isinstance(query, UnionQuery):
        return query
    return UnionQuery((query,), query.name)
