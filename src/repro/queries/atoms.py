"""Query atoms: unary label atoms and binary axis atoms.

A conjunctive query body is a set of atoms over variables (Section 2).  Two
kinds of atoms appear in the paper:

* ``Label_a(x)`` -- written here as :class:`LabelAtom` with ``label = "a"``,
* ``R(x, y)`` for ``R`` an axis -- written here as :class:`AxisAtom`.

Both are immutable and hashable so that query bodies can be represented as
(ordered) tuples and used in sets during rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..trees.axes import Axis


Variable = str


@dataclass(frozen=True, order=True)
class LabelAtom:
    """A unary atom ``label(variable)``.

    ``label`` may be a tree label or the name of an extra unary relation of
    the structure (e.g. a singleton relation used for pinning answers).
    """

    label: str
    variable: Variable

    def variables(self) -> tuple[Variable, ...]:
        return (self.variable,)

    def rename(self, mapping: dict[Variable, Variable]) -> "LabelAtom":
        return LabelAtom(self.label, mapping.get(self.variable, self.variable))

    def __str__(self) -> str:
        return f"{self.label}({self.variable})"


@dataclass(frozen=True, order=True)
class AxisAtom:
    """A binary atom ``axis(source, target)``."""

    axis: Axis
    source: Variable
    target: Variable

    def variables(self) -> tuple[Variable, ...]:
        return (self.source, self.target)

    def rename(self, mapping: dict[Variable, Variable]) -> "AxisAtom":
        return AxisAtom(
            self.axis,
            mapping.get(self.source, self.source),
            mapping.get(self.target, self.target),
        )

    def is_loop(self) -> bool:
        return self.source == self.target

    def __str__(self) -> str:
        return f"{self.axis.value}({self.source}, {self.target})"


Atom = Union[LabelAtom, AxisAtom]


def label(label_name: str, variable: Variable) -> LabelAtom:
    """Shorthand constructor for a unary atom."""
    return LabelAtom(label_name, variable)


def axis(axis_value: Axis, source: Variable, target: Variable) -> AxisAtom:
    """Shorthand constructor for a binary atom."""
    return AxisAtom(axis_value, source, target)
