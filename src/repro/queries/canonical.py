"""Renaming-invariant canonical forms of conjunctive queries.

The serving layer memoizes parse -> compile -> plan per query
(:mod:`repro.service.cache`), and clients routinely resubmit queries that are
textually different but *alpha-equivalent*: same head arity, same body up to a
bijective renaming of variables and a reordering of atoms.  Such queries have
identical answer sets (answers are tuples of nodes indexed by head position,
never by variable name), so they should share one cache entry -- and, since
:func:`repro.evaluation.compile.compile_query` memoizes on the query *value*,
one compiled artifact.

:func:`canonicalize` maps every query to the unique representative of its
alpha-equivalence class:

* the query name is dropped (it never affects evaluation),
* head variables are renamed ``v0, v1, ...`` in order of first head occurrence
  (head *positions* are semantic: ``Q(x, y)`` and ``Q(y, x)`` differ, while a
  repeated head variable ``Q(x, x)`` keeps its equality constraint),
* existential variables are renamed by a canonical-labelling search: a
  Weisfeiler-Leman-style colour refinement partitions them by an
  isomorphism-invariant signature, then the lexicographically minimal body
  encoding over all within-class orderings is chosen.  The refinement classes
  and their order are invariants of the class, so the minimum is too; and
  because every explored ordering is an actual renaming, two queries share a
  canonical form *only if* they really are alpha-equivalent -- a cache keyed
  on it can never conflate inequivalent queries,
* the body is sorted (set semantics: atom order affects neither satisfaction
  nor the answer set).

:func:`canonical_key` renders the canonical form as a compact hashable string
for cache indexing and statistics.

The within-class search is exponential only in the size of the largest
refinement class, i.e. in how symmetric the query is; real queries are tiny
and nearly asymmetric.  A safety valve caps the number of explored orderings
(:data:`MAX_ORDERINGS`) and falls back to the given variable names beyond it,
trading cache sharing (renamed twins may then miss) for bounded work --
soundness is unaffected either way.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import islice, permutations, product
from math import factorial
from typing import Mapping, Sequence

from .atoms import Atom, LabelAtom, Variable
from .query import ConjunctiveQuery

#: Cap on the within-class orderings explored by the canonical-labelling
#: search.  8! covers every query with up to 8 mutually symmetric existential
#: variables -- far beyond anything the translators or workloads produce.
MAX_ORDERINGS = 40_320


def _encode_atom(atom: Atom, assignment: Mapping[Variable, int]) -> tuple:
    """An order-comparable tuple encoding of one atom under a variable numbering."""
    if isinstance(atom, LabelAtom):
        return (0, atom.label, assignment[atom.variable], 0)
    return (1, atom.axis.value, assignment[atom.source], assignment[atom.target])


def _refine_existential(
    query: ConjunctiveQuery,
    head_ids: Mapping[Variable, int],
    existential: Sequence[Variable],
) -> list[list[Variable]]:
    """Partition the existential variables by WL colour refinement.

    Head variables act as fixed, mutually distinct colours.  The returned
    classes are ordered by their (invariant) final signature; variables inside
    a class are still interchangeable as far as the refinement can tell.
    """
    labels: dict[Variable, list[str]] = {v: [] for v in existential}
    incident: dict[Variable, list[tuple[str, str, Variable]]] = {
        v: [] for v in existential
    }
    for atom in query.body:
        if isinstance(atom, LabelAtom):
            if atom.variable in labels:
                labels[atom.variable].append(atom.label)
        else:
            if atom.source in incident:
                incident[atom.source].append((atom.axis.value, "s", atom.target))
            if atom.target in incident:
                incident[atom.target].append((atom.axis.value, "t", atom.source))

    def colour_of(variable: Variable, colours: Mapping[Variable, int]) -> tuple:
        if variable in head_ids:
            return ("H", head_ids[variable])
        return ("E", colours[variable])

    colours: dict[Variable, int] = {v: 0 for v in existential}
    signatures: dict[Variable, tuple] = {}
    while True:
        for variable in existential:
            # Including the variable's own previous colour makes each round a
            # refinement of the last, so the loop terminates in <= n rounds.
            signature = [("C", colours[variable])]
            signature.extend(("L", label) for label in sorted(labels[variable]))
            signature.extend(
                sorted(
                    ("A", axis, role, colour_of(other, colours))
                    for axis, role, other in incident[variable]
                )
            )
            signatures[variable] = tuple(signature)
        distinct = sorted(set(signatures.values()))
        new_colours = {v: distinct.index(signatures[v]) for v in existential}
        if new_colours == colours:
            break
        colours = new_colours

    classes: dict[int, list[Variable]] = {}
    for variable in existential:
        classes.setdefault(colours[variable], []).append(variable)
    return [classes[colour] for colour in sorted(classes)]


def _canonical_assignment(query: ConjunctiveQuery) -> dict[Variable, int]:
    """A variable numbering whose sorted body encoding is class-canonical."""
    head_ids: dict[Variable, int] = {}
    for variable in query.head:
        head_ids.setdefault(variable, len(head_ids))
    existential = [v for v in query.variables() if v not in head_ids]
    if not existential:
        return head_ids

    classes = _refine_existential(query, head_ids, existential)
    total_orderings = 1
    for cls in classes:
        total_orderings *= factorial(len(cls))
    if total_orderings > MAX_ORDERINGS:
        # Pathologically symmetric query: keep the given names' order within
        # each class.  Still a valid (deterministic, injective) key -- renamed
        # twins may just land in different cache slots.
        orderings = [tuple(tuple(sorted(cls)) for cls in classes)]
    else:
        orderings = product(*(permutations(cls) for cls in classes))

    base = len(head_ids)
    best_encoding: tuple | None = None
    best_assignment: dict[Variable, int] = {}
    for ordering in islice(orderings, MAX_ORDERINGS):
        assignment = dict(head_ids)
        position = base
        for cls in ordering:
            for variable in cls:
                assignment[variable] = position
                position += 1
        encoding = tuple(sorted(_encode_atom(atom, assignment) for atom in query.body))
        if best_encoding is None or encoding < best_encoding:
            best_encoding = encoding
            best_assignment = assignment
    return best_assignment


@lru_cache(maxsize=4096)
def canonicalize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The canonical representative of ``query``'s alpha-equivalence class.

    Alpha-equivalent queries (same head positions, same body up to bijective
    renaming and atom reordering; names ignored) map to the *same* query
    value, so downstream per-query memoization (``compile_query``'s
    ``lru_cache``, the service's :class:`~repro.service.cache.QueryCache`)
    is shared across all of them.  The representative has identical answers
    on every structure.
    """
    assignment = _canonical_assignment(query)
    renaming = {variable: f"v{index}" for variable, index in assignment.items()}
    head = tuple(renaming[variable] for variable in query.head)
    body = tuple(
        atom.rename(renaming)
        for atom in sorted(query.body, key=lambda a: _encode_atom(a, assignment))
    )
    return ConjunctiveQuery(head, body, "Q")


def canonical_key(query: ConjunctiveQuery) -> str:
    """A compact renaming-invariant cache key (the rendered canonical form).

    Equal keys imply alpha-equivalence (and therefore equal answer sets);
    alpha-equivalent queries get equal keys whenever the canonical-labelling
    search completes within :data:`MAX_ORDERINGS` orderings.
    """
    canonical = canonicalize(query)
    head = ",".join(canonical.head)
    body = "&".join(
        f"{atom.label!r}({atom.variable})"
        if isinstance(atom, LabelAtom)
        else f"{atom.axis.value}({atom.source},{atom.target})"
        for atom in canonical.body
    )
    return f"{len(canonical.head)}[{head}]{body}"
