"""Containment and equivalence testing for queries over trees.

Exact containment of conjunctive queries over trees is harder than over
unrestricted relational structures (the canonical-database homomorphism test of
Chandra & Merlin is only sound in one direction because not every structure is
a tree).  The reproduction therefore offers two complementary tools:

* :func:`contained_on_trees` / :func:`equivalent_on_trees` -- *exhaustive*
  checks on all labelled trees up to a size bound (sound and complete for that
  bounded universe; small bounds only),
* :func:`contained_on_samples` / :func:`equivalent_on_samples` -- randomised
  testing on larger random trees (sound for refutation, probabilistic for
  confirmation).

These are exactly what the test-suite and the experiments need: the rewriting
theorems (6.6, 6.9, 6.10) are checked by comparing a query and its APQ
translation on both universes.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from ..trees.generators import all_trees, random_tree
from ..trees.structure import TreeStructure
from ..trees.tree import Tree
from .apq import UnionQuery, as_union
from .query import ConjunctiveQuery

QueryLike = ConjunctiveQuery | UnionQuery


def _answers(query: QueryLike, tree: Tree) -> frozenset[tuple[int, ...]]:
    # Imported lazily to avoid a circular dependency (evaluation uses queries).
    from ..evaluation.planner import evaluate

    structure = TreeStructure(tree)
    union = as_union(query)
    results: set[tuple[int, ...]] = set()
    for disjunct in union:
        results.update(evaluate(disjunct, structure))
    return frozenset(results)


def contained_on(
    query: QueryLike, other: QueryLike, trees: Iterable[Tree]
) -> Optional[Tree]:
    """Check ``query ⊆ other`` on the given trees.

    Returns ``None`` if no counterexample was found, otherwise the first tree
    on which some answer of ``query`` is missing from ``other``.
    """
    for tree in trees:
        if not _answers(query, tree) <= _answers(other, tree):
            return tree
    return None


def contained_on_trees(
    query: QueryLike, other: QueryLike, max_size: int = 4,
    alphabet: Sequence[str] = ("A", "B"),
) -> Optional[Tree]:
    """Exhaustive containment check on all trees with <= ``max_size`` nodes."""
    return contained_on(query, other, all_trees(max_size, alphabet))


def equivalent_on_trees(
    query: QueryLike, other: QueryLike, max_size: int = 4,
    alphabet: Sequence[str] = ("A", "B"),
) -> Optional[Tree]:
    """Exhaustive equivalence check; returns a distinguishing tree or ``None``."""
    for tree in all_trees(max_size, alphabet):
        if _answers(query, tree) != _answers(other, tree):
            return tree
    return None


def _sample_trees(
    count: int,
    size: int,
    alphabet: Sequence[str],
    seed: Optional[int],
    unlabeled_probability: float,
) -> list[Tree]:
    rng = random.Random(seed)
    return [
        random_tree(
            size,
            alphabet=alphabet,
            max_children=4,
            unlabeled_probability=unlabeled_probability,
            rng=rng,
        )
        for _ in range(count)
    ]


def contained_on_samples(
    query: QueryLike,
    other: QueryLike,
    samples: int = 30,
    size: int = 20,
    alphabet: Sequence[str] = ("A", "B", "C"),
    seed: Optional[int] = 0,
    unlabeled_probability: float = 0.2,
) -> Optional[Tree]:
    """Randomised containment check; returns a counterexample tree or ``None``."""
    trees = _sample_trees(samples, size, alphabet, seed, unlabeled_probability)
    return contained_on(query, other, trees)


def equivalent_on_samples(
    query: QueryLike,
    other: QueryLike,
    samples: int = 30,
    size: int = 20,
    alphabet: Sequence[str] = ("A", "B", "C"),
    seed: Optional[int] = 0,
    unlabeled_probability: float = 0.2,
) -> Optional[Tree]:
    """Randomised equivalence check; returns a distinguishing tree or ``None``."""
    trees = _sample_trees(samples, size, alphabet, seed, unlabeled_probability)
    for tree in trees:
        if _answers(query, tree) != _answers(other, tree):
            return tree
    return None


def answers_on(query: QueryLike, tree: Tree) -> frozenset[tuple[int, ...]]:
    """Public helper: the answer set of a query (or union) on one tree."""
    return _answers(query, tree)
