"""Query graphs (Section 2) and the cycle notions of Section 6.

The query graph of a conjunctive query is a directed multigraph whose vertices
are the query variables, whose (labelled) edges are the binary atoms, and whose
vertex labels are the unary atoms.  Section 6 distinguishes

* **directed cycles** -- cycles of the directed multigraph (including
  self-loops and pairs of opposite edges), handled by Lemma 6.4, and
* **undirected cycles** -- cycles of the *shadow* multigraph (parallel edges
  count as a cycle of length two), whose absence defines acyclicity of the
  conjunctive query.

This module provides the graph view plus the cycle detection used by the
rewriting algorithm of Lemma 6.5 and by the acyclic (Yannakakis-style)
evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .atoms import AxisAtom, Variable
from .query import ConjunctiveQuery


@dataclass(frozen=True)
class Edge:
    """A uniquely-identified edge of the query graph (one per axis atom)."""

    index: int
    atom: AxisAtom

    @property
    def source(self) -> Variable:
        return self.atom.source

    @property
    def target(self) -> Variable:
        return self.atom.target


class QueryGraph:
    """Directed multigraph view of a conjunctive query."""

    def __init__(self, query: ConjunctiveQuery):
        self.query = query
        self.vertices: tuple[Variable, ...] = query.variables()
        self.edges: tuple[Edge, ...] = tuple(
            Edge(index, atom) for index, atom in enumerate(query.axis_atoms())
        )
        self.out_edges: dict[Variable, list[Edge]] = {v: [] for v in self.vertices}
        self.in_edges: dict[Variable, list[Edge]] = {v: [] for v in self.vertices}
        for edge in self.edges:
            self.out_edges[edge.source].append(edge)
            self.in_edges[edge.target].append(edge)

    # -- shadow (undirected) structure -----------------------------------------

    def adjacency(self) -> dict[Variable, list[tuple[Variable, Edge]]]:
        """Shadow adjacency: for each vertex, (neighbour, edge) pairs."""
        adjacency: dict[Variable, list[tuple[Variable, Edge]]] = {
            vertex: [] for vertex in self.vertices
        }
        for edge in self.edges:
            adjacency[edge.source].append((edge.target, edge))
            if edge.source != edge.target:
                adjacency[edge.target].append((edge.source, edge))
        return adjacency

    def find_undirected_cycle(self) -> Optional[list[Edge]]:
        """Return the edges of some undirected cycle of the shadow multigraph.

        Self-loops and parallel edges count as cycles (of length 1 and 2).
        Returns ``None`` when the shadow is a forest, i.e. the query is
        acyclic in the sense of the paper.
        """
        for edge in self.edges:
            if edge.source == edge.target:
                return [edge]
        adjacency = self.adjacency()
        visited: set[Variable] = set()
        for start in self.vertices:
            if start in visited:
                continue
            # Iterative DFS storing, for each vertex, the edge used to reach it.
            parent_edge: dict[Variable, Optional[Edge]] = {start: None}
            stack: list[Variable] = [start]
            order: list[Variable] = []
            while stack:
                vertex = stack.pop()
                if vertex in visited:
                    continue
                visited.add(vertex)
                order.append(vertex)
                for neighbour, edge in adjacency[vertex]:
                    if neighbour not in parent_edge:
                        parent_edge[neighbour] = edge
                        stack.append(neighbour)
                    else:
                        incoming = parent_edge[vertex]
                        if incoming is not None and incoming.index == edge.index:
                            continue
                        if neighbour in visited or neighbour in parent_edge:
                            cycle = self._reconstruct_cycle(
                                parent_edge, vertex, neighbour, edge
                            )
                            if cycle is not None:
                                return cycle
        return None

    def _reconstruct_cycle(
        self,
        parent_edge: dict[Variable, Optional[Edge]],
        vertex: Variable,
        neighbour: Variable,
        closing_edge: Edge,
    ) -> Optional[list[Edge]]:
        """Build the cycle closed by ``closing_edge`` between the DFS-tree paths."""

        def path_to_root(start: Variable) -> list[tuple[Variable, Optional[Edge]]]:
            path = [(start, parent_edge.get(start))]
            current = start
            while parent_edge.get(current) is not None:
                edge = parent_edge[current]
                assert edge is not None
                current = edge.source if edge.target == current else edge.target
                path.append((current, parent_edge.get(current)))
            return path

        path_v = path_to_root(vertex)
        path_n = path_to_root(neighbour)
        vertices_v = [vertex_ for vertex_, _ in path_v]
        vertices_n = {vertex_: position for position, (vertex_, _) in enumerate(path_n)}
        # Find the lowest common ancestor in the DFS tree.
        lca_position_v = None
        for position, vertex_ in enumerate(vertices_v):
            if vertex_ in vertices_n:
                lca_position_v = position
                break
        if lca_position_v is None:
            return None
        lca = vertices_v[lca_position_v]
        cycle_edges: list[Edge] = [closing_edge]
        for vertex_, edge in path_v[:lca_position_v]:
            if edge is not None:
                cycle_edges.append(edge)
        for vertex_, edge in path_n[: vertices_n[lca]]:
            if edge is not None:
                cycle_edges.append(edge)
        # A valid cycle needs at least two distinct edges (or a self loop,
        # handled earlier).
        unique = {edge.index for edge in cycle_edges}
        if len(unique) < 2:
            return None
        return cycle_edges

    def is_acyclic(self) -> bool:
        """Acyclicity in the paper's sense: the shadow multigraph is a forest."""
        return self.find_undirected_cycle() is None

    def connected_components(self) -> list[set[Variable]]:
        """Connected components of the shadow graph (isolated vertices too)."""
        adjacency = self.adjacency()
        remaining = set(self.vertices)
        components: list[set[Variable]] = []
        while remaining:
            start = next(iter(remaining))
            component = {start}
            frontier = [start]
            while frontier:
                vertex = frontier.pop()
                for neighbour, _ in adjacency[vertex]:
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
            remaining -= component
        return components

    # -- directed structure ----------------------------------------------------

    def strongly_connected_components(self) -> list[set[Variable]]:
        """Tarjan's algorithm (iterative) on the directed multigraph."""
        index_counter = 0
        indices: dict[Variable, int] = {}
        lowlinks: dict[Variable, int] = {}
        on_stack: set[Variable] = set()
        stack: list[Variable] = []
        components: list[set[Variable]] = []

        for root in self.vertices:
            if root in indices:
                continue
            work: list[tuple[Variable, int]] = [(root, 0)]
            while work:
                vertex, child_index = work.pop()
                if child_index == 0:
                    indices[vertex] = index_counter
                    lowlinks[vertex] = index_counter
                    index_counter += 1
                    stack.append(vertex)
                    on_stack.add(vertex)
                recurse = False
                out = self.out_edges[vertex]
                while child_index < len(out):
                    successor = out[child_index].target
                    child_index += 1
                    if successor not in indices:
                        work.append((vertex, child_index))
                        work.append((successor, 0))
                        recurse = True
                        break
                    if successor in on_stack:
                        lowlinks[vertex] = min(lowlinks[vertex], indices[successor])
                if recurse:
                    continue
                if lowlinks[vertex] == indices[vertex]:
                    component: set[Variable] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == vertex:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[vertex])
        return components

    def directed_cycle_components(self) -> list[set[Variable]]:
        """SCCs that actually contain a directed cycle.

        These are the SCCs with more than one vertex, plus singletons carrying
        a self-loop atom.
        """
        loops = {edge.source for edge in self.edges if edge.source == edge.target}
        return [
            component
            for component in self.strongly_connected_components()
            if len(component) > 1 or next(iter(component)) in loops
        ]

    def has_directed_cycle(self) -> bool:
        return bool(self.directed_cycle_components())

    def edges_within(self, component: set[Variable]) -> list[Edge]:
        """Edges with both endpoints inside ``component``."""
        return [
            edge
            for edge in self.edges
            if edge.source in component and edge.target in component
        ]

    def reachable_from(self, start: Variable) -> set[Variable]:
        """Vertices reachable from ``start`` following edge directions."""
        seen = {start}
        frontier = [start]
        while frontier:
            vertex = frontier.pop()
            for edge in self.out_edges[vertex]:
                if edge.target not in seen:
                    seen.add(edge.target)
                    frontier.append(edge.target)
        return seen

    def variable_paths(self) -> list[list[Variable]]:
        """All maximal variable-paths (Section 7's Pi_Q) of a DAG query graph.

        A variable-path runs from an in-degree-zero variable to an
        out-degree-zero variable following edge directions.  Only meaningful
        for query graphs without directed cycles (DABCQs); raises otherwise.
        """
        if self.has_directed_cycle():
            raise ValueError("variable_paths() requires a query graph without directed cycles")
        sources = [
            vertex for vertex in self.vertices if not self.in_edges[vertex]
        ]
        paths: list[list[Variable]] = []

        def extend(path: list[Variable]) -> None:
            vertex = path[-1]
            out = self.out_edges[vertex]
            if not out:
                paths.append(list(path))
                return
            for edge in out:
                path.append(edge.target)
                extend(path)
                path.pop()

        for source in sources:
            extend([source])
        if not sources and self.vertices:
            # Isolated-vertex-free graphs with no sources only happen with
            # directed cycles, excluded above; a single isolated vertex is its
            # own path.
            pass
        for vertex in self.vertices:
            if not self.in_edges[vertex] and not self.out_edges[vertex]:
                # Isolated vertices were already added as length-1 paths by the
                # loop above (they are sources); nothing to do.
                pass
        return paths


def is_acyclic(query: ConjunctiveQuery) -> bool:
    """Convenience wrapper: acyclicity of a conjunctive query."""
    return QueryGraph(query).is_acyclic()


def has_directed_cycle(query: ConjunctiveQuery) -> bool:
    return QueryGraph(query).has_directed_cycle()
