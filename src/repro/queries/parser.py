"""A datalog-style parser for conjunctive queries.

The concrete syntax mirrors the paper's rule notation::

    Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z)

* The head is ``Name(v1, ..., vk)``; ``Name()`` or ``Name`` gives a Boolean
  query.
* Binary atoms use the axis names ``Child``, ``Child+``, ``Child*``,
  ``NextSibling``, ``NextSibling+``, ``NextSibling*``, ``Following`` (and the
  aliases accepted by :func:`repro.trees.axes.axis_from_name`).
* The shortcut ``Child^3(x, y)`` expands to a chain of three ``Child`` atoms
  through fresh variables, as in Section 5.
* Every other predicate ``P(x)`` with one argument is a label atom.
* ``<-`` and ``:-`` are both accepted as the rule arrow.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..trees.axes import axis_from_name
from .atoms import Atom, AxisAtom, LabelAtom
from .query import ConjunctiveQuery, axis_chain

_ATOM_PATTERN = re.compile(
    r"""
    (?P<predicate>[A-Za-z_@][\w@.\-]*[+*]?)       # predicate name, may end in + or *
    (?:\^(?P<power>\d+))?                          # optional ^k shortcut
    \s*\(\s*
    (?P<arguments>[^()]*)
    \)\s*
    """,
    re.VERBOSE,
)

_AXIS_NAMES = {
    "Child",
    "Child+",
    "Child*",
    "NextSibling",
    "NextSibling+",
    "NextSibling*",
    "Following",
    "DocumentOrder",
    "SuccPre",
    "Parent",
    "Ancestor",
    "AncestorOrSelf",
    "PreviousSibling",
    "PrecedingSibling",
    "Preceding",
    "Self",
    "Descendant",
    "DescendantOrSelf",
    "FollowingSibling",
}


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query from the datalog-style notation."""
    text = text.strip()
    if "<-" in text:
        head_text, body_text = text.split("<-", 1)
    elif ":-" in text:
        head_text, body_text = text.split(":-", 1)
    else:
        head_text, body_text = "Q()", text

    name, head = _parse_head(head_text.strip())
    body = _parse_body(body_text.strip())
    try:
        query = ConjunctiveQuery(tuple(head), tuple(body), name)
    except ValueError as error:
        raise QueryParseError(str(error)) from error
    if not query.is_safe():
        raise QueryParseError(
            f"unsafe query: head variables must occur in the body ({text!r})"
        )
    return query


def _parse_head(text: str) -> tuple[str, list[str]]:
    if not text:
        return "Q", []
    match = re.fullmatch(r"([A-Za-z_]\w*)\s*(?:\(\s*([^()]*)\s*\))?", text)
    if not match:
        raise QueryParseError(f"cannot parse query head: {text!r}")
    name = match.group(1)
    arguments = match.group(2)
    if arguments is None or not arguments.strip():
        return name, []
    variables = [argument.strip() for argument in arguments.split(",")]
    if any(not variable for variable in variables):
        raise QueryParseError(f"empty head variable in {text!r}")
    return name, variables


def _parse_body(text: str) -> list[Atom]:
    if not text or text.lower() == "true":
        return []
    atoms: list[Atom] = []
    position = 0
    while position < len(text):
        while position < len(text) and text[position] in " ,\n\t":
            position += 1
        if position >= len(text):
            break
        match = _ATOM_PATTERN.match(text, position)
        if not match:
            raise QueryParseError(f"cannot parse atom at: {text[position:position + 40]!r}")
        predicate = match.group("predicate")
        power = match.group("power")
        arguments = [
            argument.strip()
            for argument in match.group("arguments").split(",")
            if argument.strip()
        ]
        atoms.extend(_make_atoms(predicate, power, arguments))
        position = match.end()
    return atoms


def _make_atoms(predicate: str, power: str | None, arguments: list[str]) -> Iterable[Atom]:
    if predicate in _AXIS_NAMES:
        if len(arguments) != 2:
            raise QueryParseError(
                f"axis atom {predicate} expects two arguments, got {arguments}"
            )
        axis = axis_from_name(predicate)
        if power is not None:
            return axis_chain(axis, int(power), arguments[0], arguments[1])
        return [AxisAtom(axis, arguments[0], arguments[1])]
    if power is not None:
        raise QueryParseError(f"^k shortcut only applies to axis atoms, not {predicate}")
    if len(arguments) == 1:
        return [LabelAtom(predicate, arguments[0])]
    if len(arguments) == 2:
        # Unknown binary predicate: give a helpful error instead of guessing.
        raise QueryParseError(
            f"unknown binary relation {predicate!r}; known axes: {sorted(_AXIS_NAMES)}"
        )
    raise QueryParseError(f"atom {predicate} has unsupported arity {len(arguments)}")
