"""Conjunctive queries over trees (Section 2).

A k-ary conjunctive query is written in datalog rule notation::

    Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z)

:class:`ConjunctiveQuery` stores the head variables and the body atoms.  The
0-ary queries are Boolean, the unary ones monadic.  Queries are immutable;
transformations (variable substitution, atom addition/removal) return new
queries, which keeps the Section 6 rewrite system side-effect free.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Iterable, Mapping, Sequence

from ..trees.axes import Axis
from ..trees.structure import Signature
from .atoms import Atom, AxisAtom, LabelAtom, Variable


@dataclass(frozen=True)
class ConjunctiveQuery:
    """An immutable conjunctive query.

    Parameters
    ----------
    head:
        The tuple of free (answer) variables; empty for Boolean queries.
    body:
        The atoms of the body.  Duplicates are removed while preserving order.
    name:
        Optional display name (used in experiment output).
    """

    head: tuple[Variable, ...]
    body: tuple[Atom, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        deduplicated = tuple(dict.fromkeys(self.body))
        object.__setattr__(self, "body", deduplicated)

    def is_safe(self) -> bool:
        """Do all head variables occur in the body?

        Unsafe queries are still meaningful over a finite tree (a head
        variable without body occurrences simply ranges over all nodes), and
        intermediate results of the Section 6 rewriting may temporarily be
        unsafe; the textual parser, however, rejects unsafe input queries.
        """
        body_variables = {
            variable for atom in self.body for variable in atom.variables()
        }
        return all(variable in body_variables for variable in self.head)

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        head: Sequence[Variable] = (),
        body: Iterable[Atom] = (),
        name: str = "Q",
    ) -> "ConjunctiveQuery":
        return cls(tuple(head), tuple(body), name)

    @classmethod
    def boolean(cls, body: Iterable[Atom], name: str = "Q") -> "ConjunctiveQuery":
        return cls((), tuple(body), name)

    # -- basic accessors -------------------------------------------------------

    def variables(self) -> tuple[Variable, ...]:
        """All variables in order of first occurrence (head first)."""
        seen: dict[Variable, None] = dict.fromkeys(self.head)
        for atom in self.body:
            for variable in atom.variables():
                seen.setdefault(variable, None)
        return tuple(seen)

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    @property
    def is_monadic(self) -> bool:
        return len(self.head) == 1

    def label_atoms(self) -> tuple[LabelAtom, ...]:
        return tuple(atom for atom in self.body if isinstance(atom, LabelAtom))

    def axis_atoms(self) -> tuple[AxisAtom, ...]:
        return tuple(atom for atom in self.body if isinstance(atom, AxisAtom))

    def labels_of(self, variable: Variable) -> frozenset[str]:
        return frozenset(
            atom.label
            for atom in self.body
            if isinstance(atom, LabelAtom) and atom.variable == variable
        )

    def signature(self) -> Signature:
        """The set of axes used by the query."""
        return Signature(frozenset(atom.axis for atom in self.axis_atoms()))

    def labels(self) -> frozenset[str]:
        return frozenset(atom.label for atom in self.label_atoms())

    def size(self) -> int:
        """|Q| -- the number of atoms in the body (Section 7's size measure)."""
        return len(self.body)

    # -- transformations -------------------------------------------------------

    def rename(self, mapping: Mapping[Variable, Variable]) -> "ConjunctiveQuery":
        """Apply a variable substitution to head and body."""
        mapping = dict(mapping)
        new_head = tuple(mapping.get(variable, variable) for variable in self.head)
        new_body = tuple(atom.rename(mapping) for atom in self.body)
        return ConjunctiveQuery(new_head, new_body, self.name)

    def substitute(self, old: Variable, new: Variable) -> "ConjunctiveQuery":
        """Replace every occurrence of ``old`` by ``new``."""
        return self.rename({old: new})

    def with_atoms(self, *atoms: Atom) -> "ConjunctiveQuery":
        return ConjunctiveQuery(self.head, self.body + tuple(atoms), self.name)

    def without_atoms(self, *atoms: Atom) -> "ConjunctiveQuery":
        to_remove = set(atoms)
        return ConjunctiveQuery(
            self.head,
            tuple(atom for atom in self.body if atom not in to_remove),
            self.name,
        )

    def with_head(self, head: Sequence[Variable]) -> "ConjunctiveQuery":
        return ConjunctiveQuery(tuple(head), self.body, self.name)

    def with_name(self, name: str) -> "ConjunctiveQuery":
        return ConjunctiveQuery(self.head, self.body, name)

    def as_boolean(self) -> "ConjunctiveQuery":
        """Drop the head (existentially quantify all variables)."""
        return ConjunctiveQuery((), self.body, self.name)

    def fresh_variable(self, prefix: str = "v") -> Variable:
        """A variable name not yet used by the query."""
        used = set(self.variables())
        for index in count():
            candidate = f"{prefix}{index}"
            if candidate not in used:
                return candidate
        raise AssertionError("unreachable")  # pragma: no cover

    # -- display ---------------------------------------------------------------

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(self.head)})"
        body = ", ".join(str(atom) for atom in self.body)
        return f"{head} <- {body}" if body else f"{head} <- true"

    def pretty(self) -> str:
        """A multi-line rendering, one atom per line."""
        lines = [f"{self.name}({', '.join(self.head)}) <-"]
        lines.extend(f"    {atom}" for atom in self.body)
        return "\n".join(lines)


def axis_chain(
    axis: Axis,
    length: int,
    source: Variable,
    target: Variable,
    fresh_prefix: str = "_c",
) -> list[AxisAtom]:
    """Expand the paper's shortcut ``axis^k(x, y)`` into a chain of atoms.

    ``Child^3(x, y)`` becomes ``Child(x, _c0), Child(_c0, _c1), Child(_c1, y)``
    with fresh intermediate variables.  ``length`` must be >= 1.
    The fresh prefix is combined with the endpoint names so that chains built
    independently do not collide.
    """
    if length < 1:
        raise ValueError("chain length must be >= 1")
    variables = [source]
    for index in range(length - 1):
        variables.append(f"{fresh_prefix}_{source}_{target}_{index}")
    variables.append(target)
    return [
        AxisAtom(axis, variables[index], variables[index + 1])
        for index in range(length)
    ]


class QueryBuilder:
    """A small fluent builder for conjunctive queries.

    Example
    -------
    >>> from repro.trees.axes import Axis
    >>> query = (QueryBuilder("Q")
    ...     .label("A", "x").child("x", "y").label("B", "y")
    ...     .following("x", "z").label("C", "z")
    ...     .select("z").build())
    """

    def __init__(self, name: str = "Q"):
        self._name = name
        self._head: list[Variable] = []
        self._body: list[Atom] = []

    def label(self, label_name: str, variable: Variable) -> "QueryBuilder":
        self._body.append(LabelAtom(label_name, variable))
        return self

    def atom(self, axis: Axis, source: Variable, target: Variable) -> "QueryBuilder":
        self._body.append(AxisAtom(axis, source, target))
        return self

    def chain(
        self, axis: Axis, length: int, source: Variable, target: Variable
    ) -> "QueryBuilder":
        self._body.extend(axis_chain(axis, length, source, target))
        return self

    # Named helpers for the common axes keep query-building code readable.

    def child(self, source: Variable, target: Variable) -> "QueryBuilder":
        return self.atom(Axis.CHILD, source, target)

    def descendant(self, source: Variable, target: Variable) -> "QueryBuilder":
        return self.atom(Axis.CHILD_PLUS, source, target)

    def descendant_or_self(self, source: Variable, target: Variable) -> "QueryBuilder":
        return self.atom(Axis.CHILD_STAR, source, target)

    def next_sibling(self, source: Variable, target: Variable) -> "QueryBuilder":
        return self.atom(Axis.NEXT_SIBLING, source, target)

    def following_sibling(self, source: Variable, target: Variable) -> "QueryBuilder":
        return self.atom(Axis.NEXT_SIBLING_PLUS, source, target)

    def following(self, source: Variable, target: Variable) -> "QueryBuilder":
        return self.atom(Axis.FOLLOWING, source, target)

    def select(self, *variables: Variable) -> "QueryBuilder":
        self._head.extend(variables)
        return self

    def build(self) -> ConjunctiveQuery:
        return ConjunctiveQuery(tuple(self._head), tuple(self._body), self._name)
