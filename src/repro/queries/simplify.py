"""Answer-preserving structural simplification of conjunctive queries.

The XPath translator (and humans) routinely write queries with *vacuous*
existential structure: ``//description//listitem`` becomes

    Q(x3) <- Child*(x0, x1), description(x1), Child*(x1, x2),
             Child(x2, x3), listitem(x3)

where ``x0`` (the ``//`` root step) and ``x2`` (the step joint) are unlabeled
existentials ranging over *all* nodes.  Evaluation cost is driven by initial
domain sizes, so those variables dominate the propagation fixpoint -- on a
10k-node document the query above spends ~95% of its time pruning ``x0`` and
``x2`` -- while contributing nothing to the answer set.  :func:`simplify_query`
removes them:

* **Dangling reflexive atoms.**  An existential variable with no label atoms
  and exactly one incident axis atom whose relation contains the identity
  (``Child*``, ``NextSibling*``, ``AncestorOrSelf``, ``Self``) is always
  witnessed by the other endpoint itself; the atom and the variable are
  dropped.
* **Chain composition.**  An unlabeled existential ``z`` whose only atoms form
  a directed chain ``A(x, z), B(z, y)`` is projected out when the axis algebra
  composes exactly: ``Child* . Child = Child+``, ``Child* . Child+ = Child+``,
  ``Child* . Child* = Child*`` (and the sibling-chain analogues, and ``Self``
  composing with anything).  ``Child+ . Child+`` has no single-axis equivalent
  and is left alone.

Both rewrites preserve the answer set on every tree (the head is never
touched), so the serving cache applies them before canonicalization: the
simplified query is what gets compiled, planned and evaluated, and textual
variants that simplify to alpha-equivalent forms share one cache entry.  The
rewrite runs to a fixpoint -- dropping one variable can expose another.
"""

from __future__ import annotations

from functools import lru_cache

from ..trees.axes import Axis
from .atoms import AxisAtom, LabelAtom, Variable
from .query import ConjunctiveQuery

#: Axes whose relation contains the identity: a dangling existential attached
#: through one of these is witnessed by the other endpoint itself.
_REFLEXIVE_AXES = frozenset(
    {Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR, Axis.ANCESTOR_OR_SELF, Axis.SELF}
)

#: Exact relation compositions: ``_COMPOSE[A, B] = C`` iff
#: ``exists z: A(x, z) and B(z, y)``  <=>  ``C(x, y)`` on every tree.
_COMPOSE: dict[tuple[Axis, Axis], Axis] = {
    (Axis.CHILD_STAR, Axis.CHILD_STAR): Axis.CHILD_STAR,
    (Axis.CHILD_STAR, Axis.CHILD_PLUS): Axis.CHILD_PLUS,
    (Axis.CHILD_PLUS, Axis.CHILD_STAR): Axis.CHILD_PLUS,
    (Axis.CHILD_STAR, Axis.CHILD): Axis.CHILD_PLUS,
    (Axis.CHILD, Axis.CHILD_STAR): Axis.CHILD_PLUS,
    (Axis.NEXT_SIBLING_STAR, Axis.NEXT_SIBLING_STAR): Axis.NEXT_SIBLING_STAR,
    (Axis.NEXT_SIBLING_STAR, Axis.NEXT_SIBLING_PLUS): Axis.NEXT_SIBLING_PLUS,
    (Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR): Axis.NEXT_SIBLING_PLUS,
    (Axis.NEXT_SIBLING_STAR, Axis.NEXT_SIBLING): Axis.NEXT_SIBLING_PLUS,
    (Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_STAR): Axis.NEXT_SIBLING_PLUS,
}


def _compose(first: Axis, second: Axis) -> Axis | None:
    if first is Axis.SELF:
        return second
    if second is Axis.SELF:
        return first
    return _COMPOSE.get((first, second))


def _projectable(query: ConjunctiveQuery) -> set[Variable]:
    """Variables that may be projected out: existential, unlabeled, loop-free."""
    blocked: set[Variable] = set(query.head)
    for atom in query.body:
        if isinstance(atom, LabelAtom):
            blocked.add(atom.variable)
        elif atom.source == atom.target:
            blocked.add(atom.source)
    return {v for v in query.variables() if v not in blocked}


def _simplify_once(query: ConjunctiveQuery) -> ConjunctiveQuery | None:
    """One rewrite step, or ``None`` when no rule applies."""
    axis_atoms = [a for a in query.body if isinstance(a, AxisAtom)]
    incident: dict[Variable, list[AxisAtom]] = {}
    for atom in axis_atoms:
        if atom.source != atom.target:
            incident.setdefault(atom.source, []).append(atom)
            incident.setdefault(atom.target, []).append(atom)

    for variable in sorted(_projectable(query)):
        atoms = incident.get(variable, [])
        if len(atoms) == 1:
            atom = atoms[0]
            if atom.axis not in _REFLEXIVE_AXES:
                continue
            other = atom.target if atom.source == variable else atom.source
            body = tuple(a for a in query.body if a is not atom)
            if other in query.head and not any(other in a.variables() for a in body):
                # Dropping the atom would make the query unsafe (a head
                # variable with no body occurrence); keep it.
                continue
            return ConjunctiveQuery(query.head, body, query.name)
        elif len(atoms) == 2:
            first, second = atoms
            # Orient into a directed chain A(x, z), B(z, y) through z.
            if second.target == variable:
                first, second = second, first
            if first.target != variable or second.source != variable:
                continue
            composed = _compose(first.axis, second.axis)
            if composed is None or first.source == second.target:
                continue
            replacement = AxisAtom(composed, first.source, second.target)
            body = tuple(
                replacement if a is first else a
                for a in query.body
                if a is not second
            )
            return ConjunctiveQuery(query.head, body, query.name)
    return None


@lru_cache(maxsize=4096)
def simplify_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The fixpoint of the vacuous-existential rewrites; same answers always.

    (:class:`~repro.queries.query.ConjunctiveQuery` deduplicates repeated
    atoms itself, so a composition collapsing two chains onto the same atom
    needs no extra handling here.)
    """
    current = query
    while True:
        rewritten = _simplify_once(current)
        if rewritten is None:
            break
        current = rewritten
    return current
