"""Translation between an XPath fragment and (acyclic) conjunctive queries.

Section 1 of the paper observes that acyclic conjunctive queries over trees
generalise the navigational fragment of XPath, e.g.::

    //A[B]/following::C
      ==  Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z)

and Remark 6.1 notes that unary APQs over the XPath axes correspond to
positive Core XPath.  This module implements both directions for the
navigational (Core XPath) fragment:

* :func:`xpath_to_cq` -- parse a forward/backward-axis location path with
  nested predicates into an acyclic monadic conjunctive query,
* :func:`cq_to_xpath` -- render a *connected acyclic* monadic conjunctive
  query as an XPath expression (linear time, as per Remark 6.1),
* :func:`apq_to_xpath` -- render an APQ as an XPath union (``|``).

The supported XPath surface syntax:

* steps separated by ``/``; ``//`` abbreviates ``/descendant-or-self::node()/``
  as usual,
* a step is ``axis::test`` where ``axis`` is one of the navigational axes and
  ``test`` is a label or ``node()``/``*`` (any node),
* the abbreviation ``label`` means ``child::label``,
* predicates ``[relative path]`` may nest and may start with an axis or ``//``.
"""

from __future__ import annotations

from itertools import count

from ..trees.axes import Axis, INVERSE, XPATH_AXIS_NAMES
from .apq import UnionQuery
from .atoms import Atom, AxisAtom, LabelAtom, Variable
from .graph import QueryGraph
from .query import ConjunctiveQuery


class XPathTranslationError(ValueError):
    """Raised when an expression or query is outside the supported fragment."""


#: Axis -> XPath axis name (for rendering).  NextSibling / NextSibling* have no
#: XPath counterpart (the paper notes XPath does not support them).
AXIS_TO_XPATH: dict[Axis, str] = {
    Axis.CHILD: "child",
    Axis.CHILD_PLUS: "descendant",
    Axis.CHILD_STAR: "descendant-or-self",
    Axis.NEXT_SIBLING_PLUS: "following-sibling",
    Axis.FOLLOWING: "following",
    Axis.PARENT: "parent",
    Axis.ANCESTOR: "ancestor",
    Axis.ANCESTOR_OR_SELF: "ancestor-or-self",
    Axis.PRECEDING_SIBLING: "preceding-sibling",
    Axis.PRECEDING: "preceding",
    Axis.SELF: "self",
}

#: XPath-expressible axes when read backwards (target -> source).
_INVERSE_TO_XPATH: dict[Axis, str] = {
    Axis.CHILD: "parent",
    Axis.CHILD_PLUS: "ancestor",
    Axis.CHILD_STAR: "ancestor-or-self",
    Axis.NEXT_SIBLING_PLUS: "preceding-sibling",
    Axis.FOLLOWING: "preceding",
    Axis.PARENT: "child",
    Axis.ANCESTOR: "descendant",
    Axis.ANCESTOR_OR_SELF: "descendant-or-self",
    Axis.PRECEDING_SIBLING: "following-sibling",
    Axis.PRECEDING: "following",
    Axis.SELF: "self",
}


# ---------------------------------------------------------------------------
# XPath -> conjunctive query
# ---------------------------------------------------------------------------


def xpath_to_cq(expression: str, name: str = "Q") -> ConjunctiveQuery:
    """Translate a navigational XPath expression into a monadic acyclic CQ.

    The query's single head variable denotes the nodes selected by the
    expression.  Absolute expressions (starting with ``/`` or ``//``) anchor
    the first step at the document root via an auxiliary unlabelled variable
    constrained to have no constraints (the root is simply where evaluation of
    ``descendant-or-self`` starts); relative expressions start at an
    unconstrained context variable.
    """
    translator = _XPathTranslator(name)
    return translator.translate(expression)


class _XPathTranslator:
    def __init__(self, name: str):
        self.name = name
        self._counter = count()
        self.atoms: list[Atom] = []

    def fresh(self) -> Variable:
        return f"x{next(self._counter)}"

    def translate(self, expression: str) -> ConjunctiveQuery:
        expression = expression.strip()
        if not expression:
            raise XPathTranslationError("empty XPath expression")
        start = self.fresh()
        result = self._translate_path(expression, start)
        if not self.atoms:
            # Expression like "." -- selects the context node itself.
            self.atoms.append(AxisAtom(Axis.SELF, start, result))
        return ConjunctiveQuery((result,), tuple(self.atoms), self.name)

    # -- path handling ---------------------------------------------------------

    def _translate_path(self, path: str, context: Variable) -> Variable:
        steps = _split_steps(path)
        current = context
        for axis_name, test, predicates in steps:
            current = self._translate_step(axis_name, test, predicates, current)
        return current

    def _translate_step(
        self,
        axis_name: str,
        test: str,
        predicates: list[str],
        context: Variable,
    ) -> Variable:
        if axis_name not in XPATH_AXIS_NAMES:
            raise XPathTranslationError(f"unsupported XPath axis: {axis_name!r}")
        axis = XPATH_AXIS_NAMES[axis_name]
        target = self.fresh()
        if axis in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF,
                    Axis.PRECEDING_SIBLING, Axis.PRECEDING):
            # Backward axes are expressed by swapping the argument pair of the
            # corresponding forward axis (they are redundant in CQs).
            forward = INVERSE[axis]
            self.atoms.append(AxisAtom(forward, target, context))
        elif axis is Axis.SELF:
            self.atoms.append(AxisAtom(Axis.SELF, context, target))
        else:
            self.atoms.append(AxisAtom(axis, context, target))
        if test not in ("node()", "*", "."):
            self.atoms.append(LabelAtom(test, target))
        for predicate in predicates:
            self._translate_path(predicate, target)
        return target


def _split_steps(path: str) -> list[tuple[str, str, list[str]]]:
    """Split a location path into (axis, node-test, predicates) triples.

    Our trees have no separate document node, so absolute paths ("/..." and
    "//...") are interpreted as starting *anywhere*: a leading abbreviated
    child step becomes a ``descendant-or-self`` step (which in particular lets
    ``//S`` and ``/S`` select a root labelled ``S``).
    """
    steps: list[tuple[str, str, list[str]]] = []
    position = 0
    text = path.strip()
    absolute = False
    leading_double = False
    if text.startswith("//"):
        absolute = leading_double = True
        text = text[2:]
    elif text.startswith("/"):
        absolute = True
        text = text[1:]
    while text:
        # Find the end of this step (a '/' at bracket depth 0).
        depth = 0
        end = len(text)
        double = False
        for index, char in enumerate(text):
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == "/" and depth == 0:
                end = index
                double = text[index:index + 2] == "//"
                break
        step_text = text[:end].strip()
        if step_text:
            steps.append(_parse_step(step_text))
        if double:
            steps.append(("descendant-or-self", "node()", []))
            text = text[end + 2:]
        else:
            text = text[end + 1:] if end < len(text) else ""
    if absolute and steps:
        first_axis, first_test, first_predicates = steps[0]
        if first_axis == "child":
            steps[0] = ("descendant-or-self", first_test, first_predicates)
        elif leading_double:
            steps.insert(0, ("descendant-or-self", "node()", []))
    return steps


def _parse_step(step: str) -> tuple[str, str, list[str]]:
    predicates: list[str] = []
    while step.endswith("]"):
        depth = 0
        for index in range(len(step) - 1, -1, -1):
            if step[index] == "]":
                depth += 1
            elif step[index] == "[":
                depth -= 1
                if depth == 0:
                    predicates.insert(0, step[index + 1:-1])
                    step = step[:index]
                    break
        else:
            raise XPathTranslationError(f"unbalanced predicate brackets in {step!r}")
    step = step.strip()
    if "[" in step or "]" in step:
        raise XPathTranslationError(f"unbalanced predicate brackets in step {step!r}")
    if "::" in step:
        axis_name, test = step.split("::", 1)
    elif step == ".":
        axis_name, test = "self", "node()"
    elif step == "..":
        axis_name, test = "parent", "node()"
    else:
        axis_name, test = "child", step
    return axis_name.strip(), test.strip(), predicates


# ---------------------------------------------------------------------------
# Conjunctive query -> XPath
# ---------------------------------------------------------------------------


def cq_to_xpath(query: ConjunctiveQuery) -> str:
    """Render a connected acyclic monadic CQ as an XPath expression.

    The head variable becomes the selected step; every other variable becomes
    a predicate hanging off the path.  Raises :class:`XPathTranslationError`
    when the query is not monadic, not acyclic, not connected, or uses
    ``NextSibling``/``NextSibling*`` (which have no XPath counterpart).
    """
    if not query.is_monadic:
        raise XPathTranslationError("only monadic queries can become XPath expressions")
    graph = QueryGraph(query)
    if not graph.is_acyclic():
        raise XPathTranslationError("only acyclic queries can become XPath expressions")
    components = graph.connected_components()
    head = query.head[0]
    head_component = next(component for component in components if head in component)
    if len(components) > 1 and any(component != head_component for component in components
                                   if component):
        other = [component for component in components if component != head_component]
        if any(other):
            raise XPathTranslationError(
                "disconnected queries are not in the supported XPath fragment"
            )

    adjacency: dict[Variable, list[tuple[Variable, str]]] = {
        variable: [] for variable in query.variables()
    }
    for atom in query.axis_atoms():
        forward = _forward_step_axis(atom.axis)
        backward = _backward_step_axis(atom.axis)
        adjacency[atom.source].append((atom.target, forward))
        adjacency[atom.target].append((atom.source, backward))

    def node_test(variable: Variable) -> str:
        labels = sorted(query.labels_of(variable))
        if not labels:
            return "node()"
        primary = labels[0]
        return primary

    def extra_label_predicates(variable: Variable) -> list[str]:
        labels = sorted(query.labels_of(variable))
        return [f"self::{label}" for label in labels[1:]]

    visited: set[Variable] = set()

    def render_subtree(variable: Variable) -> list[str]:
        """Predicates describing the unexplored neighbours of ``variable``."""
        predicates = extra_label_predicates(variable)
        for neighbour, step_axis in adjacency[variable]:
            if neighbour in visited:
                continue
            visited.add(neighbour)
            inner = render_subtree(neighbour)
            step = f"{step_axis}::{node_test(neighbour)}"
            step += "".join(f"[{predicate}]" for predicate in inner)
            predicates.append(step)
        return predicates

    # Root the expression at the head variable and express everything else as
    # predicates; XPath then selects exactly the head variable's matches.
    visited.add(head)
    predicates = render_subtree(head)
    expression = f"/descendant-or-self::{_self_step(query, head)}"
    expression += "".join(f"[{predicate}]" for predicate in predicates)
    return expression


def _self_step(query: ConjunctiveQuery, head: Variable) -> str:
    labels = sorted(query.labels_of(head))
    return labels[0] if labels else "node()"


def _forward_step_axis(axis: Axis) -> str:
    if axis in AXIS_TO_XPATH:
        return AXIS_TO_XPATH[axis]
    raise XPathTranslationError(
        f"axis {axis.value} has no XPath counterpart (not in the XPath axis set)"
    )


def _backward_step_axis(axis: Axis) -> str:
    if axis in _INVERSE_TO_XPATH:
        return _INVERSE_TO_XPATH[axis]
    raise XPathTranslationError(
        f"axis {axis.value} has no XPath counterpart when traversed backwards"
    )


def apq_to_xpath(apq: UnionQuery) -> str:
    """Render an APQ (union of acyclic monadic CQs) as an XPath union."""
    if apq.is_empty():
        raise XPathTranslationError("the empty union has no XPath rendering")
    return " | ".join(cq_to_xpath(query) for query in apq)
