"""Section 6: join lifters, cycle elimination and the CQ -> APQ rewriting."""

from .child_nextsibling import rewrite_child_nextsibling, rewrite_child_nextsibling_apq
from .cycles import eliminate_directed_cycles, is_trivially_unsatisfiable
from .lifters import (
    Conjunction,
    Equality,
    Lifter,
    LifterAtom,
    THEOREM_66_AXES,
    find_lifter_counterexample,
    lifter,
    paper_theorem_69_lifter,
    phi_holds,
)
from .to_apq import (
    RewriteBudgetExceeded,
    RewriteError,
    RewriteStep,
    RewriteTrace,
    eliminate_following,
    expand_child_star,
    to_apq,
    to_apq_theorem_610,
)

__all__ = [
    "Conjunction",
    "Equality",
    "Lifter",
    "LifterAtom",
    "RewriteBudgetExceeded",
    "RewriteError",
    "RewriteStep",
    "RewriteTrace",
    "THEOREM_66_AXES",
    "eliminate_directed_cycles",
    "eliminate_following",
    "expand_child_star",
    "find_lifter_counterexample",
    "is_trivially_unsatisfiable",
    "lifter",
    "paper_theorem_69_lifter",
    "phi_holds",
    "rewrite_child_nextsibling",
    "rewrite_child_nextsibling_apq",
    "to_apq",
    "to_apq_theorem_610",
]
