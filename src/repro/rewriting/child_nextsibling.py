"""Linear-time acyclicity for CQ[{Child, NextSibling}] (Proposition 6.14).

Over the two axes ``Child`` and ``NextSibling`` cyclic queries can be made
acyclic *without* the exponential union of Lemma 6.5, in linear time, because
both axes are functional in the backward direction (every node has at most one
parent and at most one immediately-preceding sibling) and ``NextSibling`` is
functional in the forward direction as well.  The rewriting used here:

1. **Merge forced-equal variables.**  ``Child(x, z) & Child(y, z)`` forces
   ``x = y``; ``NextSibling(x, z) & NextSibling(y, z)`` forces ``x = y``;
   ``NextSibling(x, y) & NextSibling(x, z)`` forces ``y = z``.  Additionally,
   all variables that are parents (via a ``Child`` atom) of members of one
   ``NextSibling``-chain denote the same node and are merged.
2. **Detect unsatisfiability.**  A ``Child`` or ``NextSibling`` self-loop (or a
   ``NextSibling`` cycle) cannot be satisfied in a tree.
3. **Drop implied ``Child`` atoms.**  Within one sibling chain, a single
   ``Child`` atom from the (merged) parent to the leftmost chain member that
   carries one implies all the others, which are removed.

The result is equivalent to the input; for inputs in CQ[{Child, NextSibling}]
it is acyclic (the tests check this on randomly generated cyclic queries and
fall back to the general algorithm otherwise, preserving correctness).
"""

from __future__ import annotations

from typing import Optional

from ..queries.apq import UnionQuery
from ..queries.atoms import AxisAtom, Variable
from ..queries.graph import QueryGraph
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[Variable, Variable] = {}

    def find(self, item: Variable) -> Variable:
        self.parent.setdefault(item, item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, left: Variable, right: Variable) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            # Keep the lexicographically smaller name as representative so the
            # output is deterministic.
            keep, drop = sorted((left_root, right_root))
            self.parent[drop] = keep


def rewrite_child_nextsibling(query: ConjunctiveQuery) -> Optional[ConjunctiveQuery]:
    """Rewrite a CQ[{Child, NextSibling}] into an equivalent acyclic CQ.

    Returns ``None`` when the query is unsatisfiable.  Raises ``ValueError``
    if the query uses other axes.
    """
    allowed = {Axis.CHILD, Axis.NEXT_SIBLING}
    if not query.signature().axes <= allowed:
        raise ValueError(
            "rewrite_child_nextsibling only handles the axes Child and NextSibling"
        )

    current = query
    # Iterate merging to a fixpoint: each merge can enable further merges.
    for _ in range(max(1, len(query.body)) * 4):
        merged = _merge_once(current)
        if merged is None:
            return None
        if merged == current:
            break
        current = merged

    if _has_impossible_loop(current):
        return None
    simplified = _drop_implied_child_atoms(current)
    return simplified


def _merge_once(query: ConjunctiveQuery) -> Optional[ConjunctiveQuery]:
    uf = _UnionFind()
    for variable in query.variables():
        uf.find(variable)

    child_atoms = [atom for atom in query.axis_atoms() if atom.axis is Axis.CHILD]
    sibling_atoms = [atom for atom in query.axis_atoms() if atom.axis is Axis.NEXT_SIBLING]

    # Backward functionality of Child: unique parent.
    parents_of: dict[Variable, list[Variable]] = {}
    for atom in child_atoms:
        parents_of.setdefault(atom.target, []).append(atom.source)
    for parents in parents_of.values():
        for other in parents[1:]:
            uf.union(parents[0], other)

    # Forward and backward functionality of NextSibling.
    next_of: dict[Variable, list[Variable]] = {}
    previous_of: dict[Variable, list[Variable]] = {}
    for atom in sibling_atoms:
        next_of.setdefault(atom.source, []).append(atom.target)
        previous_of.setdefault(atom.target, []).append(atom.source)
    for successors in next_of.values():
        for other in successors[1:]:
            uf.union(successors[0], other)
    for predecessors in previous_of.values():
        for other in predecessors[1:]:
            uf.union(predecessors[0], other)

    # Members of one NextSibling chain share their parent.
    chain_uf = _UnionFind()
    for atom in sibling_atoms:
        chain_uf.union(atom.source, atom.target)
    parent_of_chain: dict[Variable, Variable] = {}
    for atom in child_atoms:
        chain = chain_uf.find(atom.target)
        if chain in parent_of_chain:
            uf.union(parent_of_chain[chain], atom.source)
        else:
            parent_of_chain[chain] = atom.source

    mapping = {variable: uf.find(variable) for variable in query.variables()}
    if all(variable == representative for variable, representative in mapping.items()):
        return query
    return query.rename(mapping)


def _has_impossible_loop(query: ConjunctiveQuery) -> bool:
    """Self-loops or directed cycles over Child/NextSibling are unsatisfiable."""
    for atom in query.axis_atoms():
        if atom.source == atom.target:
            return True
    graph = QueryGraph(query)
    return graph.has_directed_cycle()


def _drop_implied_child_atoms(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Keep one Child atom per (parent, sibling chain); the rest are implied."""
    sibling_atoms = [atom for atom in query.axis_atoms() if atom.axis is Axis.NEXT_SIBLING]
    child_atoms = [atom for atom in query.axis_atoms() if atom.axis is Axis.CHILD]

    chain_uf = _UnionFind()
    for atom in sibling_atoms:
        chain_uf.union(atom.source, atom.target)

    # Order of each variable within its chain: follow NextSibling pointers.
    next_pointer = {atom.source: atom.target for atom in sibling_atoms}
    order_in_chain: dict[Variable, int] = {}
    targets = set(next_pointer.values())
    # Compute positions by walking each chain from its head.
    heads = [
        variable
        for variable in set(next_pointer) | targets
        if variable not in targets
    ]
    for head in heads:
        position = 0
        current: Optional[Variable] = head
        seen: set[Variable] = set()
        while current is not None and current not in seen:
            order_in_chain[current] = position
            seen.add(current)
            position += 1
            current = next_pointer.get(current)

    kept: dict[tuple[Variable, Variable], AxisAtom] = {}
    removable: list[AxisAtom] = []
    for atom in child_atoms:
        chain = chain_uf.find(atom.target)
        if atom.target not in order_in_chain:
            # Not part of any sibling chain; keep the atom as is.
            continue
        key = (atom.source, chain)
        best = kept.get(key)
        if best is None:
            kept[key] = atom
            continue
        if order_in_chain.get(atom.target, 0) < order_in_chain.get(best.target, 0):
            removable.append(best)
            kept[key] = atom
        else:
            removable.append(atom)
    return query.without_atoms(*removable)


def rewrite_child_nextsibling_apq(query: ConjunctiveQuery) -> UnionQuery:
    """Proposition 6.14 packaged as an APQ (empty union when unsatisfiable).

    Falls back to the general Lemma 6.5 algorithm in the (unexpected) case the
    linear-time rewriting leaves a cycle, so the result is always an APQ.
    """
    rewritten = rewrite_child_nextsibling(query)
    if rewritten is None:
        return UnionQuery((), query.name)
    if QueryGraph(rewritten).is_acyclic():
        return UnionQuery((rewritten,), query.name)
    from .to_apq import to_apq

    return to_apq(rewritten)
