"""Directed-cycle elimination (Lemma 6.4).

If a conjunctive query over tree axes contains a directed cycle

    R1(x1, x2), R2(x2, x3), ..., Rk(xk, x1)

then either all the Ri are reflexive axes (``Child*`` / ``NextSibling*``), in
which case the cycle forces ``x1 = x2 = ... = xk`` and the variables can be
identified, or some Ri is irreflexive, in which case the query is
unsatisfiable (the union of the tree axes is acyclic as a graph over nodes).

:func:`eliminate_directed_cycles` applies this exhaustively and returns either
a query without directed cycles or ``None`` (unsatisfiable).
"""

from __future__ import annotations

from typing import Optional

from ..queries.atoms import AxisAtom
from ..queries.graph import QueryGraph
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis

#: Axes whose atoms may participate in a satisfiable directed cycle.
_COLLAPSIBLE = {Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR, Axis.SELF}


def eliminate_directed_cycles(query: ConjunctiveQuery) -> Optional[ConjunctiveQuery]:
    """Apply Lemma 6.4 until the query graph has no directed cycles.

    Returns the rewritten (equivalent) query, or ``None`` when a directed
    cycle contains an irreflexive axis and the query is unsatisfiable.
    Collapsing a cycle can create new cycles, so the procedure iterates to a
    fixpoint.
    """
    current = query
    while True:
        graph = QueryGraph(current)
        cycle_components = graph.directed_cycle_components()
        if not cycle_components:
            return current
        component = cycle_components[0]
        internal_atoms = [edge.atom for edge in graph.edges_within(component)]
        if any(atom.axis not in _COLLAPSIBLE for atom in internal_atoms):
            return None
        current = _collapse(current, component, internal_atoms)


def _collapse(
    query: ConjunctiveQuery,
    component: set[str],
    internal_atoms: list[AxisAtom],
) -> ConjunctiveQuery:
    """Identify all variables of a reflexive-axes-only cycle component."""
    representative = sorted(component)[0]
    mapping = {variable: representative for variable in component}
    new_head = tuple(mapping.get(variable, variable) for variable in query.head)
    renamed_atoms = [atom.rename(mapping) for atom in query.body]
    # Remove atoms that became reflexive Child*/NextSibling*/Self loops and
    # deduplicate while preserving order.
    kept = [
        atom
        for atom in dict.fromkeys(renamed_atoms)
        if not (
            isinstance(atom, AxisAtom)
            and atom.source == atom.target
            and atom.axis in _COLLAPSIBLE
        )
    ]
    # Safety: a head variable must keep occurring in the body (the paper adds a
    # Node(x1) atom; we use the same trick, Node(x) := Child*(x, x') for a
    # fresh x', which is satisfiable at every node).
    body_variables = {variable for atom in kept for variable in atom.variables()}
    if representative in new_head and representative not in body_variables:
        used = body_variables | set(new_head)
        index = 0
        fresh = f"_node{index}"
        while fresh in used:
            index += 1
            fresh = f"_node{index}"
        kept.append(AxisAtom(Axis.CHILD_STAR, representative, fresh))
    return ConjunctiveQuery(new_head, tuple(kept), query.name)


def _body_variables(query: ConjunctiveQuery) -> set[str]:
    variables: set[str] = set()
    for atom in query.body:
        variables.update(atom.variables())
    return variables


def is_trivially_unsatisfiable(query: ConjunctiveQuery) -> bool:
    """Quick test: does Lemma 6.4 already show the query unsatisfiable?"""
    return eliminate_directed_cycles(query) is None
