"""Join lifters (Definition 6.2) and the lifter tables of Theorems 6.6 and 6.9.

A *join lifter* for binary relations R and S is a positive quantifier-free DNF
formula ``psi_{R,S}(x, y, z)`` equivalent (over all trees) to

    phi_{R,S}(x, y, z)  =  R(x, z) and S(y, z)

whose conjunctions each consist of at most one binary atom per variable pair
plus possibly one equality, in one of the five shapes (a)-(e) of Definition
6.2.  The rewriting algorithm of Lemma 6.5 uses them to push joins upwards in
the query graph until every disjunct is acyclic.

Representation: a lifter is a :class:`Lifter` holding a tuple of
:class:`Conjunction` objects; each conjunction has binary atoms over the three
roles ``x``, ``y``, ``z`` and at most one equality between roles.

Two tables are provided.

* :func:`lifter` -- the Theorem 6.6 table covering all pairs of axes from
  ``{Child, Child+, Child*, NextSibling, NextSibling+, NextSibling*}``.  Every
  entry is verified against its defining equivalence by the test-suite (on all
  small trees and on random larger trees).
* :func:`paper_theorem_69_lifter` -- a literal transcription of the Theorem
  6.9 formulas for pairs involving ``Following``.  Our mechanical verification
  (see ``tests/test_rewriting_lifters.py``) shows that, under the standard
  XPath/Eq.(1) semantics of ``Following``, the printed formulas for
  ``psi_{Child,Following}``, ``psi_{NextSibling,Following}``,
  ``psi_{NextSibling+,Following}`` and ``psi_{NextSibling*,Following}`` miss
  the case in which ``y`` lies strictly *inside* the subtree of a node whose
  subtree precedes ``z`` (e.g. ``y`` a proper descendant of ``x`` when
  ``NextSibling(x, z)`` holds), so they are *not* join lifters in the sense of
  Definition 6.2.  The default CQ -> APQ pipeline therefore eliminates
  ``Following`` via Eq. (1) and the Child*-expansion of Theorem 6.10, which
  only needs the verified Theorem 6.6 table; the literal Theorem 6.9 table is
  retained for documentation and for the discrepancy report in
  EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Optional

from ..trees.axes import Axis, holds
from ..trees.tree import Tree

Role = str  # "x", "y" or "z"


@dataclass(frozen=True)
class LifterAtom:
    """A binary atom over lifter roles, e.g. ``Child(x, z)``."""

    axis: Axis
    source: Role
    target: Role

    def __str__(self) -> str:
        return f"{self.axis.value}({self.source}, {self.target})"


@dataclass(frozen=True)
class Equality:
    """An equality between two roles, e.g. ``x = y``."""

    left: Role
    right: Role

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Conjunction:
    """One disjunct of a lifter: binary atoms plus at most one equality."""

    atoms: tuple[LifterAtom, ...]
    equality: Optional[Equality] = None

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.atoms]
        if self.equality is not None:
            parts.append(str(self.equality))
        return " & ".join(parts)

    def holds_on(self, tree: Tree, assignment: dict[Role, int]) -> bool:
        if self.equality is not None:
            if assignment[self.equality.left] != assignment[self.equality.right]:
                return False
        return all(
            holds(tree, atom.axis, assignment[atom.source], assignment[atom.target])
            for atom in self.atoms
        )


@dataclass(frozen=True)
class Lifter:
    """A join lifter: a DNF over the roles x, y, z."""

    r: Axis
    s: Axis
    conjunctions: tuple[Conjunction, ...]

    def holds_on(self, tree: Tree, x: int, y: int, z: int) -> bool:
        assignment = {"x": x, "y": y, "z": z}
        return any(conjunction.holds_on(tree, assignment) for conjunction in self.conjunctions)

    def __str__(self) -> str:
        body = " | ".join(f"({conjunction})" for conjunction in self.conjunctions)
        return f"psi_{{{self.r.value},{self.s.value}}}(x,y,z) = {body}"


def phi_holds(tree: Tree, r: Axis, s: Axis, x: int, y: int, z: int) -> bool:
    """The defining formula phi_{R,S}(x, y, z) = R(x, z) and S(y, z)."""
    return holds(tree, r, x, z) and holds(tree, s, y, z)


def _atom(axis: Axis, source: Role, target: Role) -> LifterAtom:
    return LifterAtom(axis, source, target)


def _conj(*atoms: LifterAtom, eq: Optional[tuple[Role, Role]] = None) -> Conjunction:
    return Conjunction(tuple(atoms), Equality(*eq) if eq else None)


_VERTICAL = {Axis.CHILD, Axis.CHILD_PLUS, Axis.CHILD_STAR}
_HORIZONTAL = {Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR}
_BASE = {Axis.CHILD, Axis.NEXT_SIBLING}
_STAR = {Axis.CHILD: Axis.CHILD_STAR, Axis.NEXT_SIBLING: Axis.NEXT_SIBLING_STAR}
_PLUS = {Axis.CHILD: Axis.CHILD_PLUS, Axis.NEXT_SIBLING: Axis.NEXT_SIBLING_PLUS}

#: The axes covered by the Theorem 6.6 table.
THEOREM_66_AXES: frozenset[Axis] = frozenset(_VERTICAL | _HORIZONTAL)


def _swapped(inner: Lifter, r: Axis, s: Axis) -> Lifter:
    """The "otherwise" case of Theorem 6.6: psi_{R,S}(x,y,z) = psi_{S,R}(y,x,z)."""
    swap = {"x": "y", "y": "x", "z": "z"}
    conjunctions = []
    for conjunction in inner.conjunctions:
        atoms = tuple(
            LifterAtom(atom.axis, swap[atom.source], swap[atom.target])
            for atom in conjunction.atoms
        )
        equality = (
            Equality(swap[conjunction.equality.left], swap[conjunction.equality.right])
            if conjunction.equality is not None
            else None
        )
        conjunctions.append(Conjunction(atoms, equality))
    return Lifter(r, s, tuple(conjunctions))


def lifter(r: Axis, s: Axis) -> Lifter:
    """The Theorem 6.6 join lifter ``psi_{R,S}`` for axes of its table.

    Raises ``ValueError`` for pairs outside the table (i.e. involving
    ``Following``); use the Theorem 6.10 elimination instead.
    """
    if r not in THEOREM_66_AXES or s not in THEOREM_66_AXES:
        raise ValueError(
            f"Theorem 6.6 covers only {sorted(a.value for a in THEOREM_66_AXES)}; "
            f"got ({r.value}, {s.value})"
        )
    direct = _lifter_direct(r, s)
    if direct is not None:
        return direct
    swapped_inner = _lifter_direct(s, r)
    if swapped_inner is None:  # pragma: no cover - the table is total up to swap
        raise AssertionError(f"no lifter for ({r.value}, {s.value})")
    return _swapped(swapped_inner, r, s)


def _lifter_direct(r: Axis, s: Axis) -> Optional[Lifter]:
    """The non-swapped rows of the Theorem 6.6 table (None if only the swap applies)."""
    # Row 1: R = S in {Child, NextSibling}.
    if r == s and r in _BASE:
        return Lifter(r, s, (_conj(_atom(r, "x", "z"), eq=("x", "y")),))

    # Row 2: R = S in {Child*, NextSibling*}.
    if r == s and r in (Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR):
        return Lifter(
            r,
            s,
            (
                _conj(_atom(r, "x", "z"), _atom(r, "y", "x")),
                _conj(_atom(r, "x", "y"), _atom(r, "y", "z")),
            ),
        )

    # Row 3: R = S in {Child+, NextSibling+}.
    if r == s and r in (Axis.CHILD_PLUS, Axis.NEXT_SIBLING_PLUS):
        return Lifter(
            r,
            s,
            (
                _conj(_atom(r, "x", "z"), _atom(r, "y", "x")),
                _conj(_atom(r, "x", "y"), _atom(r, "y", "z")),
                _conj(_atom(r, "x", "z"), eq=("x", "y")),
            ),
        )

    # Row 4: R in {Child, NextSibling}, S = R*.
    if r in _BASE and s == _STAR[r]:
        return Lifter(
            r,
            s,
            (
                _conj(_atom(r, "x", "z"), eq=("y", "z")),
                _conj(_atom(r, "x", "z"), _atom(s, "y", "x")),
            ),
        )

    # Row 5: R in {Child, NextSibling}, S = R+.
    if r in _BASE and s == _PLUS[r]:
        return Lifter(
            r,
            s,
            (
                _conj(_atom(r, "x", "z"), eq=("x", "y")),
                _conj(_atom(r, "x", "z"), _atom(s, "y", "x")),
            ),
        )

    # Row 6: R = chi+, S = chi* for chi in {Child, NextSibling}.
    for base in _BASE:
        if r == _PLUS[base] and s == _STAR[base]:
            return Lifter(
                r,
                s,
                (
                    _conj(_atom(r, "x", "z"), eq=("y", "z")),
                    _conj(_atom(r, "x", "z"), _atom(s, "y", "x")),
                    _conj(_atom(r, "y", "z"), _atom(s, "x", "y")),
                ),
            )

    # Row 7: R a sibling axis, S in {Child, Child+}.
    if r in _HORIZONTAL and s in (Axis.CHILD, Axis.CHILD_PLUS):
        return Lifter(r, s, (_conj(_atom(r, "x", "z"), _atom(s, "y", "x")),))

    # Row 8: R a sibling axis, S = Child*.
    if r in _HORIZONTAL and s is Axis.CHILD_STAR:
        return Lifter(
            r,
            s,
            (
                _conj(_atom(r, "x", "z"), eq=("y", "z")),
                _conj(_atom(r, "x", "z"), _atom(Axis.CHILD_PLUS, "y", "x")),
            ),
        )

    return None


# ---------------------------------------------------------------------------
# Theorem 6.9: the printed Following lifters (literal transcription).
# ---------------------------------------------------------------------------


def paper_theorem_69_lifter(r: Axis) -> Lifter:
    """The formula ``psi_{R,Following}`` exactly as printed in Theorem 6.9.

    See the module docstring: our verification shows the formulas for
    R in {Child, NextSibling, NextSibling+, NextSibling*} are not equivalent
    to ``phi_{R,Following}`` under the Eq. (1) semantics of ``Following``, so
    these are *not* used by the default rewriting pipeline.  They are exposed
    for the reproduction's discrepancy analysis (EXPERIMENTS.md).
    """
    following = Axis.FOLLOWING
    if r is Axis.NEXT_SIBLING:
        return Lifter(r, following, (
            _conj(_atom(r, "x", "z"), eq=("x", "y")),
            _conj(_atom(r, "x", "z"), _atom(following, "y", "x")),
        ))
    if r is Axis.NEXT_SIBLING_PLUS:
        return Lifter(r, following, (
            _conj(_atom(r, "x", "z"), eq=("x", "y")),
            _conj(_atom(r, "x", "z"), _atom(following, "y", "x")),
            _conj(_atom(r, "x", "y"), _atom(r, "y", "z")),
        ))
    if r is Axis.NEXT_SIBLING_STAR:
        return Lifter(r, following, (
            _conj(_atom(r, "x", "z"), _atom(following, "y", "x")),
            _conj(_atom(r, "x", "y"), _atom(Axis.NEXT_SIBLING_PLUS, "y", "z")),
        ))
    if r is Axis.CHILD:
        return Lifter(r, following, (
            _conj(_atom(r, "x", "z"), eq=("x", "y")),
            _conj(_atom(r, "x", "z"), _atom(following, "y", "x")),
            _conj(_atom(r, "x", "y"), _atom(Axis.NEXT_SIBLING_PLUS, "y", "z")),
        ))
    if r is Axis.FOLLOWING:
        return Lifter(r, following, (
            _conj(_atom(r, "x", "z"), eq=("x", "y")),
            _conj(_atom(r, "x", "z"), _atom(following, "y", "x")),
            _conj(_atom(r, "x", "y"), _atom(following, "y", "z")),
        ))
    raise ValueError(f"Theorem 6.9 defines no formula for R = {r.value}")


# ---------------------------------------------------------------------------
# Verification
# ---------------------------------------------------------------------------


def find_lifter_counterexample(
    candidate: Lifter, trees: Iterable[Tree]
) -> Optional[tuple[Tree, int, int, int]]:
    """Search the given trees for a triple on which psi and phi disagree.

    Returns ``(tree, x, y, z)`` for the first disagreement, or ``None`` when
    the candidate behaves as a join lifter on every supplied tree.
    """
    for tree in trees:
        nodes = range(len(tree))
        for x, y, z in product(nodes, nodes, nodes):
            psi = candidate.holds_on(tree, x, y, z)
            phi = phi_holds(tree, candidate.r, candidate.s, x, y, z)
            if psi != phi:
                return (tree, x, y, z)
    return None
