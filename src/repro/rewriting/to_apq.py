"""The CQ -> APQ rewriting algorithm (Lemma 6.5, Theorems 6.6 / 6.10).

Given a conjunctive query over tree axes, the algorithm produces an equivalent
*acyclic positive query* (a union of acyclic conjunctive queries):

1. ``Following`` atoms are eliminated using Eq. (1) of Section 2
   (``Following(x, y) = Child*(z1, x) & NextSibling+(z1, z2) & Child*(z2, y)``),
   the first step of the Theorem 6.10 translation;
2. directed cycles are removed by Lemma 6.4 (identify variables on
   reflexive-axis cycles, drop unsatisfiable disjuncts);
3. while some disjunct still has an undirected cycle, a bottommost cycle
   variable ``z`` is chosen (no directed path from ``z`` to another cycle
   variable), the two cycle atoms ``R(x, z)``, ``S(y, z)`` entering ``z`` are
   replaced using the join lifter ``psi_{R,S}`` of Theorem 6.6, producing one
   new disjunct per lifter conjunction (equalities are applied as variable
   substitutions).

The number of produced disjuncts is at most ``k^(|V| * |E|)`` (Lemma 6.5); the
implementation guards against runaway blow-up with an explicit disjunct/step
budget and raises :class:`RewriteBudgetExceeded` when it is hit.

An optional :class:`RewriteTrace` records every step, which is how Figure 8's
rewrite derivation is regenerated (see :mod:`repro.experiments.figure8`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Iterable, Optional

from ..queries.apq import UnionQuery
from ..queries.atoms import AxisAtom, Variable
from ..queries.graph import Edge, QueryGraph
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis
from .cycles import eliminate_directed_cycles
from .lifters import Conjunction, lifter


class RewriteError(RuntimeError):
    """Raised when the rewrite algorithm reaches an unexpected state."""


class RewriteBudgetExceeded(RewriteError):
    """Raised when the rewriting would exceed the configured step budget."""


@dataclass
class RewriteStep:
    """One recorded step of the rewriting (for traces / Figure 8)."""

    operation: str
    before: ConjunctiveQuery
    after: tuple[ConjunctiveQuery, ...]
    detail: str = ""

    def __str__(self) -> str:
        lines = [f"[{self.operation}] {self.detail}".rstrip()]
        lines.append(f"  before: {self.before}")
        if self.after:
            for result in self.after:
                lines.append(f"  after:  {result}")
        else:
            lines.append("  after:  (dropped as unsatisfiable)")
        return "\n".join(lines)


@dataclass
class RewriteTrace:
    """The full derivation of one ``to_apq`` run."""

    steps: list[RewriteStep] = field(default_factory=list)

    def record(
        self,
        operation: str,
        before: ConjunctiveQuery,
        after: Iterable[ConjunctiveQuery],
        detail: str = "",
    ) -> None:
        self.steps.append(RewriteStep(operation, before, tuple(after), detail))

    def __str__(self) -> str:
        return "\n\n".join(str(step) for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


def eliminate_following(
    query: ConjunctiveQuery, trace: Optional[RewriteTrace] = None
) -> ConjunctiveQuery:
    """Replace each ``Following`` atom by its Eq. (1) definition."""
    current = query
    fresh_counter = count()
    following_atoms = [atom for atom in query.axis_atoms() if atom.axis is Axis.FOLLOWING]
    for atom in following_atoms:
        z1 = f"_f{next(fresh_counter)}"
        z2 = f"_f{next(fresh_counter)}"
        while z1 in current.variables() or z2 in current.variables():
            z1 = f"_f{next(fresh_counter)}"
            z2 = f"_f{next(fresh_counter)}"
        replacement = (
            AxisAtom(Axis.CHILD_STAR, z1, atom.source),
            AxisAtom(Axis.NEXT_SIBLING_PLUS, z1, z2),
            AxisAtom(Axis.CHILD_STAR, z2, atom.target),
        )
        rewritten = current.without_atoms(atom).with_atoms(*replacement)
        if trace is not None:
            trace.record(
                "eliminate-following",
                current,
                (rewritten,),
                f"replace {atom} by Eq. (1)",
            )
        current = rewritten
    return current


def expand_child_star(query: ConjunctiveQuery) -> list[ConjunctiveQuery]:
    """The Theorem 6.10 expansion: each ``Child*`` atom becomes ``Child+`` or ``=``.

    Produces up to ``2^n`` conjunctive queries for ``n`` Child* atoms.  The
    default pipeline does not need this step (the Theorem 6.6 lifters handle
    Child* directly); it is kept for the literal Theorem 6.10 reproduction and
    for the ablation benchmark.
    """
    finished: list[ConjunctiveQuery] = []
    pending: list[ConjunctiveQuery] = [query]
    while pending:
        candidate = pending.pop()
        star_atoms = [
            atom for atom in candidate.axis_atoms() if atom.axis is Axis.CHILD_STAR
        ]
        if not star_atoms:
            finished.append(candidate)
            continue
        atom = star_atoms[0]
        as_plus = candidate.without_atoms(atom).with_atoms(
            AxisAtom(Axis.CHILD_PLUS, atom.source, atom.target)
        )
        pending.append(as_plus)
        if atom.source == atom.target:
            # Child*(x, x) is always true; dropping the atom is the "=" case and
            # the Child+ case above is unsatisfiable but harmless.
            as_equal = candidate.without_atoms(atom)
        else:
            as_equal = candidate.without_atoms(atom).substitute(atom.target, atom.source)
        pending.append(as_equal)
    return finished


def _cycle_variables(graph: QueryGraph) -> set[Variable]:
    """Variables lying on at least one undirected cycle of the shadow graph."""
    adjacency = graph.adjacency()
    on_cycle: set[Variable] = set()
    for edge in graph.edges:
        if edge.source == edge.target:
            on_cycle.add(edge.source)
            continue
        if _connected_without_edge(adjacency, edge.source, edge.target, edge.index):
            on_cycle.add(edge.source)
            on_cycle.add(edge.target)
    return on_cycle


def _connected_without_edge(
    adjacency: dict[Variable, list[tuple[Variable, Edge]]],
    start: Variable,
    goal: Variable,
    forbidden_edge: int,
) -> bool:
    seen = {start}
    frontier = [start]
    while frontier:
        vertex = frontier.pop()
        if vertex == goal:
            return True
        for neighbour, edge in adjacency[vertex]:
            if edge.index == forbidden_edge or neighbour in seen:
                continue
            seen.add(neighbour)
            frontier.append(neighbour)
    return goal in seen


def _connected_avoiding_vertex(
    adjacency: dict[Variable, list[tuple[Variable, Edge]]],
    start: Variable,
    goal: Variable,
    avoid: Variable,
    forbidden_edges: set[int],
) -> bool:
    if start == goal:
        return True
    seen = {start}
    frontier = [start]
    while frontier:
        vertex = frontier.pop()
        for neighbour, edge in adjacency[vertex]:
            if edge.index in forbidden_edges or neighbour == avoid or neighbour in seen:
                continue
            if neighbour == goal:
                return True
            seen.add(neighbour)
            frontier.append(neighbour)
    return False


def _choose_join(graph: QueryGraph) -> tuple[Variable, AxisAtom, AxisAtom]:
    """Pick a bottommost cycle variable z and the two cycle atoms entering it."""
    cycle_variables = _cycle_variables(graph)
    if not cycle_variables:
        raise RewriteError("no undirected cycle although the query is not acyclic")
    adjacency = graph.adjacency()
    candidates = [
        variable
        for variable in cycle_variables
        if not (graph.reachable_from(variable) - {variable}) & cycle_variables
    ]
    if not candidates:
        # Cannot happen when directed cycles have been eliminated (the paper's
        # argument); fall back to any cycle variable to stay robust.
        candidates = sorted(cycle_variables)
    for z in sorted(candidates):
        in_edges = graph.in_edges[z]
        for first_index in range(len(in_edges)):
            for second_index in range(first_index + 1, len(in_edges)):
                first, second = in_edges[first_index], in_edges[second_index]
                if first.source == second.source or _connected_avoiding_vertex(
                    adjacency,
                    first.source,
                    second.source,
                    z,
                    {first.index, second.index},
                ):
                    return z, first.atom, second.atom
    raise RewriteError(
        "could not locate two cycle atoms entering a bottommost cycle variable"
    )


def _apply_conjunction(
    query: ConjunctiveQuery,
    atom_r: AxisAtom,
    atom_s: AxisAtom,
    conjunction: Conjunction,
) -> ConjunctiveQuery:
    """Replace R(x, z), S(y, z) by one conjunction of the lifter."""
    roles = {"x": atom_r.source, "y": atom_s.source, "z": atom_r.target}
    new_atoms = tuple(
        AxisAtom(atom.axis, roles[atom.source], roles[atom.target])
        for atom in conjunction.atoms
    )
    rewritten = query.without_atoms(atom_r, atom_s).with_atoms(*new_atoms)
    if conjunction.equality is not None:
        keep = roles[conjunction.equality.left]
        drop = roles[conjunction.equality.right]
        if keep != drop:
            rewritten = rewritten.substitute(drop, keep)
    return rewritten


def to_apq(
    query: ConjunctiveQuery,
    trace: Optional[RewriteTrace] = None,
    max_disjuncts: int = 100_000,
    max_steps: int = 1_000_000,
) -> UnionQuery:
    """Rewrite a conjunctive query into an equivalent acyclic positive query.

    Supports every signature contained in ``Ax``.  The result may be the empty
    union (the query was unsatisfiable) and can be exponentially larger than
    the input -- necessarily so, by Theorem 7.1.
    """
    unsupported = query.signature().axes - {
        Axis.CHILD,
        Axis.CHILD_PLUS,
        Axis.CHILD_STAR,
        Axis.NEXT_SIBLING,
        Axis.NEXT_SIBLING_PLUS,
        Axis.NEXT_SIBLING_STAR,
        Axis.FOLLOWING,
        Axis.SELF,
    }
    if unsupported:
        raise ValueError(
            f"to_apq supports the axes of Ax; unsupported: {sorted(a.value for a in unsupported)}"
        )

    prepared = _eliminate_self(eliminate_following(query, trace))
    worklist: list[ConjunctiveQuery] = [prepared]
    finished: list[ConjunctiveQuery] = []
    steps = 0

    while worklist:
        steps += 1
        if steps > max_steps or len(worklist) + len(finished) > max_disjuncts:
            raise RewriteBudgetExceeded(
                f"rewriting exceeded the budget (steps={steps}, "
                f"disjuncts={len(worklist) + len(finished)})"
            )
        current = worklist.pop()
        acyclic_free = eliminate_directed_cycles(current)
        if acyclic_free is None:
            if trace is not None:
                trace.record(
                    "drop-unsatisfiable",
                    current,
                    (),
                    "directed cycle over an irreflexive axis (Lemma 6.4)",
                )
            continue
        if acyclic_free is not current and trace is not None:
            trace.record(
                "collapse-directed-cycle",
                current,
                (acyclic_free,),
                "identify variables of a Child*/NextSibling* cycle (Lemma 6.4)",
            )
        graph = QueryGraph(acyclic_free)
        if graph.is_acyclic():
            finished.append(acyclic_free)
            continue
        z, atom_r, atom_s = _choose_join(graph)
        the_lifter = lifter(atom_r.axis, atom_s.axis)
        successors = [
            _apply_conjunction(acyclic_free, atom_r, atom_s, conjunction)
            for conjunction in the_lifter.conjunctions
        ]
        if trace is not None:
            trace.record(
                "apply-lifter",
                acyclic_free,
                successors,
                f"z = {z}: replace {atom_r} & {atom_s} via {the_lifter}",
            )
        worklist.extend(successors)

    return UnionQuery(tuple(finished), query.name).deduplicated()


def _eliminate_self(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Remove ``Self`` atoms by identifying their endpoints."""
    current = query
    while True:
        self_atoms = [atom for atom in current.axis_atoms() if atom.axis is Axis.SELF]
        if not self_atoms:
            return current
        atom = self_atoms[0]
        current = current.without_atoms(atom)
        if atom.source != atom.target:
            current = current.substitute(atom.target, atom.source)


def to_apq_theorem_610(
    query: ConjunctiveQuery,
    trace: Optional[RewriteTrace] = None,
    max_disjuncts: int = 100_000,
) -> UnionQuery:
    """The literal Theorem 6.10 pipeline (Following elimination + Child* expansion).

    Produces an APQ over ``F ∪ {Child+, NextSibling+}`` (no ``Child*`` in the
    output unless the input's other atoms already used it through lifters).
    Kept as an ablation / fidelity variant; equivalent to :func:`to_apq`.
    """
    prepared = eliminate_following(query, trace)
    disjuncts: list[ConjunctiveQuery] = []
    for expanded in expand_child_star(prepared):
        partial = to_apq(expanded, trace=trace, max_disjuncts=max_disjuncts)
        disjuncts.extend(partial.disjuncts)
        if len(disjuncts) > max_disjuncts:
            raise RewriteBudgetExceeded("Theorem 6.10 expansion exceeded the disjunct budget")
    return UnionQuery(tuple(disjuncts), query.name).deduplicated()
