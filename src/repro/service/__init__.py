"""The serving layer: resident documents, cached query plans, batch execution.

Single-query evaluation (PR 1/2) made one ``evaluate()`` call fast; this
package amortizes every per-tree and per-query artifact across a *stream* of
requests, the way an embedded or networked query service runs:

* :mod:`~repro.service.store` -- :class:`DocumentStore`: trees registered
  under stable ids with their interval index, label inverted index and
  initial-domain sets resident; explicit + LRU eviction;
* :mod:`~repro.service.cache` -- :class:`QueryCache`: parse -> canonicalize ->
  compile -> plan memoized behind a renaming-invariant canonical key, so
  alpha-equivalent resubmissions share one compiled plan;
* :mod:`~repro.service.core` -- the shared request-execution core
  (:class:`Request`, :class:`RequestResult`, :func:`run_request`): one code
  path, one contract, for every backend;
* :mod:`~repro.service.executor` -- :class:`BatchExecutor`: concurrent,
  deterministic evaluation of request batches over the shared artifacts
  (thread backend);
* :mod:`~repro.service.shards` -- :class:`ShardedExecutor`: N worker
  *processes*, each owning a per-process store + cache, documents routed by
  stable hash of their id (multi-core backend);
* :mod:`~repro.service.server` -- a stdlib-only threaded HTTP JSON front end
  (``cq-trees serve``);
* :mod:`~repro.service.async_server` -- the asyncio front end: persistent
  HTTP/1.1 connections, bounded in-flight requests
  (``cq-trees serve --async [--shards N]``).
"""

from .async_server import AsyncServerThread, AsyncServiceServer
from .cache import CachedQuery, QueryCache
from .core import Request, RequestResult, run_request
from .executor import BatchExecutor
from .server import ServiceHTTPServer, make_server
from .shards import ShardedExecutor, shard_for
from .store import DocumentNotFound, DocumentStore, StoredDocument, preload

__all__ = [
    "AsyncServerThread",
    "AsyncServiceServer",
    "BatchExecutor",
    "CachedQuery",
    "DocumentNotFound",
    "DocumentStore",
    "QueryCache",
    "Request",
    "RequestResult",
    "ServiceHTTPServer",
    "ShardedExecutor",
    "StoredDocument",
    "make_server",
    "preload",
    "run_request",
    "shard_for",
]
