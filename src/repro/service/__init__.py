"""The serving layer: resident documents, cached query plans, batch execution.

Single-query evaluation (PR 1/2) made one ``evaluate()`` call fast; this
package amortizes every per-tree and per-query artifact across a *stream* of
requests, the way an embedded or networked query service runs:

* :mod:`~repro.service.store` -- :class:`DocumentStore`: trees registered
  under stable ids with their interval index, label inverted index and
  initial-domain sets resident; explicit + LRU eviction;
* :mod:`~repro.service.cache` -- :class:`QueryCache`: parse -> canonicalize ->
  compile -> plan memoized behind a renaming-invariant canonical key, so
  alpha-equivalent resubmissions share one compiled plan;
* :mod:`~repro.service.executor` -- :class:`BatchExecutor`: concurrent,
  deterministic evaluation of request batches over the shared artifacts;
* :mod:`~repro.service.server` -- a stdlib-only HTTP JSON front end
  (``cq-trees serve``).
"""

from .cache import CachedQuery, QueryCache
from .executor import BatchExecutor, Request, RequestResult
from .server import ServiceHTTPServer, make_server
from .store import DocumentNotFound, DocumentStore, StoredDocument, preload

__all__ = [
    "BatchExecutor",
    "CachedQuery",
    "DocumentNotFound",
    "DocumentStore",
    "QueryCache",
    "Request",
    "RequestResult",
    "ServiceHTTPServer",
    "StoredDocument",
    "make_server",
    "preload",
]
