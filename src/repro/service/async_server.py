"""An asyncio HTTP/1.1 front end over the serving backends.

The threaded front end (:mod:`repro.service.server`) spends one OS thread per
connection, which caps how many concurrent (and mostly idle) clients it can
hold open.  This module serves the same JSON protocol -- identical routes,
identical payloads, byte-identical response bodies -- on
:func:`asyncio.start_server`: connections are cheap coroutines, HTTP/1.1
keep-alive is the default so clients reuse them across requests, and a
**bounded in-flight semaphore** keeps the number of requests actually
executing at once under control no matter how many connections are parked.

Request execution is dispatched to a serving backend --
:class:`~repro.service.executor.BatchExecutor` (threads, shared artifacts) or
:class:`~repro.service.shards.ShardedExecutor` (processes, hash-routed
documents) -- both of which expose the same surface, so the front end does
not care which one it fronts.  Single ``/query`` requests are awaited through
``backend.submit()`` futures; everything else runs on a private thread pool
sized to the in-flight bound.

``cq-trees serve --async [--shards N]`` is the CLI entry;
:class:`AsyncServerThread` runs the same server on a background event-loop
thread for tests and the smoke script.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Union

from ..observability.logging import get_logger
from ..queries.parser import QueryParseError
from ..queries.xpath import XPathTranslationError
from ..trees.xmlio import XMLParseError
from .core import Request, execute_batch_payload, profile_control_payload
from .http_metrics import METRICS_CONTENT_TYPE, observe_http, route_latency_summary
from .server import MAX_BODY_BYTES

_LOG = get_logger("repro.service.async")

#: Exceptions answered as HTTP 400 (mirrors the threaded front end).
_CLIENT_ERRORS = (QueryParseError, XPathTranslationError, XMLParseError, ValueError)

#: Default bound on requests executing concurrently (not on open connections).
DEFAULT_MAX_IN_FLIGHT = 64

#: Upper bound on header lines per request (mirrors http.server's cap); a
#: client streaming endless headers must not grow memory without bound.
MAX_HEADER_LINES = 100


class AsyncServiceServer:
    """One asyncio server bound to one backend; persistent HTTP/1.1."""

    def __init__(
        self,
        executor,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        quiet: bool = True,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.executor = executor
        self.quiet = quiet
        self.max_in_flight = max_in_flight
        self.address: Optional[tuple[str, int]] = None
        self._host = host
        self._port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listening socket; returns ``(host, port)``."""
        self._semaphore = asyncio.Semaphore(self.max_in_flight)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_in_flight, thread_name_prefix="cq-trees-async"
        )
        self._server = await asyncio.start_server(self._handle_connection, self._host, self._port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        """Serve until cancelled (binds first if :meth:`start` wasn't called)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One persistent connection: parse, dispatch, respond, repeat."""
        try:
            while True:
                try:
                    request_line = await reader.readline()
                except ValueError:  # line over the stream limit
                    break
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._send(writer, 400, {"error": "malformed request line"}, close=True)
                    break
                method, path, version = parts
                headers = await self._read_headers(reader)
                if headers is None:
                    break
                close_after = (
                    version.upper() != "HTTP/1.1"
                    or headers.get("connection", "").lower() == "close"
                )
                if "transfer-encoding" in headers:
                    await self._send(
                        writer, 501, {"error": "chunked bodies are not supported"}, close=True
                    )
                    break
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0 or length > MAX_BODY_BYTES:
                    # The unread body would desync the persistent stream, so
                    # the connection drops after answering (as the threaded
                    # front end does).
                    await self._send(
                        writer, 400, {"error": "missing or oversized Content-Length"}, close=True
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                started = time.perf_counter()
                if method == "POST":
                    # Only evaluation work holds an in-flight slot; GET
                    # control-plane probes (/healthz above all) must answer
                    # even when the server is saturated, as the threaded
                    # front end does.
                    async with self._semaphore:
                        status, payload = await self._dispatch(method, path, body)
                else:
                    status, payload = await self._dispatch(method, path, body)
                observe_http(path, method, status, time.perf_counter() - started)
                if not self.quiet:  # pragma: no cover - log formatting
                    _LOG.info("request", method=method, path=path, status=status)
                await self._send(writer, status, payload, close=close_after)
                if close_after:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_headers(self, reader: asyncio.StreamReader) -> Optional[dict]:
        """Header lines up to the blank separator, lower-cased names.

        ``None`` (drop the connection) on EOF, an over-long line, or more
        than :data:`MAX_HEADER_LINES` lines -- per-request memory stays
        bounded no matter what a client streams.
        """
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            try:
                line = await reader.readline()
            except ValueError:  # header line over the stream limit
                return None
            if line in (b"\r\n", b"\n"):
                return headers
            if not line:
                return None
            name, separator, value = line.decode("latin-1").partition(":")
            if separator:
                headers[name.strip().lower()] = value.strip()
        return None

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[dict, str],
        close: bool = False,
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 501: "Not Implemented"}
        if isinstance(payload, str):
            # Pre-rendered text payloads (the /metrics exposition).
            body = payload.encode("utf-8")
            content_type = METRICS_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _call(self, function, /, *args, **kwargs):
        """Run one (potentially blocking) backend call on the private pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, functools.partial(function, *args, **kwargs)
        )

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """Route one parsed request; returns ``(status, payload)``."""
        executor = self.executor
        try:
            if method == "GET":
                if path == "/healthz":
                    count = await self._call(executor.document_count)
                    return 200, {"status": "ok", "documents": count}
                if path == "/stats":
                    # HTTP-layer latency summary merged front-end-side, as in
                    # the threaded server (it is parent-process state under
                    # both backends).
                    stats = await self._call(executor.stats)
                    stats["http"] = route_latency_summary()
                    return 200, stats
                if path == "/metrics":
                    return 200, await self._call(executor.render_metrics)
                if path == "/documents":
                    return 200, {"documents": await self._call(executor.describe_documents)}
                if path == "/profile":
                    return 200, await self._call(executor.profile_snapshot)
                return 404, {"error": f"unknown path {path!r}"}
            if method == "DELETE":
                prefix = "/documents/"
                if path.startswith(prefix) and len(path) > len(prefix):
                    doc_id = path[len(prefix) :]
                    if await self._call(executor.evict_document, doc_id):
                        return 200, {"evicted": doc_id}
                    return 404, {"error": f"unknown document id {doc_id!r}"}
                return 404, {"error": f"unknown path {path!r}"}
            if method != "POST":
                # 501 like the threaded front end's BaseHTTPRequestHandler
                # (the body is JSON here, not stdlib HTML).
                return 501, {"error": f"Unsupported method ({method!r})"}
            payload = self._parse_body(body)
            if path == "/documents":
                # allow_files stays False over HTTP: clients must not be able
                # to make the server read its own filesystem.
                return 200, await self._call(executor.register_payload, payload)
            if path == "/query":
                request = Request.from_json_dict(payload)
                result = await asyncio.wrap_future(executor.submit(request))
                return (200 if result.ok else 400), result.to_json_dict()
            if path == "/batch":
                # The shared helper (validation + execution + rendering) runs
                # entirely on the pool thread; its ValueErrors surface here.
                return 200, await self._call(execute_batch_payload, self.executor, payload)
            if path == "/profile":
                return 200, await self._call(profile_control_payload, self.executor, payload)
            return 404, {"error": f"unknown path {path!r}"}
        except _CLIENT_ERRORS as error:
            return 400, {"error": str(error)}

    def _parse_body(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

class AsyncServerThread:
    """Run an :class:`AsyncServiceServer` on a private event-loop thread.

    The synchronous face of the async front end, for tests and the smoke
    script: ``start()`` blocks until the socket is bound (``.address`` holds
    the ephemeral port), ``stop()`` shuts the loop down cleanly.
    """

    def __init__(self, executor, host: str = "127.0.0.1", port: int = 0, **server_kwargs):
        self._server_args = (executor, host, port)
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="cq-trees-async-server", daemon=True
        )
        self.address: Optional[tuple[str, int]] = None
        self.error: Optional[BaseException] = None

    def start(self) -> "AsyncServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self.error is not None:
            raise self.error
        if self.address is None:
            raise RuntimeError("async server failed to start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> "AsyncServerThread":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - startup failure
            self.error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = AsyncServiceServer(*self._server_args, **self._server_kwargs)
        try:
            self.address = await server.start()
        except BaseException as error:
            self.error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()
