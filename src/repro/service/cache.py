"""The query cache: parse -> canonicalize -> compile -> plan, memoized.

Serving traffic resubmits the same queries over and over, frequently with
cosmetic differences: another variable naming, another atom order, another
rule name.  :class:`QueryCache` memoizes the whole front half of the pipeline
behind a renaming-invariant key (:func:`repro.queries.canonical.canonical_key`):

* **parse cache** -- raw request text (datalog or XPath) to its cache entry,
  so byte-identical resubmissions skip even the parser;
* **entry cache** -- canonical key to :class:`CachedQuery`: the canonical
  representative query, its :class:`~repro.evaluation.compile.CompiledQuery`,
  and the planner's engine choice.  Alpha-equivalent submissions -- textually
  different, even mixed datalog/XPath -- share one entry, and because the
  entry holds the *canonical* query value, ``compile_query``'s per-value
  ``lru_cache`` is hit across cache instances as well.

Both maps are LRU-bounded by ``capacity`` and thread-safe; statistics
(:meth:`stats`) expose hit rates so an operator can see the amortization
working.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..evaluation.compile import CompiledQuery, compile_query
from ..evaluation.planner import Engine, choose_engine
from ..evaluation.propagation import Propagator
from ..observability import tracing
from ..observability.metrics import REGISTRY
from ..planning import DocumentStats, QueryPlan, plan_query
from ..queries.canonical import canonical_key, canonicalize
from ..queries.simplify import simplify_query
from ..queries.parser import parse_query
from ..queries.query import ConjunctiveQuery
from ..queries.xpath import xpath_to_cq

#: Recognised query syntaxes for textual submissions.
KINDS = ("datalog", "xpath")

#: Query-cache lookups by result: ``parse_hit`` (byte-identical text, parser
#: skipped), ``hit`` (alpha-equivalent entry), ``miss`` (full compile).
CACHE_LOOKUPS = REGISTRY.counter(
    "cqtrees_query_cache_lookups_total",
    "Query-cache lookups by result (parse_hit / hit / miss).",
    ("result",),
)


@dataclass
class CachedQuery:
    """One resident query plan: canonical query, compiled form, engine choice."""

    key: str
    query: ConjunctiveQuery
    compiled: CompiledQuery
    engine: Engine
    hits: int = field(default=0)
    #: Memoized :class:`~repro.planning.plan.QueryPlan` values, keyed by
    #: (stats bucket, routing, engine override, propagator override,
    #: accel_only).  Bucket-keying is the invalidation story: re-registering a
    #: document with different contents moves it to another stats bucket, so
    #: stale plans are never served (they only age out of the bounded map).
    plans: dict = field(default_factory=dict)

    def describe(self) -> dict:
        # Report the decomposition width only when the lazy cached property
        # was already materialized (engine routing forces it for every cyclic
        # query).  Forcing it here would run the exact treewidth search for
        # entries that never needed one -- tens of milliseconds per 12-variable
        # entry, under the cache lock -- just to describe them.
        decomposition = self.compiled.__dict__.get("decomposition")
        return {
            "key": self.key,
            "arity": self.query.arity,
            "atoms": len(self.query.body),
            "engine": self.engine.value,
            "width": decomposition.width if decomposition is not None else None,
            "hits": self.hits,
            "plans": len(self.plans),
        }


class QueryCache:
    """Renaming-invariant memoization of the query-side pipeline."""

    def __init__(self, capacity: Optional[int] = 1024):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedQuery]" = OrderedDict()
        self._parse_cache: "OrderedDict[tuple[str, str], CachedQuery]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._parse_hits = 0

    # -- lookup / population ---------------------------------------------------

    def resolve_text(self, text: str, kind: str = "datalog") -> tuple[CachedQuery, bool]:
        """The cache entry for a textual query, plus whether it was warm.

        ``kind`` selects the syntax: ``"datalog"`` rule notation or
        ``"xpath"`` navigational expressions.  Parsing happens at most once
        per distinct text; parse errors propagate
        (:class:`~repro.queries.parser.QueryParseError`,
        :class:`~repro.queries.xpath.XPathTranslationError`) and failed
        parses are not cached.
        """
        if kind not in KINDS:
            raise ValueError(f"unknown query kind {kind!r}; expected one of {KINDS}")
        parse_key = (kind, text)
        with self._lock:
            cached = self._parse_cache.get(parse_key)
            if cached is not None:
                self._parse_cache.move_to_end(parse_key)
                if cached.key in self._entries:
                    # A textual hit is a use of the entry too; without this
                    # touch the hottest (textually stable) queries would be
                    # the first evicted from the entry LRU.
                    self._entries.move_to_end(cached.key)
                else:
                    # The entry was LRU-evicted while its parse-cache pointer
                    # survived (e.g. object-form resolves pushed it out).
                    # Serving the dead entry without re-admitting it would
                    # silently violate the capacity bound: ``describe()`` and
                    # ``stats()`` would disagree with what is actually being
                    # served.  Re-admit it as the most recent entry and
                    # re-enforce the bound.
                    self._entries[cached.key] = cached
                    if self.capacity is not None:
                        while len(self._entries) > self.capacity:
                            self._entries.popitem(last=False)
                self._parse_hits += 1
                self._hits += 1
                cached.hits += 1
                CACHE_LOOKUPS.inc(result="parse_hit")
                return cached, True
        with tracing.span("parse", kind=kind):
            query = xpath_to_cq(text) if kind == "xpath" else parse_query(text)
        entry, hit = self.resolve_query(query)
        with self._lock:
            self._parse_cache[parse_key] = entry
            if self.capacity is not None:
                while len(self._parse_cache) > self.capacity:
                    self._parse_cache.popitem(last=False)
        return entry, hit

    def resolve_query(self, query: ConjunctiveQuery) -> tuple[CachedQuery, bool]:
        """The cache entry for a query object, plus whether it was warm.

        Alpha-equivalent queries share one entry (and one compiled artifact);
        the answer-preserving simplification runs first, so queries that only
        differ in vacuous existential structure (``//``-step roots, collapsible
        ``Child*``/``Child`` chains) share one too -- and the compiled plan
        never carries the full-domain variables the rewrite removes.
        """
        query = simplify_query(query)
        key = canonical_key(query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                entry.hits += 1
                CACHE_LOOKUPS.inc(result="hit")
                return entry, True
        # Compile outside the lock: canonicalize/compile_query are themselves
        # memoized and thread-safe, so a rare duplicate compile race is cheap.
        with tracing.span("canonicalize"):
            canonical = canonicalize(query)
        with tracing.span("compile"):
            entry = CachedQuery(
                key=key,
                query=canonical,
                compiled=compile_query(canonical),
                engine=choose_engine(canonical),
            )
            tracing.annotate(engine=entry.engine.value)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._hits += 1
                existing.hits += 1
                CACHE_LOOKUPS.inc(result="hit")
                return existing, True
            self._entries[key] = entry
            self._misses += 1
            CACHE_LOOKUPS.inc(result="miss")
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
        return entry, False

    #: Distinct plans kept per cache entry.  Plans are small (a dataclass of
    #: floats over the already-resident decomposition), so the bound only
    #: guards against a pathological stream of distinct stats buckets.
    PLANS_PER_ENTRY = 32

    def plan_for(
        self,
        entry: CachedQuery,
        stats: DocumentStats,
        *,
        routing: str = "cost",
        engine: Optional[Engine] = None,
        propagator: Optional[Propagator] = None,
        accel_only: bool = False,
    ) -> QueryPlan:
        """The :class:`QueryPlan` for ``entry`` on a document in ``stats``'s bucket.

        Plans are pure functions of (canonical query, stats bucket, overrides)
        -- ``entry`` holds the canonical query, so alpha-equivalent
        submissions share plans exactly as they share compiled artifacts.
        """
        plan_key = (
            stats.bucket(),
            routing,
            engine.value if engine is not None else None,
            propagator.value if propagator is not None else None,
            accel_only,
        )
        with self._lock:
            plan = entry.plans.get(plan_key)
            if plan is not None:
                return plan
        plan = plan_query(
            entry.query,
            stats,
            compiled=entry.compiled,
            routing=routing,
            engine=engine,
            propagator=propagator,
            accel_only=accel_only,
        )
        with self._lock:
            existing = entry.plans.setdefault(plan_key, plan)
            while len(entry.plans) > self.PLANS_PER_ENTRY:
                entry.plans.pop(next(iter(entry.plans)))
        return existing

    def entry_for_text(self, text: str, kind: str = "datalog") -> CachedQuery:
        """Convenience wrapper around :meth:`resolve_text`."""
        return self.resolve_text(text, kind)[0]

    def entry_for_query(self, query: ConjunctiveQuery) -> CachedQuery:
        """Convenience wrapper around :meth:`resolve_query`."""
        return self.resolve_query(query)[0]

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._parse_cache.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- statistics ------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "parse_entries": len(self._parse_cache),
                "plan_entries": sum(len(e.plans) for e in self._entries.values()),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "parse_hits": self._parse_hits,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }

    def describe(self) -> list[dict]:
        with self._lock:
            return [entry.describe() for entry in self._entries.values()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryCache(entries={len(self)}, stats={self.stats()})"
