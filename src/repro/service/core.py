"""The request-execution core shared by the thread and process backends.

:class:`Request` (the wire format), :class:`RequestResult` (the outcome) and
:func:`run_request` (resolve the cached plan, fetch the resident document,
evaluate, sort, truncate) live here so that every serving backend --
:class:`~repro.service.executor.BatchExecutor`'s worker threads and
:class:`~repro.service.shards.ShardedExecutor`'s worker processes -- executes
requests through one code path and therefore honours one contract:

* results are deterministic: answers sorted ascending, ``limit`` applied
  *after* sorting, byte-identical to a sequential
  :func:`repro.evaluation.planner.evaluate` call for every propagator;
* failures are per-request values, never batch aborts.  Client mistakes
  (unknown document, parse errors, bad parameters) are reported verbatim in
  ``RequestResult.error``; anything else -- a genuine bug in the evaluation
  stack -- is still caught and reported with an ``internal:`` prefix, because
  one poisoned request must not void its batchmates or kill a worker;
* error results carry the same attribution fields (``elapsed_ms``,
  ``propagator``, ``engine``) as successes, so failed requests show up in
  latency accounting with full routing attribution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from ..evaluation.planner import Engine, evaluate
from ..evaluation.propagation import DEFAULT_PROPAGATOR, as_propagator
from ..observability import tracing
from ..observability.accounting import ACCOUNTING
from ..observability.metrics import REGISTRY, SLOW_LOG
from ..planning import QueryPlan, validate_routing
from ..queries.parser import QueryParseError
from ..queries.query import ConjunctiveQuery
from ..queries.xpath import XPathTranslationError
from ..trees.xmlio import XMLParseError
from .cache import CachedQuery, QueryCache
from .store import DocumentNotFound, DocumentStore

#: Request outcomes: ``ok`` / ``error`` (client mistakes) / ``internal``.
REQUESTS_TOTAL = REGISTRY.counter(
    "cqtrees_requests_total",
    "Evaluation requests executed, by outcome.",
    ("status",),
)
#: End-to-end request latency, attributed to the engine/propagator pair that
#: served it (errors attribute to the engine chosen before the failure, or
#: ``none`` when routing itself failed).
REQUEST_SECONDS = REGISTRY.histogram(
    "cqtrees_request_seconds",
    "End-to-end request latency in seconds, by engine and propagator.",
    ("engine", "propagator"),
)
#: Planner choices, one increment per routed request: which routing made the
#: call and where it sent the query.
PLAN_CHOICES = REGISTRY.counter(
    "cqtrees_plan_choices_total",
    "Planner choices by routing, engine and SQL lowering.",
    ("routing", "engine", "lowering"),
)
#: Cost-model estimates span many orders of magnitude (label-selective bags
#: vs cartesian n^(w+1) terms), so both plan histograms bucket by decade.
_DECADE_BUCKETS = tuple(10.0**exponent for exponent in range(13))
PLAN_ESTIMATED_COST = REGISTRY.histogram(
    "cqtrees_plan_estimated_cost",
    "Estimated cost (cost-model work units) of the chosen plan, by engine.",
    ("engine",),
    buckets=_DECADE_BUCKETS,
)
#: Estimated-vs-actual: work units retired per wall-clock second.  A stable
#: band per engine means the estimates rank plans correctly; drift flags a
#: mis-modelled workload.
PLAN_COST_PER_SECOND = REGISTRY.histogram(
    "cqtrees_plan_cost_per_second",
    "Estimated plan cost divided by actual request seconds, by engine.",
    ("engine",),
    buckets=_DECADE_BUCKETS,
)

#: Exceptions that are the client's fault; reported verbatim per request.
REQUEST_ERRORS = (
    DocumentNotFound,
    QueryParseError,
    XPathTranslationError,
    XMLParseError,
    ValueError,
)


def validate_limit(limit: object) -> Optional[int]:
    """Check a wire-format ``limit``: a non-negative integer or ``None``.

    ``bool`` is rejected explicitly -- ``True`` passes ``isinstance(x, int)``,
    so without the check ``{"limit": true}`` would silently mean ``limit=1``.
    """
    if limit is not None and (
        isinstance(limit, bool) or not isinstance(limit, int) or limit < 0
    ):
        raise ValueError("'limit' must be a non-negative integer")
    return limit


def validate_engine(engine: object) -> Optional[Engine]:
    """Check a wire-format ``engine``; ``None``/``"auto"`` mean no override.

    Returns the explicit :class:`Engine` override or ``None`` when the
    planner (query shape + document residency) should choose.
    """
    if engine is None:
        return None
    if isinstance(engine, Engine):
        member = engine
    elif isinstance(engine, str):
        try:
            member = Engine(engine)
        except ValueError:
            allowed = ", ".join(e.value for e in Engine)
            raise ValueError(f"unknown engine {engine!r}; expected one of: {allowed}") from None
    else:
        raise ValueError("'engine' must be a string")
    return None if member is Engine.AUTO else member


def validate_max_workers(max_workers: object) -> Optional[int]:
    """Check a wire-format ``max_workers``: a positive integer or ``None``.

    Rejects ``bool`` for the same reason as :func:`validate_limit` --
    ``{"max_workers": true}`` must not be accepted as ``1``.
    """
    if max_workers is not None and (
        isinstance(max_workers, bool) or not isinstance(max_workers, int) or max_workers < 1
    ):
        raise ValueError("'max_workers' must be a positive integer")
    return max_workers


@dataclass(frozen=True)
class Request:
    """One evaluation request.

    Exactly one of ``query`` (datalog text or a
    :class:`~repro.queries.query.ConjunctiveQuery`) and ``xpath`` must be
    given.  ``limit`` truncates the *sorted* answer list; the total count is
    reported either way.  ``engine`` forces a specific evaluation engine
    (``"sql"``, ``"backtracking"``, ...); by default the planner chooses from
    the query shape, the document's statistics and its residency (accel-only
    documents route to SQL automatically).  ``routing`` selects how the
    planner chooses: ``"cost"`` (document-statistics estimates, the default)
    or ``"static"`` (the pre-planner shape rules, kept as the ablation
    baseline -- answers are byte-identical either way).  ``propagator`` is
    ``"auto"`` by default (the plan's choice); naming one (``"ac4"``,
    ``"ac3"``, ``"hybrid"``, ...) forces it.
    """

    doc: str
    query: Union[str, ConjunctiveQuery, None] = None
    xpath: Optional[str] = None
    propagator: str = "auto"
    limit: Optional[int] = None
    engine: Optional[str] = None
    routing: str = "cost"
    #: Record a tracing span tree for this request (attached as ``trace``).
    debug: bool = False
    #: Explain the plan -- engine, width, bags, SQL -- without executing.
    explain: bool = False

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Request":
        """Build a request from a JSON object (HTTP body / JSONL line)."""
        if not isinstance(payload, dict):
            raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - {
            "doc",
            "query",
            "xpath",
            "propagator",
            "limit",
            "engine",
            "routing",
            "debug",
            "explain",
        }
        if unknown:
            raise ValueError(f"unknown request field(s): {', '.join(sorted(unknown))}")
        doc = payload.get("doc")
        if not isinstance(doc, str) or not doc:
            raise ValueError("request needs a non-empty 'doc' document id")
        limit = validate_limit(payload.get("limit"))
        validate_engine(payload.get("engine"))  # fail fast on unknown engines
        for key in ("query", "xpath"):
            if payload.get(key) is not None and not isinstance(payload[key], str):
                raise ValueError(f"'{key}' must be a string")
        propagator = payload.get("propagator", "auto")
        if not isinstance(propagator, str):
            raise ValueError("'propagator' must be a string")
        routing = payload.get("routing", "cost")
        if not isinstance(routing, str):
            raise ValueError("'routing' must be a string")
        validate_routing(routing)  # fail fast on unknown routings
        for key in ("debug", "explain"):
            if not isinstance(payload.get(key, False), bool):
                raise ValueError(f"'{key}' must be a boolean")
        return cls(
            doc=doc,
            query=payload.get("query"),
            xpath=payload.get("xpath"),
            propagator=propagator,
            limit=limit,
            engine=payload.get("engine"),
            routing=routing,
            debug=bool(payload.get("debug", False)),
            explain=bool(payload.get("explain", False)),
        )


@dataclass
class RequestResult:
    """The outcome of one request: answers or an error, plus timings."""

    doc: str
    query_key: Optional[str] = None
    answers: Optional[list[tuple[int, ...]]] = None
    count: int = 0
    truncated: bool = False
    satisfied: Optional[bool] = None
    elapsed_ms: float = 0.0
    propagator: str = str(DEFAULT_PROPAGATOR)
    engine: Optional[str] = None
    cache_hit: bool = False
    error: Optional[str] = None
    #: The span tree recorded for a ``debug: true`` request (JSON dict).
    trace: Optional[dict] = None
    #: The plan description of an ``explain: true`` request (JSON dict).
    explain: Optional[dict] = None
    #: Plan attribution for the slow log (lowering, estimated cost, drift).
    #: Deliberately NOT serialized: wire bodies must stay byte-identical
    #: whether or not the accounting layer recorded anything.
    plan_attribution: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json_dict(self) -> dict:
        """A stable JSON rendering (HTTP responses and JSONL output)."""
        if not self.ok:
            # Error results keep their attribution fields: latency accounting
            # must be able to see what a failed request cost and which
            # engine/propagator pair it was (or would have been) routed to.
            payload = {
                "doc": self.doc,
                "error": self.error,
                "elapsed_ms": round(self.elapsed_ms, 3),
                "propagator": self.propagator,
                "engine": self.engine,
            }
            if self.trace is not None:
                payload["trace"] = self.trace
            return payload
        if self.explain is not None:
            # Explain results never executed: answers/count would be noise.
            return {
                "doc": self.doc,
                "query_key": self.query_key,
                "explain": self.explain,
                "elapsed_ms": round(self.elapsed_ms, 3),
                "propagator": self.propagator,
                "engine": self.engine,
                "cache_hit": self.cache_hit,
            }
        payload = {
            "doc": self.doc,
            "query_key": self.query_key,
            "answers": [list(answer) for answer in self.answers or []],
            "count": self.count,
            "truncated": self.truncated,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "propagator": self.propagator,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
        }
        if self.satisfied is not None:
            payload["satisfied"] = self.satisfied
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload


def execute_batch_payload(executor, payload: dict) -> dict:
    """Validate and execute a ``/batch`` wire payload against any backend.

    Shared by the threaded and async HTTP front ends so the batch
    request/response shaping cannot drift between them.  Raises
    :class:`ValueError` on malformed payloads (the front ends answer 400).
    """
    raw_requests = payload.get("requests")
    if not isinstance(raw_requests, list):
        raise ValueError("batch body needs a 'requests' list")
    max_workers = validate_max_workers(payload.get("max_workers"))
    requests = [Request.from_json_dict(item) for item in raw_requests]
    results = executor.execute_batch(requests, max_workers=max_workers)
    return {
        "results": [result.to_json_dict() for result in results],
        "errors": sum(1 for result in results if not result.ok),
    }


def profile_control_payload(executor, payload: dict) -> dict:
    """Validate and apply a ``POST /profile`` wire payload against any backend.

    Shared by both HTTP front ends (like :func:`execute_batch_payload`) so the
    profiler control surface cannot drift between them.  Raises
    :class:`ValueError` on malformed payloads (the front ends answer 400).
    """
    unknown = set(payload) - {"action", "hz"}
    if unknown:
        raise ValueError(f"unknown profile field(s): {', '.join(sorted(unknown))}")
    action = payload.get("action")
    if not isinstance(action, str) or not action:
        raise ValueError("profile body needs an 'action' string (start|stop|clear)")
    hz = payload.get("hz")
    if hz is not None and (isinstance(hz, bool) or not isinstance(hz, int)):
        raise ValueError("'hz' must be an integer")
    return executor.profile_control(action, hz)


def resolve_entry(cache: QueryCache, request: Request) -> tuple[CachedQuery, bool]:
    """The cache entry for the request's query, plus whether it was warm."""
    if (request.query is None) == (request.xpath is None):
        raise ValueError("exactly one of 'query' and 'xpath' must be given")
    if request.xpath is not None:
        if not isinstance(request.xpath, str):
            raise ValueError(f"'xpath' must be a string, got {type(request.xpath).__name__}")
        return cache.resolve_text(request.xpath, kind="xpath")
    if isinstance(request.query, ConjunctiveQuery):
        return cache.resolve_query(request.query)
    if isinstance(request.query, str):
        return cache.resolve_text(request.query, kind="datalog")
    raise ValueError(
        f"'query' must be a string or ConjunctiveQuery, got {type(request.query).__name__}"
    )


def _stream_sql_answers(
    backend, request: Request, query: ConjunctiveQuery, plan: QueryPlan
) -> tuple[list[tuple[int, ...]], int, bool]:
    """Streamed ``(answers, count, truncated)`` for an accel-only document.

    The answers arrive already sorted (the SQL carries a deterministic
    ``ORDER BY``) and the ``limit`` is pushed into the statement, so a
    truncated request never materializes the full answer set anywhere --
    streaming ``limit + 1`` rows detects truncation, and the exact total
    then comes from one ``COUNT(*)`` that needs O(1) result memory.  The
    plan's SQL knobs (lowering shape, TEMP-table materialization) apply to
    both the stream and the count.
    """
    sql_knobs = {"lowering": plan.lowering, "materialize": plan.materialize}
    if request.limit is None:
        answers = list(backend.stream_answers(request.doc, query, **sql_knobs))
        return answers, len(answers), False
    answers = list(
        backend.stream_answers(request.doc, query, limit=request.limit + 1, **sql_knobs)
    )
    if len(answers) <= request.limit:
        return answers, len(answers), False
    return (
        answers[: request.limit],
        backend.count_answers(request.doc, query, **sql_knobs),
        True,
    )


def _resolve_plan(
    store: DocumentStore,
    cache: QueryCache,
    request: Request,
    attribution: Optional[dict] = None,
) -> tuple[QueryPlan, CachedQuery, bool, str]:
    """Shared routing front half: ``(plan, entry, cache_hit, residency)``.

    Produces the single :class:`~repro.planning.plan.QueryPlan` every entry
    point runs from, memoized per (canonical query, stats bucket, overrides)
    in the query cache.  Explicit ``request.engine`` / ``request.propagator``
    overrides always win; documents resident only in the accel store plan
    with ``accel_only=True`` and so pin :attr:`Engine.SQL` (the sole engine
    that can see them).  Raises :data:`REQUEST_ERRORS` members on routing
    mistakes; ``attribution`` (when given) is filled as facts are
    established, so even a routing failure is attributed to the engine it
    was routed to.
    """
    routing = validate_routing(request.routing)
    propagator_override = (
        None if request.propagator == "auto" else as_propagator(request.propagator)
    )
    if propagator_override is not None and attribution is not None:
        attribution["propagator"] = propagator_override.value
    override = validate_engine(request.engine)
    if override is not None and attribution is not None:
        attribution["engine"] = override.value
    entry, cache_hit = resolve_entry(cache, request)
    residency = store.residency(request.doc)
    if residency is None:
        raise DocumentNotFound(request.doc)
    accel_only = residency == "accel"
    plan = cache.plan_for(
        entry,
        store.stats_for(request.doc),
        routing=routing,
        engine=override,
        propagator=propagator_override,
        accel_only=accel_only,
    )
    if attribution is not None:
        attribution["engine"] = plan.engine.value
        attribution["propagator"] = plan.propagator.value
        attribution["query_key"] = entry.key
    if accel_only and plan.engine is not Engine.SQL:
        raise ValueError(
            f"document {request.doc!r} is accel-only; "
            f"engine {plan.engine.value!r} needs a resident document"
        )
    PLAN_CHOICES.inc(routing=plan.routing, engine=plan.engine.value, lowering=plan.lowering)
    PLAN_ESTIMATED_COST.observe(plan.estimated_cost, engine=plan.engine.value)
    return plan, entry, cache_hit, residency


def _execute_request(
    store: DocumentStore, cache: QueryCache, request: Request, attribution: dict, started: float
) -> RequestResult:
    """The happy path of :func:`run_request`; exceptions bubble to the caller.

    ``attribution`` collects routing facts as they are established, so the
    caller's error handler can attribute failures to the engine/propagator
    they were (or would have been) routed to.
    """
    plan, entry, cache_hit, residency = _resolve_plan(store, cache, request, attribution)
    plan_ready = time.perf_counter()
    if residency == "accel":
        with tracing.span("sql_execute", doc=request.doc, engine=plan.engine.value):
            answers, count, truncated = _stream_sql_answers(
                store.accel_backend, request, entry.query, plan
            )
    else:
        document = store.get(request.doc)
        with tracing.span(
            "evaluate", engine=plan.engine.value, propagator=plan.propagator.value
        ):
            answers = sorted(
                evaluate(
                    entry.query,
                    document.structure,
                    engine=plan.engine,
                    propagator=plan.propagator,
                    compiled=entry.compiled,
                    lowering=plan.lowering,
                    materialize=plan.materialize,
                )
            )
        count = len(answers)
        truncated = request.limit is not None and count > request.limit
        if truncated:
            answers = answers[: request.limit]
    finished = time.perf_counter()
    elapsed_ms = (finished - started) * 1000.0
    if elapsed_ms > 0.0:
        # Estimated-vs-actual: how many estimated work units one second of
        # this engine's wall-clock retired on this request.
        PLAN_COST_PER_SECOND.observe(
            plan.estimated_cost / (elapsed_ms / 1000.0), engine=plan.engine.value
        )
    # Close the planning loop: ledger the actuals (elapsed, rows enumerated,
    # stage split) against the plan's estimates.  The drift ratio feeds the
    # /metrics histogram, the /stats top-drift table and the slow log.
    drift = ACCOUNTING.record(
        query_key=entry.key,
        query_text=str(entry.query),
        doc=request.doc,
        rows=count,
        elapsed_ms=elapsed_ms,
        stage_ms={
            "plan": (plan_ready - started) * 1000.0,
            "execute": (finished - plan_ready) * 1000.0,
        },
        **plan.accounting_fields(),
    )
    return RequestResult(
        doc=request.doc,
        query_key=entry.key,
        answers=answers,
        count=count,
        truncated=truncated,
        satisfied=(count > 0) if entry.query.is_boolean else None,
        elapsed_ms=elapsed_ms,
        propagator=plan.propagator.value,
        engine=plan.engine.value,
        cache_hit=cache_hit,
        plan_attribution={
            "lowering": plan.lowering,
            "routing": plan.routing,
            "estimated_cost": round(plan.estimated_cost, 1),
            "drift": drift if drift is None else round(drift, 4),
        },
    )


def _error_result(request: Request, attribution: dict, started: float, error: str) -> RequestResult:
    return RequestResult(
        doc=request.doc,
        query_key=attribution.get("query_key"),
        propagator=attribution.get("propagator", str(request.propagator)),
        engine=attribution.get("engine"),
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
        error=error,
    )


def _observe_result(result: RequestResult) -> RequestResult:
    """Record a finished request in the metrics registry and the slow log."""
    if result.ok:
        status = "ok"
    elif result.error is not None and result.error.startswith("internal:"):
        status = "internal"
    else:
        status = "error"
    REQUESTS_TOTAL.inc(status=status)
    REQUEST_SECONDS.observe(
        result.elapsed_ms / 1000.0,
        engine=result.engine or "none",
        propagator=result.propagator,
    )
    # Plan attribution (when execution got far enough to have a plan) lets
    # the slow log answer "was this slow because the estimate was wrong?".
    SLOW_LOG.maybe_record(
        result.elapsed_ms,
        doc=result.doc,
        query_key=result.query_key,
        engine=result.engine,
        propagator=result.propagator,
        ok=result.ok,
        **(result.plan_attribution or {}),
    )
    return result


def run_request(store: DocumentStore, cache: QueryCache, request: Request) -> RequestResult:
    """Evaluate one request against resident artifacts; never raises.

    Client errors (:data:`REQUEST_ERRORS`) are reported verbatim in
    ``result.error``; unexpected exceptions -- evaluation-stack bugs -- are
    reported with an ``internal:`` prefix so they are distinguishable, but
    they still come back as a *value*: a crash in one request must not abort
    its batch, kill its worker thread, or poison its shard process.

    Engine routing: an explicit ``request.engine`` always wins; otherwise the
    planner's per-query choice applies, except that documents resident only
    in the accel store auto-route to :attr:`Engine.SQL` (the sole engine that
    can see them) with answers streamed out of SQLite in sorted order --
    byte-identical to what the in-memory engines would produce.

    Observability: every executed request lands in the metrics registry
    (:data:`REQUESTS_TOTAL`, :data:`REQUEST_SECONDS`) and, past the latency
    threshold, the slow-query log.  ``request.explain`` short-circuits to
    :func:`explain_request` (plan only, never executed, not metered);
    ``request.debug`` additionally records a span tree and attaches it as
    ``result.trace``.
    """
    if request.explain:
        return explain_request(store, cache, request)
    if not request.debug:
        return _run_request(store, cache, request)
    with tracing.trace("request", doc=request.doc) as root:
        result = _run_request(store, cache, request)
    result.trace = root.to_json_dict()
    return result


def _run_request(store: DocumentStore, cache: QueryCache, request: Request) -> RequestResult:
    started = time.perf_counter()
    attribution: dict = {}
    try:
        result = _execute_request(store, cache, request, attribution, started)
    except REQUEST_ERRORS as error:
        result = _error_result(request, attribution, started, str(error))
    except Exception as error:  # noqa: BLE001 - the per-request error contract
        result = _error_result(
            request, attribution, started, f"internal: {type(error).__name__}: {error}"
        )
    return _observe_result(result)


def explain_request(store: DocumentStore, cache: QueryCache, request: Request) -> RequestResult:
    """Describe the plan a request would run -- without executing it.

    The ``explain`` payload reports the full :class:`QueryPlan`: routing,
    chosen engine and propagator, the SQL lowering that *would actually run*
    (including TEMP-table materialization), the document's residency and
    stats bucket, the cost-model estimates that produced the choice, cache
    state, the compiled decomposition (achieved width, exactness, method,
    bag structure as sorted variable lists plus the join-tree parent vector,
    the static per-bag cost the width tie-break uses) and -- for
    :attr:`Engine.SQL` -- the generated SQL text for the *chosen* lowering
    (lowered with an empty extra-unary environment: the statement a plain
    evaluation of the canonical query would execute).  Errors follow the
    same per-request value contract as :func:`run_request`.
    """
    started = time.perf_counter()
    attribution: dict = {}
    try:
        plan, entry, cache_hit, residency = _resolve_plan(store, cache, request, attribution)
        from ..decomposition.decompose import atom_pair_costs, decomposition_cost

        decomposition = plan.decomposition
        static_cost = decomposition_cost(decomposition, atom_pair_costs(entry.compiled))
        payload = {
            "doc": request.doc,
            "residency": residency,
            "routing": plan.routing,
            "engine": plan.engine.value,
            "propagator": plan.propagator.value,
            "lowering": plan.lowering,
            "materialize": plan.materialize,
            "stats_bucket": plan.stats_bucket,
            "cache_hit": cache_hit,
            "cache_hits": entry.hits,
            "arity": entry.query.arity,
            "atoms": len(entry.query.body),
            "width": decomposition.width,
            "width_exact": decomposition.exact,
            "decomposition_method": decomposition.method,
            "decomposition_static_cost": static_cost,
            "bags": [sorted(bag) for bag in decomposition.bags],
            "bag_parents": list(decomposition.parent),
            "estimates": plan.describe()["estimates"],
        }
        if plan.engine is Engine.SQL:
            from ..backends.sqlite import explain_sql

            backend = store.accel_backend if residency == "accel" else None
            payload["sql"] = explain_sql(
                entry.query, doc_id=request.doc, backend=backend, lowering=plan.lowering
            )
    except REQUEST_ERRORS as error:
        return _error_result(request, attribution, started, str(error))
    except Exception as error:  # noqa: BLE001 - the per-request error contract
        return _error_result(
            request, attribution, started, f"internal: {type(error).__name__}: {error}"
        )
    return RequestResult(
        doc=request.doc,
        query_key=entry.key,
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
        propagator=plan.propagator.value,
        engine=plan.engine.value,
        cache_hit=cache_hit,
        explain=payload,
    )
