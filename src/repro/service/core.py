"""The request-execution core shared by the thread and process backends.

:class:`Request` (the wire format), :class:`RequestResult` (the outcome) and
:func:`run_request` (resolve the cached plan, fetch the resident document,
evaluate, sort, truncate) live here so that every serving backend --
:class:`~repro.service.executor.BatchExecutor`'s worker threads and
:class:`~repro.service.shards.ShardedExecutor`'s worker processes -- executes
requests through one code path and therefore honours one contract:

* results are deterministic: answers sorted ascending, ``limit`` applied
  *after* sorting, byte-identical to a sequential
  :func:`repro.evaluation.planner.evaluate` call for every propagator;
* failures are per-request values, never batch aborts.  Client mistakes
  (unknown document, parse errors, bad parameters) are reported verbatim in
  ``RequestResult.error``; anything else -- a genuine bug in the evaluation
  stack -- is still caught and reported with an ``internal:`` prefix, because
  one poisoned request must not void its batchmates or kill a worker;
* error results carry the same attribution fields (``elapsed_ms``,
  ``propagator``) as successes, so failed requests show up in latency
  accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from ..evaluation.planner import Engine, choose_engine, evaluate
from ..evaluation.propagation import DEFAULT_PROPAGATOR, as_propagator
from ..queries.parser import QueryParseError
from ..queries.query import ConjunctiveQuery
from ..queries.xpath import XPathTranslationError
from ..trees.xmlio import XMLParseError
from .cache import CachedQuery, QueryCache
from .store import DocumentNotFound, DocumentStore

#: Exceptions that are the client's fault; reported verbatim per request.
REQUEST_ERRORS = (
    DocumentNotFound,
    QueryParseError,
    XPathTranslationError,
    XMLParseError,
    ValueError,
)


def validate_limit(limit: object) -> Optional[int]:
    """Check a wire-format ``limit``: a non-negative integer or ``None``.

    ``bool`` is rejected explicitly -- ``True`` passes ``isinstance(x, int)``,
    so without the check ``{"limit": true}`` would silently mean ``limit=1``.
    """
    if limit is not None and (
        isinstance(limit, bool) or not isinstance(limit, int) or limit < 0
    ):
        raise ValueError("'limit' must be a non-negative integer")
    return limit


def validate_engine(engine: object) -> Optional[Engine]:
    """Check a wire-format ``engine``; ``None``/``"auto"`` mean no override.

    Returns the explicit :class:`Engine` override or ``None`` when the
    planner (query shape + document residency) should choose.
    """
    if engine is None:
        return None
    if isinstance(engine, Engine):
        member = engine
    elif isinstance(engine, str):
        try:
            member = Engine(engine)
        except ValueError:
            allowed = ", ".join(e.value for e in Engine)
            raise ValueError(f"unknown engine {engine!r}; expected one of: {allowed}") from None
    else:
        raise ValueError("'engine' must be a string")
    return None if member is Engine.AUTO else member


def validate_max_workers(max_workers: object) -> Optional[int]:
    """Check a wire-format ``max_workers``: a positive integer or ``None``.

    Rejects ``bool`` for the same reason as :func:`validate_limit` --
    ``{"max_workers": true}`` must not be accepted as ``1``.
    """
    if max_workers is not None and (
        isinstance(max_workers, bool) or not isinstance(max_workers, int) or max_workers < 1
    ):
        raise ValueError("'max_workers' must be a positive integer")
    return max_workers


@dataclass(frozen=True)
class Request:
    """One evaluation request.

    Exactly one of ``query`` (datalog text or a
    :class:`~repro.queries.query.ConjunctiveQuery`) and ``xpath`` must be
    given.  ``limit`` truncates the *sorted* answer list; the total count is
    reported either way.  ``engine`` forces a specific evaluation engine
    (``"sql"``, ``"backtracking"``, ...); by default the planner chooses from
    the query shape and the document's residency (accel-only documents route
    to SQL automatically).
    """

    doc: str
    query: Union[str, ConjunctiveQuery, None] = None
    xpath: Optional[str] = None
    propagator: str = str(DEFAULT_PROPAGATOR)
    limit: Optional[int] = None
    engine: Optional[str] = None

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Request":
        """Build a request from a JSON object (HTTP body / JSONL line)."""
        if not isinstance(payload, dict):
            raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - {"doc", "query", "xpath", "propagator", "limit", "engine"}
        if unknown:
            raise ValueError(f"unknown request field(s): {', '.join(sorted(unknown))}")
        doc = payload.get("doc")
        if not isinstance(doc, str) or not doc:
            raise ValueError("request needs a non-empty 'doc' document id")
        limit = validate_limit(payload.get("limit"))
        validate_engine(payload.get("engine"))  # fail fast on unknown engines
        for key in ("query", "xpath"):
            if payload.get(key) is not None and not isinstance(payload[key], str):
                raise ValueError(f"'{key}' must be a string")
        propagator = payload.get("propagator", str(DEFAULT_PROPAGATOR))
        if not isinstance(propagator, str):
            raise ValueError("'propagator' must be a string")
        return cls(
            doc=doc,
            query=payload.get("query"),
            xpath=payload.get("xpath"),
            propagator=propagator,
            limit=limit,
            engine=payload.get("engine"),
        )


@dataclass
class RequestResult:
    """The outcome of one request: answers or an error, plus timings."""

    doc: str
    query_key: Optional[str] = None
    answers: Optional[list[tuple[int, ...]]] = None
    count: int = 0
    truncated: bool = False
    satisfied: Optional[bool] = None
    elapsed_ms: float = 0.0
    propagator: str = str(DEFAULT_PROPAGATOR)
    engine: Optional[str] = None
    cache_hit: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json_dict(self) -> dict:
        """A stable JSON rendering (HTTP responses and JSONL output)."""
        if not self.ok:
            # Error results keep their attribution fields: latency accounting
            # must be able to see what a failed request cost and which
            # propagator it asked for.
            return {
                "doc": self.doc,
                "error": self.error,
                "elapsed_ms": round(self.elapsed_ms, 3),
                "propagator": self.propagator,
            }
        payload = {
            "doc": self.doc,
            "query_key": self.query_key,
            "answers": [list(answer) for answer in self.answers or []],
            "count": self.count,
            "truncated": self.truncated,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "propagator": self.propagator,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
        }
        if self.satisfied is not None:
            payload["satisfied"] = self.satisfied
        return payload


def execute_batch_payload(executor, payload: dict) -> dict:
    """Validate and execute a ``/batch`` wire payload against any backend.

    Shared by the threaded and async HTTP front ends so the batch
    request/response shaping cannot drift between them.  Raises
    :class:`ValueError` on malformed payloads (the front ends answer 400).
    """
    raw_requests = payload.get("requests")
    if not isinstance(raw_requests, list):
        raise ValueError("batch body needs a 'requests' list")
    max_workers = validate_max_workers(payload.get("max_workers"))
    requests = [Request.from_json_dict(item) for item in raw_requests]
    results = executor.execute_batch(requests, max_workers=max_workers)
    return {
        "results": [result.to_json_dict() for result in results],
        "errors": sum(1 for result in results if not result.ok),
    }


def resolve_entry(cache: QueryCache, request: Request) -> tuple[CachedQuery, bool]:
    """The cache entry for the request's query, plus whether it was warm."""
    if (request.query is None) == (request.xpath is None):
        raise ValueError("exactly one of 'query' and 'xpath' must be given")
    if request.xpath is not None:
        if not isinstance(request.xpath, str):
            raise ValueError(f"'xpath' must be a string, got {type(request.xpath).__name__}")
        return cache.resolve_text(request.xpath, kind="xpath")
    if isinstance(request.query, ConjunctiveQuery):
        return cache.resolve_query(request.query)
    if isinstance(request.query, str):
        return cache.resolve_text(request.query, kind="datalog")
    raise ValueError(
        f"'query' must be a string or ConjunctiveQuery, got {type(request.query).__name__}"
    )


def _stream_sql_answers(
    backend, request: Request, query: ConjunctiveQuery
) -> tuple[list[tuple[int, ...]], int, bool]:
    """Streamed ``(answers, count, truncated)`` for an accel-only document.

    The answers arrive already sorted (the SQL carries a deterministic
    ``ORDER BY``) and the ``limit`` is pushed into the statement, so a
    truncated request never materializes the full answer set anywhere --
    streaming ``limit + 1`` rows detects truncation, and the exact total
    then comes from one ``COUNT(*)`` that needs O(1) result memory.
    """
    if request.limit is None:
        answers = list(backend.stream_answers(request.doc, query))
        return answers, len(answers), False
    answers = list(backend.stream_answers(request.doc, query, limit=request.limit + 1))
    if len(answers) <= request.limit:
        return answers, len(answers), False
    return answers[: request.limit], backend.count_answers(request.doc, query), True


def run_request(store: DocumentStore, cache: QueryCache, request: Request) -> RequestResult:
    """Evaluate one request against resident artifacts; never raises.

    Client errors (:data:`REQUEST_ERRORS`) are reported verbatim in
    ``result.error``; unexpected exceptions -- evaluation-stack bugs -- are
    reported with an ``internal:`` prefix so they are distinguishable, but
    they still come back as a *value*: a crash in one request must not abort
    its batch, kill its worker thread, or poison its shard process.

    Engine routing: an explicit ``request.engine`` always wins; otherwise the
    planner's per-query choice applies, except that documents resident only
    in the accel store auto-route to :attr:`Engine.SQL` (the sole engine that
    can see them) with answers streamed out of SQLite in sorted order --
    byte-identical to what the in-memory engines would produce.
    """
    started = time.perf_counter()
    try:
        propagator = as_propagator(request.propagator)
        override = validate_engine(request.engine)
        entry, cache_hit = resolve_entry(cache, request)
        residency = store.residency(request.doc)
        if residency is None:
            raise DocumentNotFound(request.doc)
        accel_only = residency == "accel"
        if override is not None:
            engine = override
        elif accel_only:
            engine = choose_engine(entry.query, accel_only=True)
        else:
            engine = entry.engine
        if accel_only:
            if engine is not Engine.SQL:
                raise ValueError(
                    f"document {request.doc!r} is accel-only; "
                    f"engine {engine.value!r} needs a resident document"
                )
            answers, count, truncated = _stream_sql_answers(
                store.accel_backend, request, entry.query
            )
        else:
            document = store.get(request.doc)
            answers = sorted(
                evaluate(
                    entry.query,
                    document.structure,
                    engine=engine,
                    propagator=propagator,
                    compiled=entry.compiled,
                )
            )
            count = len(answers)
            truncated = request.limit is not None and count > request.limit
            if truncated:
                answers = answers[: request.limit]
    except REQUEST_ERRORS as error:
        return RequestResult(
            doc=request.doc,
            propagator=str(request.propagator),
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            error=str(error),
        )
    except Exception as error:  # noqa: BLE001 - the per-request error contract
        return RequestResult(
            doc=request.doc,
            propagator=str(request.propagator),
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            error=f"internal: {type(error).__name__}: {error}",
        )
    return RequestResult(
        doc=request.doc,
        query_key=entry.key,
        answers=answers,
        count=count,
        truncated=truncated,
        satisfied=(count > 0) if entry.query.is_boolean else None,
        elapsed_ms=(time.perf_counter() - started) * 1000.0,
        propagator=propagator.value,
        engine=engine.value,
        cache_hit=cache_hit,
    )
