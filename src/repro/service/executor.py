"""The batch executor: concurrent request evaluation over resident artifacts.

A request names a resident document, a query (datalog text, XPath text, or a
query object), a propagator, and an optional answer limit.
:class:`BatchExecutor` is the in-process serving backend: it owns a
:class:`~repro.service.store.DocumentStore` and a
:class:`~repro.service.cache.QueryCache`, evaluates single requests, and fans
request batches out over a thread pool -- every worker sharing the same
resident indexes, label sets and compiled plans.  The actual request
execution (:func:`~repro.service.core.run_request`) is shared with the
process-sharded backend (:class:`~repro.service.shards.ShardedExecutor`), so
both uphold the same contract.

Determinism: results come back in request order; each answer list is sorted
ascending (node-id tuples), with ``limit`` applied *after* sorting; and the
answer sets are byte-for-byte those of a sequential
:func:`repro.evaluation.planner.evaluate` call, for every propagator --
evaluation over the shared artifacts is pure, and CPython's GIL plus the
read-only index structures make the concurrent path safe.  Failures are
per-request values (``error`` field), never batch aborts -- including
unexpected (``internal:``) exceptions, which are caught into the result.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Optional, Sequence

from ..observability.accounting import ACCOUNTING
from ..observability.metrics import REGISTRY, SLOW_LOG
from ..observability.profiler import PROFILER
from .cache import QueryCache
from .core import REQUEST_ERRORS, Request, RequestResult, run_request
from .store import DocumentStore

#: Backward-compatible aliases; the canonical definitions live in ``core``.
_REQUEST_ERRORS = REQUEST_ERRORS

__all__ = ["BatchExecutor", "DEFAULT_MAX_WORKERS", "Request", "RequestResult"]

#: Default worker-thread bound for batch execution.
DEFAULT_MAX_WORKERS = 8


class BatchExecutor:
    """Evaluate requests (and request batches) over resident artifacts."""

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        cache: Optional[QueryCache] = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.store = store if store is not None else DocumentStore()
        self.cache = cache if cache is not None else QueryCache()
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._requests = 0
        self._errors = 0
        self._batches = 0

    def _shared_pool(self) -> ThreadPoolExecutor:
        """The persistent worker pool (created lazily, reused across batches)."""
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="cq-trees-batch",
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the executor stays usable
        for sequential calls and will lazily rebuild the pool if batched
        again)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- single requests -------------------------------------------------------

    def execute(self, request: Request) -> RequestResult:
        """Evaluate one request; all failures land in ``result.error``."""
        with self._lock:
            self._requests += 1
        result = run_request(self.store, self.cache, request)
        if not result.ok:
            with self._lock:
                self._errors += 1
        return result

    def submit(self, request: Request) -> "Future[RequestResult]":
        """Schedule one request on the shared pool; returns its future.

        This is the hook the async front end awaits
        (:func:`asyncio.wrap_future`), mirroring
        :meth:`~repro.service.shards.ShardedExecutor.submit`.
        """
        return self._shared_pool().submit(self.execute, request)

    # -- batches ---------------------------------------------------------------

    def execute_batch(
        self,
        requests: Sequence[Request],
        max_workers: Optional[int] = None,
    ) -> list[RequestResult]:
        """Evaluate a batch concurrently; results come back in request order."""
        with self._lock:
            self._batches += 1
        workers = max_workers if max_workers is not None else self.max_workers
        workers = max(1, min(workers, len(requests) or 1))
        if workers == 1 or len(requests) <= 1:
            return [self.execute(request) for request in requests]
        if max_workers is not None and max_workers < self.max_workers:
            # A caller-imposed tighter bound needs its own pool; the common
            # serving path reuses the persistent one below.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(self.execute, requests))
        return list(self._shared_pool().map(self.execute, requests))

    # -- document operations (the serving-backend contract) --------------------

    def register_payload(self, payload: dict, allow_files: bool = False) -> dict:
        """Register a document from its wire payload; returns its summary."""
        return self.store.register_payload(payload, allow_files=allow_files).describe()

    def evict_document(self, doc_id: str) -> bool:
        """Drop one resident document; ``True`` iff it was resident."""
        return self.store.evict(doc_id)

    def describe_documents(self) -> list[dict]:
        """Summaries of every resident document."""
        return self.store.describe()

    def document_count(self) -> int:
        """How many documents are resident."""
        return len(self.store)

    # -- statistics ------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            executor = {
                "backend": "threaded",
                "requests": self._requests,
                "errors": self._errors,
                "batches": self._batches,
                "max_workers": self.max_workers,
            }
        return {
            "executor": executor,
            "store": self.store.stats(),
            "cache": self.cache.stats(),
            "slow_queries": SLOW_LOG.stats(),
            "plan_accounting": ACCOUNTING.stats(),
        }

    def render_metrics(self) -> str:
        """The Prometheus text exposition of this process's registry."""
        self.store.refresh_metrics()
        return REGISTRY.render()

    # -- profiling (the serving-backend contract) ------------------------------

    def profile_control(self, action: str, hz: Optional[int] = None) -> dict:
        """Apply a profiler start/stop/clear action to this process."""
        return PROFILER.control(action, hz)

    def profile_snapshot(self) -> dict:
        """The profiler's folded-stack snapshot for this process."""
        return PROFILER.snapshot()
