"""The batch executor: concurrent request evaluation over resident artifacts.

A request names a resident document, a query (datalog text, XPath text, or a
query object), a propagator, and an optional answer limit.
:class:`BatchExecutor` is the serving facade: it owns a
:class:`~repro.service.store.DocumentStore` and a
:class:`~repro.service.cache.QueryCache`, evaluates single requests, and fans
request batches out over a thread pool -- every worker sharing the same
resident indexes, label sets and compiled plans.

Determinism: results come back in request order; each answer list is sorted
ascending (node-id tuples), with ``limit`` applied *after* sorting; and the
answer sets are byte-for-byte those of a sequential
:func:`repro.evaluation.planner.evaluate` call, for every propagator --
evaluation over the shared artifacts is pure, and CPython's GIL plus the
read-only index structures make the concurrent path safe.  Failures are
per-request values (``error`` field), never batch aborts.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..evaluation.planner import evaluate
from ..evaluation.propagation import DEFAULT_PROPAGATOR, as_propagator
from ..queries.parser import QueryParseError
from ..queries.query import ConjunctiveQuery
from ..queries.xpath import XPathTranslationError
from ..trees.xmlio import XMLParseError
from .cache import CachedQuery, QueryCache
from .store import DocumentNotFound, DocumentStore

#: Exceptions that are the client's fault; reported verbatim per request.
_REQUEST_ERRORS = (
    DocumentNotFound,
    QueryParseError,
    XPathTranslationError,
    XMLParseError,
    ValueError,
)

#: Default worker-thread bound for batch execution.
DEFAULT_MAX_WORKERS = 8


@dataclass(frozen=True)
class Request:
    """One evaluation request.

    Exactly one of ``query`` (datalog text or a
    :class:`~repro.queries.query.ConjunctiveQuery`) and ``xpath`` must be
    given.  ``limit`` truncates the *sorted* answer list; the total count is
    reported either way.
    """

    doc: str
    query: Union[str, ConjunctiveQuery, None] = None
    xpath: Optional[str] = None
    propagator: str = str(DEFAULT_PROPAGATOR)
    limit: Optional[int] = None

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Request":
        """Build a request from a JSON object (HTTP body / JSONL line)."""
        if not isinstance(payload, dict):
            raise ValueError(f"request must be a JSON object, got {type(payload).__name__}")
        unknown = set(payload) - {"doc", "query", "xpath", "propagator", "limit"}
        if unknown:
            raise ValueError(f"unknown request field(s): {', '.join(sorted(unknown))}")
        doc = payload.get("doc")
        if not isinstance(doc, str) or not doc:
            raise ValueError("request needs a non-empty 'doc' document id")
        limit = payload.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise ValueError("'limit' must be a non-negative integer")
        for key in ("query", "xpath"):
            if payload.get(key) is not None and not isinstance(payload[key], str):
                raise ValueError(f"'{key}' must be a string")
        propagator = payload.get("propagator", str(DEFAULT_PROPAGATOR))
        if not isinstance(propagator, str):
            raise ValueError("'propagator' must be a string")
        return cls(
            doc=doc,
            query=payload.get("query"),
            xpath=payload.get("xpath"),
            propagator=propagator,
            limit=limit,
        )


@dataclass
class RequestResult:
    """The outcome of one request: answers or an error, plus timings."""

    doc: str
    query_key: Optional[str] = None
    answers: Optional[list[tuple[int, ...]]] = None
    count: int = 0
    truncated: bool = False
    satisfied: Optional[bool] = None
    elapsed_ms: float = 0.0
    propagator: str = str(DEFAULT_PROPAGATOR)
    engine: Optional[str] = None
    cache_hit: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json_dict(self) -> dict:
        """A stable JSON rendering (HTTP responses and JSONL output)."""
        if not self.ok:
            return {"doc": self.doc, "error": self.error}
        payload = {
            "doc": self.doc,
            "query_key": self.query_key,
            "answers": [list(answer) for answer in self.answers or []],
            "count": self.count,
            "truncated": self.truncated,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "propagator": self.propagator,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
        }
        if self.satisfied is not None:
            payload["satisfied"] = self.satisfied
        return payload


class BatchExecutor:
    """Evaluate requests (and request batches) over resident artifacts."""

    def __init__(
        self,
        store: Optional[DocumentStore] = None,
        cache: Optional[QueryCache] = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.store = store if store is not None else DocumentStore()
        self.cache = cache if cache is not None else QueryCache()
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._requests = 0
        self._errors = 0
        self._batches = 0

    def _shared_pool(self) -> ThreadPoolExecutor:
        """The persistent worker pool (created lazily, reused across batches)."""
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="cq-trees-batch",
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the executor stays usable
        for sequential calls and will lazily rebuild the pool if batched
        again)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- single requests -------------------------------------------------------

    def _resolve_entry(self, request: Request) -> tuple[CachedQuery, bool]:
        """The cache entry for the request's query, plus whether it was warm."""
        if (request.query is None) == (request.xpath is None):
            raise ValueError("exactly one of 'query' and 'xpath' must be given")
        if request.xpath is not None:
            if not isinstance(request.xpath, str):
                raise ValueError(
                    f"'xpath' must be a string, got {type(request.xpath).__name__}"
                )
            return self.cache.resolve_text(request.xpath, kind="xpath")
        if isinstance(request.query, ConjunctiveQuery):
            return self.cache.resolve_query(request.query)
        if isinstance(request.query, str):
            return self.cache.resolve_text(request.query, kind="datalog")
        raise ValueError(
            f"'query' must be a string or ConjunctiveQuery, got "
            f"{type(request.query).__name__}"
        )

    def execute(self, request: Request) -> RequestResult:
        """Evaluate one request; client errors land in ``result.error``."""
        with self._lock:
            self._requests += 1
        started = time.perf_counter()
        try:
            propagator = as_propagator(request.propagator)
            entry, cache_hit = self._resolve_entry(request)
            document = self.store.get(request.doc)
            answers = sorted(
                evaluate(
                    entry.query,
                    document.structure,
                    engine=entry.engine,
                    propagator=propagator,
                    compiled=entry.compiled,
                )
            )
        except _REQUEST_ERRORS as error:
            with self._lock:
                self._errors += 1
            return RequestResult(
                doc=request.doc,
                propagator=str(request.propagator),
                elapsed_ms=(time.perf_counter() - started) * 1000.0,
                error=str(error),
            )
        count = len(answers)
        truncated = request.limit is not None and count > request.limit
        if truncated:
            answers = answers[: request.limit]
        return RequestResult(
            doc=request.doc,
            query_key=entry.key,
            answers=answers,
            count=count,
            truncated=truncated,
            satisfied=(count > 0) if entry.query.is_boolean else None,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            propagator=propagator.value,
            engine=entry.engine.value,
            cache_hit=cache_hit,
        )

    # -- batches ---------------------------------------------------------------

    def execute_batch(
        self,
        requests: Sequence[Request],
        max_workers: Optional[int] = None,
    ) -> list[RequestResult]:
        """Evaluate a batch concurrently; results come back in request order."""
        with self._lock:
            self._batches += 1
        workers = max_workers if max_workers is not None else self.max_workers
        workers = max(1, min(workers, len(requests) or 1))
        if workers == 1 or len(requests) <= 1:
            return [self.execute(request) for request in requests]
        if max_workers is not None and max_workers < self.max_workers:
            # A caller-imposed tighter bound needs its own pool; the common
            # serving path reuses the persistent one below.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(self.execute, requests))
        return list(self._shared_pool().map(self.execute, requests))

    # -- statistics ------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            executor = {
                "requests": self._requests,
                "errors": self._errors,
                "batches": self._batches,
                "max_workers": self.max_workers,
            }
        return {
            "executor": executor,
            "store": self.store.stats(),
            "cache": self.cache.stats(),
        }
