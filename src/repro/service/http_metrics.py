"""HTTP-layer metrics shared by the threaded and asyncio front ends.

Both front ends route the same paths; this module owns the per-route request
counter and latency histogram plus the route-label normalization
(``/documents/<id>`` collapses to ``/documents/{id}``, anything unknown to
``other``) so the two expositions stay label-compatible and unbounded ids
never explode the label space.
"""

from __future__ import annotations

from ..observability.metrics import REGISTRY

#: The Prometheus text exposition content type (version 0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Routes served by both front ends (label values; see :func:`normalize_route`).
KNOWN_ROUTES = ("/healthz", "/stats", "/metrics", "/documents", "/query", "/batch", "/profile")

HTTP_REQUESTS = REGISTRY.counter(
    "cqtrees_http_requests_total",
    "HTTP requests served, by route, method and status code.",
    ("route", "method", "code"),
)
HTTP_SECONDS = REGISTRY.histogram(
    "cqtrees_http_request_seconds",
    "HTTP request latency in seconds, by route.",
    ("route",),
)


def normalize_route(path: str) -> str:
    """Collapse a request path to a bounded route label."""
    if path in KNOWN_ROUTES:
        return path
    if path.startswith("/documents/"):
        return "/documents/{id}"
    return "other"


def observe_http(path: str, method: str, code: int, seconds: float) -> None:
    """Record one served HTTP request (both front ends call this)."""
    route = normalize_route(path)
    HTTP_REQUESTS.inc(route=route, method=method, code=str(code))
    HTTP_SECONDS.observe(seconds, route=route)


def route_latency_summary() -> dict:
    """Interpolated p50/p99 per route, for the ``/stats`` payload.

    Derived from the same fixed-bucket histogram ``/metrics`` exposes, so an
    operator reading ``/stats`` and a dashboard reading ``/metrics`` agree to
    within one bucket width.  Front-end latency lives in the parent process in
    both serve modes, so no shard merge is needed here.
    """
    summary = {}
    for (route,) in HTTP_SECONDS.label_sets():
        count, _ = HTTP_SECONDS.totals(route=route)
        if not count:
            continue
        p50 = HTTP_SECONDS.percentile(0.5, route=route)
        p99 = HTTP_SECONDS.percentile(0.99, route=route)
        summary[route] = {
            "count": count,
            "p50_ms": round(p50 * 1000.0, 3),
            "p99_ms": round(p99 * 1000.0, 3),
        }
    return summary
