"""HTTP-layer metrics shared by the threaded and asyncio front ends.

Both front ends route the same paths; this module owns the per-route request
counter and latency histogram plus the route-label normalization
(``/documents/<id>`` collapses to ``/documents/{id}``, anything unknown to
``other``) so the two expositions stay label-compatible and unbounded ids
never explode the label space.
"""

from __future__ import annotations

from ..observability.metrics import REGISTRY

#: The Prometheus text exposition content type (version 0.0.4).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Routes served by both front ends (label values; see :func:`normalize_route`).
KNOWN_ROUTES = ("/healthz", "/stats", "/metrics", "/documents", "/query", "/batch")

HTTP_REQUESTS = REGISTRY.counter(
    "cqtrees_http_requests_total",
    "HTTP requests served, by route, method and status code.",
    ("route", "method", "code"),
)
HTTP_SECONDS = REGISTRY.histogram(
    "cqtrees_http_request_seconds",
    "HTTP request latency in seconds, by route.",
    ("route",),
)


def normalize_route(path: str) -> str:
    """Collapse a request path to a bounded route label."""
    if path in KNOWN_ROUTES:
        return path
    if path.startswith("/documents/"):
        return "/documents/{id}"
    return "other"


def observe_http(path: str, method: str, code: int, seconds: float) -> None:
    """Record one served HTTP request (both front ends call this)."""
    route = normalize_route(path)
    HTTP_REQUESTS.inc(route=route, method=method, code=str(code))
    HTTP_SECONDS.observe(seconds, route=route)
