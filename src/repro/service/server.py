"""A stdlib-only HTTP JSON front end over the batch executor.

``cq-trees serve`` exposes the serving subsystem to non-Python clients:

================  ======  ====================================================
path              method  behaviour
================  ======  ====================================================
``/healthz``      GET     liveness: ``{"status": "ok", "documents": N}``
``/stats``        GET     executor + store + cache statistics + slow queries
``/metrics``      GET     Prometheus text exposition (shard-merged histograms)
``/documents``    GET     resident document summaries
``/documents``    POST    register: ``{"doc": id, "xml": ...}`` or
                          ``{"doc": id, "sexpr": ...}``
``/documents/ID`` DELETE  evict a document
``/query``        POST    one request object (see below)
``/batch``        POST    ``{"requests": [...], "max_workers"?: N}``
================  ======  ====================================================

A request object is ``{"doc": id, "query": datalog}`` or
``{"doc": id, "xpath": expr}`` plus optional ``"propagator"``, ``"limit"``,
``"engine"``, ``"debug"`` (attach a tracing span tree) and ``"explain"``
(describe the plan without executing);
responses mirror :meth:`repro.service.executor.RequestResult.to_json_dict`.
Malformed bodies answer 400 and unknown paths 404.  Unknown document *ids*
are request-level failures, not path lookups: ``/query`` answers 400 with the
error, and inside a batch they stay per-request (HTTP 200 with ``error``
fields), so one bad request never voids its batchmates.  Only
``DELETE /documents/ID`` treats the id as a resource and answers 404.

Built on :class:`http.server.ThreadingHTTPServer` -- no dependencies, one
thread per connection, all of them sharing the executor's resident artifacts.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..queries.parser import QueryParseError
from ..queries.xpath import XPathTranslationError
from ..trees.xmlio import XMLParseError
from .core import Request, execute_batch_payload, profile_control_payload
from .executor import BatchExecutor
from .http_metrics import METRICS_CONTENT_TYPE, observe_http, route_latency_summary

#: Upper bound on accepted request bodies (64 MiB); guards the worker threads.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the executor for its handler threads."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], executor: BatchExecutor, quiet: bool = True):
        super().__init__(address, _ServiceRequestHandler)
        self.executor = executor
        self.quiet = quiet


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    server_version = "cq-trees"
    protocol_version = "HTTP/1.1"
    # Persistent HTTP/1.1 connections send headers and body as separate
    # writes; with Nagle on, the body write stalls on the client's delayed
    # ACK (~40ms per response).  asyncio transports already disable Nagle by
    # default, so this keeps the two front ends' latency profiles comparable.
    disable_nagle_algorithm = True

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if not self.server.quiet:  # pragma: no cover - log formatting
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(self, status: int, body: bytes, content_type: str) -> None:
        self._status = status
        # Observe before the body is flushed (as the asyncio front end does):
        # a client that reads this response and immediately scrapes /metrics
        # must find the request already counted -- observing in ``_observed``'s
        # ``finally`` raced that scrape.
        started = getattr(self, "_observe_started", None)
        if started is not None:
            self._observe_started = None
            observe_http(self.path, self.command, status, time.perf_counter() - started)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Optional[dict]:
        """The request body as JSON, or ``None`` after answering 400."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # The unread body would desync the persistent HTTP/1.1 stream
            # (the next request line would be parsed out of body bytes), so
            # drop the connection after answering.
            self.close_connection = True
            self._send_json(400, {"error": "missing or oversized Content-Length"})
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return None
        return payload

    # -- routes ----------------------------------------------------------------

    def _observed(self, handler) -> None:
        """Run one route handler, recording per-route count + latency.

        ``self._status`` is set by ``_send_bytes``; a handler that crashes
        before sending anything records status 500 (the connection is about
        to die anyway, but the scrape should still see the failure).
        """
        started = time.perf_counter()
        self._status = 0
        self._observe_started = started
        try:
            handler()
        finally:
            if self._observe_started is not None:
                # The handler crashed before sending anything: record the
                # failure (the connection is about to die anyway, but the
                # scrape should still see it).
                self._observe_started = None
                observe_http(
                    self.path,
                    self.command,
                    self._status or 500,
                    time.perf_counter() - started,
                )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._observed(self._do_get)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._observed(self._do_post)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._observed(self._do_delete)

    def _do_get(self) -> None:
        executor = self.server.executor
        try:
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok", "documents": executor.document_count()})
            elif self.path == "/stats":
                # The HTTP-layer latency summary is front-end state (it lives
                # in this process under both backends), so it is merged here
                # rather than inside the executor.
                payload = executor.stats()
                payload["http"] = route_latency_summary()
                self._send_json(200, payload)
            elif self.path == "/metrics":
                self._send_text(200, executor.render_metrics(), METRICS_CONTENT_TYPE)
            elif self.path == "/documents":
                self._send_json(200, {"documents": executor.describe_documents()})
            elif self.path == "/profile":
                self._send_json(200, executor.profile_snapshot())
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except ValueError as error:  # e.g. a sharded backend with a dead worker
            self._send_json(400, {"error": str(error)})

    def _do_post(self) -> None:
        executor = self.server.executor
        payload = self._read_json()
        if payload is None:
            return
        try:
            if self.path == "/documents":
                self._register_document(payload)
            elif self.path == "/query":
                result = executor.execute(Request.from_json_dict(payload))
                self._send_json(200 if result.ok else 400, result.to_json_dict())
            elif self.path == "/batch":
                self._execute_batch(payload)
            elif self.path == "/profile":
                self._send_json(200, self._profile_control(payload))
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except (QueryParseError, XPathTranslationError, XMLParseError, ValueError) as error:
            self._send_json(400, {"error": str(error)})

    def _do_delete(self) -> None:
        executor = self.server.executor
        prefix = "/documents/"
        try:
            if self.path.startswith(prefix) and len(self.path) > len(prefix):
                doc_id = self.path[len(prefix) :]
                if executor.evict_document(doc_id):
                    self._send_json(200, {"evicted": doc_id})
                else:
                    self._send_json(404, {"error": f"unknown document id {doc_id!r}"})
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except ValueError as error:  # e.g. a sharded backend with a dead worker
            self._send_json(400, {"error": str(error)})

    # -- handlers --------------------------------------------------------------

    def _register_document(self, payload: dict) -> None:
        # allow_files stays False over HTTP: clients must not be able to make
        # the server read its own filesystem.
        summary = self.server.executor.register_payload(payload)
        self._send_json(200, summary)

    def _execute_batch(self, payload: dict) -> None:
        self._send_json(200, execute_batch_payload(self.server.executor, payload))

    def _profile_control(self, payload: dict) -> dict:
        return profile_control_payload(self.server.executor, payload)


def make_server(
    executor: BatchExecutor,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind a service HTTP server (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), executor, quiet=quiet)
