"""Process-sharded serving backend: per-shard stores and caches, multi-core scaling.

The thread-pool backend (:class:`~repro.service.executor.BatchExecutor`)
shares one set of resident artifacts across worker threads -- simple and
memory-lean, but CPython's GIL serializes the actual evaluation work, so one
process can never use more than one core.  :class:`ShardedExecutor` scales
*out* instead: it owns ``N`` worker **processes**, each holding a full
per-process :class:`~repro.service.store.DocumentStore` +
:class:`~repro.service.cache.QueryCache` and executing requests through the
same shared core (:func:`~repro.service.core.run_request`) as the thread
backend, so the serving contract -- sorted answers, post-sort limit,
per-request errors, byte-identity with sequential ``evaluate()`` -- is
identical by construction.

Routing is by **stable hash of the document id** (:func:`shard_for`,
CRC-32 -- deliberately not Python's salted ``hash()``): a document is
registered on exactly one shard, and every request, eviction and
re-registration for that id lands on the same worker, so its interval index,
label sets and compiled plans stay resident in that process.  Control
operations (``stats``, ``describe_documents``, ``document_count``) are
*broadcast* to all shards and aggregated, so ``/stats`` reports totals across
the whole fleet plus a per-shard breakdown.

The parent talks to each worker over a pair of ``multiprocessing`` queues;
:meth:`ShardedExecutor.submit` returns a :class:`concurrent.futures.Future`
resolved by a per-shard listener thread, which is what the async front end
awaits.  Each shard consumes its inbox in FIFO order, so per-shard execution
is serial and deterministic; cross-shard parallelism is the scaling axis.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import threading
import zlib
from concurrent.futures import Future
from typing import Optional, Sequence

from ..observability.accounting import ACCOUNTING, PlanAccounting
from ..observability.metrics import REGISTRY, SLOW_LOG, MetricsRegistry
from ..observability.profiler import PROFILER, merge_snapshots
from .cache import QueryCache
from .core import REQUEST_ERRORS, Request, RequestResult, run_request
from .store import DocumentStore

#: Default number of worker processes.
DEFAULT_SHARDS = 2

#: Seconds to wait for a worker to drain and exit at close before terminating.
_JOIN_TIMEOUT = 10.0

#: How often an idle worker checks whether its parent process still exists.
_PARENT_POLL_SECONDS = 5.0

#: How often an idle listener checks whether its worker process still exists.
_WORKER_POLL_SECONDS = 1.0


def shard_for(doc_id: str, shards: int) -> int:
    """The shard owning ``doc_id``: a stable content hash, not ``hash()``.

    CRC-32 of the UTF-8 bytes is deterministic across processes and runs
    (Python's ``hash()`` is salted per process, which would scatter a
    document's requests across restarts).
    """
    return zlib.crc32(doc_id.encode("utf-8")) % shards


def _default_start_method() -> str:
    """``fork`` where available (cheap, instant workers), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _shard_worker_main(
    shard_id: int,
    inbox,
    outbox,
    store_capacity: Optional[int],
    cache_capacity: Optional[int],
    accel_db: Optional[str] = None,
) -> None:
    """One worker process: a private store + cache, serving its inbox FIFO.

    Every message is ``(seq, op, payload)``; every reply is ``(seq, status,
    value)`` with ``status`` in ``{"ok", "error"}``.  ``None`` is the
    shutdown sentinel.  The loop never dies on a bad message: operation
    errors are reported back as values, mirroring the per-request error
    contract.

    ``accel_db`` names a SQLite accel database file each worker opens with
    its *own* connection (SQLite connections must not cross process forks).
    Workers sharing one file all see the same accel-only documents -- the
    store's lazy residency attach means a document registered by any process
    is queryable from every shard without a registration broadcast.
    """
    accel_backend = None
    if accel_db is not None:
        from ..backends.sqlite import SQLiteBackend

        accel_backend = SQLiteBackend(accel_db)
    store = DocumentStore(capacity=store_capacity, accel_backend=accel_backend)
    cache = QueryCache(capacity=cache_capacity)
    # A forked worker inherits the parent's process-global metrics registry
    # *values*; zero them (in place, keeping the families valid) so the
    # parent's shard-merge never double-counts pre-fork observations.  The
    # slow-query ring buffer, the plan-vs-actual ledger and the sampling
    # profiler are process-global too (the profiler's sampler thread does not
    # survive the fork, so the child must forget it, not join it).
    REGISTRY.reset()
    SLOW_LOG.clear()
    ACCOUNTING.clear()
    PROFILER.reset()
    parent = multiprocessing.parent_process()
    requests = 0
    errors = 0
    while True:
        try:
            message = inbox.get(timeout=_PARENT_POLL_SECONDS)
        except queue.Empty:
            # If the parent died without sending the sentinel (SIGKILL, hard
            # crash), exit instead of lingering as an orphan forever.
            if parent is not None and not parent.is_alive():
                break
            continue
        if message is None:
            break
        seq, op, payload = message
        try:
            if op == "request":
                requests += 1
                result = run_request(store, cache, payload)
                if not result.ok:
                    errors += 1
                outbox.put((seq, "ok", result))
            elif op == "register":
                payload_dict, allow_files = payload
                document = store.register_payload(payload_dict, allow_files=allow_files)
                outbox.put((seq, "ok", document.describe()))
            elif op == "evict":
                outbox.put((seq, "ok", store.evict(payload)))
            elif op == "documents":
                outbox.put((seq, "ok", store.describe()))
            elif op == "count":
                outbox.put((seq, "ok", len(store)))
            elif op == "stats":
                outbox.put(
                    (
                        seq,
                        "ok",
                        {
                            "shard": shard_id,
                            "requests": requests,
                            "errors": errors,
                            "store": store.stats(),
                            "cache": cache.stats(),
                            "slow_queries": SLOW_LOG.stats(),
                            # Shipped as a snapshot (not a rendering): the
                            # parent merges calibrations and re-ranks the
                            # union of top-drift tables.
                            "plan_accounting": ACCOUNTING.snapshot(),
                        },
                    )
                )
            elif op == "metrics":
                # Ship this worker's bucket arrays and counters to the parent,
                # which sums them into the fleet-wide /metrics exposition.
                store.refresh_metrics()
                outbox.put((seq, "ok", REGISTRY.snapshot()))
            elif op == "profile":
                action, hz = payload
                outbox.put((seq, "ok", PROFILER.control(action, hz)))
            elif op == "profile_dump":
                outbox.put((seq, "ok", PROFILER.snapshot()))
            else:
                outbox.put((seq, "error", f"unknown shard op {op!r}"))
        except REQUEST_ERRORS as error:
            # Client-fault errors cross the boundary verbatim so the parent's
            # re-raise carries the same message as the threaded backend would
            # (e.g. a malformed-XML registration answers the identical 400).
            outbox.put((seq, "error", str(error)))
        except Exception as error:  # noqa: BLE001 - errors travel as values
            outbox.put((seq, "error", f"{type(error).__name__}: {error}"))


class ShardedExecutor:
    """N worker processes, documents routed by stable hash of their id.

    Implements the same serving-backend surface as
    :class:`~repro.service.executor.BatchExecutor` (``execute``, ``submit``,
    ``execute_batch``, ``register_payload``, ``evict_document``,
    ``describe_documents``, ``document_count``, ``stats``), so the HTTP front
    ends work with either interchangeably.
    """

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        store_capacity: Optional[int] = None,
        cache_capacity: Optional[int] = 1024,
        start_method: Optional[str] = None,
        accel_db: Optional[str] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.accel_db = accel_db
        context = multiprocessing.get_context(start_method or _default_start_method())
        self._seq = itertools.count()
        self._lock = threading.Lock()
        #: seq -> (future, shard): the shard lets a worker death fail exactly
        #: the requests that were riding on it.
        self._pending: dict[int, tuple[Future, int]] = {}
        self._broken: set[int] = set()
        self._batches = 0
        self._closed = False
        self._inboxes = [context.Queue() for _ in range(shards)]
        self._outboxes = [context.Queue() for _ in range(shards)]
        self._processes = [
            context.Process(
                target=_shard_worker_main,
                args=(shard, self._inboxes[shard], self._outboxes[shard],
                      store_capacity, cache_capacity, accel_db),
                name=f"cq-trees-shard-{shard}",
                daemon=True,
            )
            for shard in range(shards)
        ]
        for process in self._processes:
            process.start()
        # Listener threads go up only after the forks: workers must not
        # inherit half-started parent threads.
        self._listeners = [
            threading.Thread(
                target=self._listen,
                args=(shard,),
                name=f"cq-trees-shard-listener-{shard}",
                daemon=True,
            )
            for shard in range(shards)
        ]
        for listener in self._listeners:
            listener.start()

    # -- plumbing --------------------------------------------------------------

    def _listen(self, shard: int) -> None:
        """Resolve futures from one shard's reply queue until the sentinel.

        The blocking get is bounded so a worker that died without replying
        (OOM kill, segfault) is noticed within :data:`_WORKER_POLL_SECONDS`:
        its in-flight requests fail instead of hanging their clients forever,
        and the shard is marked broken so later dispatches fail fast.
        """
        outbox = self._outboxes[shard]
        process = self._processes[shard]
        while True:
            try:
                message = outbox.get(timeout=_WORKER_POLL_SECONDS)
            except queue.Empty:
                if not process.is_alive() and not self._closed:
                    self._fail_shard(shard)
                    return
                continue
            if message is None:
                return
            seq, status, value = message
            with self._lock:
                future, _ = self._pending.pop(seq, (None, None))
            if future is None:  # pragma: no cover - reply after cancellation
                continue
            if status == "ok":
                future.set_result(value)
            else:
                future.set_exception(ValueError(value))

    def _fail_shard(self, shard: int) -> None:
        """A worker died: fail its in-flight requests, refuse new ones."""
        with self._lock:
            self._broken.add(shard)
            doomed = [
                (seq, future)
                for seq, (future, owner) in self._pending.items()
                if owner == shard
            ]
            for seq, _future in doomed:
                del self._pending[seq]
        for _seq, future in doomed:
            future.set_exception(
                ValueError(f"shard {shard} worker died; its in-flight requests were dropped")
            )

    def _dispatch(self, shard: int, op: str, payload) -> Future:
        """Enqueue one operation on one shard; returns its reply future."""
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardedExecutor is closed")
            if shard in self._broken:
                raise ValueError(f"shard {shard} worker is not running (restart the server)")
            seq = next(self._seq)
            future: Future = Future()
            self._pending[seq] = (future, shard)
        self._inboxes[shard].put((seq, op, payload))
        return future

    def _broadcast(self, op: str, payload=None) -> list:
        """Run one operation on every shard; replies in shard order."""
        futures = [self._dispatch(shard, op, payload) for shard in range(self.shards)]
        return [future.result() for future in futures]

    def shard_of(self, doc_id: str) -> int:
        """The shard index owning ``doc_id``."""
        return shard_for(doc_id, self.shards)

    def close(self) -> None:
        """Stop the workers and listeners; pending requests get an error."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for inbox in self._inboxes:
            inbox.put(None)
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT)
        for outbox in self._outboxes:
            outbox.put(None)
        for listener in self._listeners:
            listener.join(timeout=_JOIN_TIMEOUT)
        for future, _shard in pending:  # pragma: no cover - close with work in flight
            if not future.done():
                future.set_exception(RuntimeError("ShardedExecutor closed"))

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- requests --------------------------------------------------------------

    def submit(self, request: Request) -> "Future[RequestResult]":
        """Route one request to its document's shard; returns its future."""
        return self._dispatch(self.shard_of(request.doc), "request", request)

    def execute(self, request: Request) -> RequestResult:
        """Evaluate one request on its owning shard (blocking)."""
        return self.submit(request).result()

    def execute_batch(
        self,
        requests: Sequence[Request],
        max_workers: Optional[int] = None,  # noqa: ARG002 - interface parity
    ) -> list[RequestResult]:
        """Evaluate a batch across the shards; results in request order.

        ``max_workers`` is accepted for interface parity with the thread
        backend and ignored: parallelism here *is* the shard layout (each
        shard serves its slice of the batch serially, in order).

        A broken shard (dead worker) never aborts the batch: its requests
        come back as per-request ``internal:`` errors, like every other
        failure.
        """
        with self._lock:
            self._batches += 1
        futures: list = []
        for request in requests:
            try:
                futures.append(self.submit(request))
            except ValueError as error:  # broken shard: fail fast, per request
                failed: Future = Future()
                failed.set_exception(error)
                futures.append(failed)
        results = []
        for request, future in zip(requests, futures):
            try:
                results.append(future.result())
            except Exception as error:  # noqa: BLE001 - per-request contract
                results.append(
                    RequestResult(
                        doc=request.doc,
                        propagator=str(request.propagator),
                        error=f"internal: {error}",
                    )
                )
        return results

    # -- document operations ---------------------------------------------------

    def register_payload(self, payload: dict, allow_files: bool = False) -> dict:
        """Register a document on its owning shard; returns its summary."""
        if not isinstance(payload, dict):
            raise ValueError("registration payload must be a JSON object")
        doc_id = payload.get("doc")
        if not isinstance(doc_id, str) or not doc_id:
            raise ValueError("registration needs a non-empty 'doc' document id")
        return self._dispatch(
            self.shard_of(doc_id), "register", (dict(payload), allow_files)
        ).result()

    def evict_document(self, doc_id: str) -> bool:
        """Evict from the owning shard; ``True`` iff it was resident."""
        return self._dispatch(self.shard_of(doc_id), "evict", doc_id).result()

    def describe_documents(self) -> list[dict]:
        """Every shard's resident-document summaries, in shard order."""
        return [
            summary
            for shard_documents in self._broadcast("documents")
            for summary in shard_documents
        ]

    def document_count(self) -> int:
        """Total resident documents across all shards."""
        return sum(self._broadcast("count"))

    # -- statistics ------------------------------------------------------------

    def shard_load(self) -> list[dict]:
        """Per-shard live-load snapshot: queue depth, in-flight ops, liveness.

        Fleet sums hide a hot shard (one worker pegged while the others idle
        averages out to "fine"); this surfaces the skew per shard.  Queue
        depths come from the parent's end of each inbox (``None`` on
        platforms whose queues cannot report a size); in-flight counts are
        the parent's pending futures per owning shard.  Taken *before* any
        stats broadcast so the probe does not count itself.
        """
        with self._lock:
            in_flight = {shard: 0 for shard in range(self.shards)}
            for _future, owner in self._pending.values():
                in_flight[owner] = in_flight.get(owner, 0) + 1
            broken = set(self._broken)
        load = []
        for shard in range(self.shards):
            try:
                depth = self._inboxes[shard].qsize()
            except NotImplementedError:  # pragma: no cover - macOS qsize
                depth = None
            load.append(
                {
                    "shard": shard,
                    "queue_depth": depth,
                    "in_flight": in_flight[shard],
                    "alive": shard not in broken,
                }
            )
        return load

    def stats(self) -> dict:
        """Aggregated executor/store/cache statistics plus per-shard detail."""
        shard_load = self.shard_load()
        shard_stats = self._broadcast("stats")
        store_keys = (
            "documents",
            "accel_only_documents",
            "resident_nodes",
            "registered",
            "evicted",
            "hits",
            "misses",
        )
        cache_keys = ("entries", "parse_entries", "hits", "misses", "parse_hits")
        store = {key: sum(s["store"][key] for s in shard_stats) for key in store_keys}
        cache = {key: sum(s["cache"][key] for s in shard_stats) for key in cache_keys}
        # Capacities are per shard; the fleet-level bound is their sum, so
        # aggregated documents/entries can never exceed the reported capacity.
        store_capacity = shard_stats[0]["store"]["capacity"] if shard_stats else None
        cache_capacity = shard_stats[0]["cache"]["capacity"] if shard_stats else None
        store["capacity"] = None if store_capacity is None else store_capacity * self.shards
        cache["capacity"] = None if cache_capacity is None else cache_capacity * self.shards
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = (cache["hits"] / lookups) if lookups else 0.0
        with self._lock:
            batches = self._batches
        # Slow queries merge across shards: flatten, tag with the owning
        # shard, keep the globally slowest entries up to one ring's capacity.
        slow_entries = [
            {**entry, "shard": s["shard"]}
            for s in shard_stats
            for entry in s.get("slow_queries", {}).get("entries", ())
        ]
        slow_entries.sort(key=lambda entry: entry["elapsed_ms"], reverse=True)
        slow_queries = {
            "capacity": SLOW_LOG.capacity,
            "threshold_ms": SLOW_LOG.threshold_ms,
            "recorded": sum(
                s.get("slow_queries", {}).get("recorded", 0) for s in shard_stats
            ),
            "entries": slow_entries[: SLOW_LOG.capacity],
        }
        # Plan-vs-actual accounting merges like the histograms do: each shard
        # ships its snapshot inside the stats reply, the parent sums the
        # calibrations and re-ranks the union of top-drift tables.  The raw
        # snapshots are popped from the per-shard detail (the merged rendering
        # supersedes them).
        accounting = PlanAccounting(capacity=ACCOUNTING.capacity)
        for s in shard_stats:
            snapshot = s.pop("plan_accounting", None)
            if snapshot is not None:
                accounting.merge_snapshot(snapshot)
        return {
            "executor": {
                "backend": "sharded",
                "shards": self.shards,
                "requests": sum(s["requests"] for s in shard_stats),
                "errors": sum(s["errors"] for s in shard_stats),
                "batches": batches,
                "shard_load": shard_load,
            },
            "store": store,
            "cache": cache,
            "slow_queries": slow_queries,
            "plan_accounting": accounting.stats(),
            "shards": shard_stats,
        }

    def render_metrics(self) -> str:
        """Fleet-wide Prometheus text: every worker's snapshot summed.

        Each worker ships its counter values and histogram bucket arrays over
        the control channel (the ``metrics`` op); the parent sums them --
        element-wise for buckets -- together with its own registry (front-end
        route metrics live in the parent), so one scrape sees fleet totals
        and true merged latency distributions.
        """
        merged = MetricsRegistry()
        merged.merge_snapshot(REGISTRY.snapshot())
        for snapshot in self._broadcast("metrics"):
            merged.merge_snapshot(snapshot)
        return merged.render()

    # -- profiling -------------------------------------------------------------

    def profile_control(self, action: str, hz: Optional[int] = None) -> dict:
        """Apply a profiler action fleet-wide: the parent *and* every worker.

        Evaluation happens in the workers but the front end, the listener
        threads and the queue plumbing live in the parent, so both sides
        sample.  Returns the parent's status annotated with the worker count
        (a worker whose action disagreed -- e.g. already running -- is fine:
        the actions are idempotent).
        """
        status = PROFILER.control(action, hz)
        workers = self._broadcast("profile", (action, hz))
        status["workers"] = len(workers)
        return status

    def profile_snapshot(self) -> dict:
        """Fleet-wide folded stacks: the parent's plus every worker's, summed."""
        return merge_snapshots([PROFILER.snapshot(), *self._broadcast("profile_dump")])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedExecutor(shards={self.shards}, closed={self._closed})"
