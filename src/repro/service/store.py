"""The document store: trees registered once, per-tree artifacts kept resident.

Single-query evaluation rebuilds everything per call: the tree, its
:class:`~repro.trees.index.AxisIndex` (one O(n) pre/post sweep plus rank
arrays), and the per-label candidate sets the initial domains start from.  A
server answering a stream of queries over the same documents should pay those
costs once.  :class:`DocumentStore` registers trees under stable document ids
and keeps resident, per document:

* the finalised :class:`~repro.trees.tree.Tree` and its
  :class:`~repro.trees.structure.TreeStructure`,
* the tree's interval ``AxisIndex`` (forced eagerly at registration, so the
  first query does not pay the build),
* the label inverted index -- every label's candidate frozenset, warmed
  through :meth:`TreeStructure.unary_member_set` so initial-domain
  construction never re-materializes them.

Eviction is explicit (:meth:`evict`, :meth:`clear`) plus an optional LRU
``capacity`` bound, so an embedding process controls its own memory.  All
operations are thread-safe; the executor's worker threads share the store.

Documents larger than the resident budget can instead be registered
**accel-only** (:meth:`register_tree_accel_only`): the tree is written to the
SQLite accel backend and then dropped -- no resident ``Tree``, structure or
axis index -- leaving the document queryable exclusively through the SQL
engine's streamed, bounded-memory path.  :meth:`residency` reports which of
the two worlds a document lives in; documents found in a (file-backed,
possibly pre-populated) accel database attach lazily on first lookup.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..observability.metrics import REGISTRY
from ..planning import DocumentStats
from ..trees.builders import parse_sexpr
from ..trees.structure import TreeStructure
from ..trees.tree import Tree
from ..trees.xmlio import from_xml, from_xml_file

STORE_LOOKUPS = REGISTRY.counter(
    "cqtrees_store_lookups_total",
    "Resident-document lookups by result (hit / miss).",
    ("result",),
)
#: Refreshed by the executors at metrics-render time (the store itself does
#: not know when it is being scraped).
DOCUMENTS_RESIDENT = REGISTRY.gauge(
    "cqtrees_documents_resident",
    "Documents resident in this process's serving store.",
)


class DocumentNotFound(KeyError):
    """Raised when a request references a document id that is not resident."""

    def __init__(self, doc_id: str):
        super().__init__(doc_id)
        self.doc_id = doc_id

    def __str__(self) -> str:
        return f"unknown document id {self.doc_id!r}"


@dataclass
class StoredDocument:
    """One resident document: the tree plus its warm evaluation artifacts."""

    doc_id: str
    tree: Tree
    structure: TreeStructure
    source: str
    #: Per-document statistics collected at registration (node count,
    #: depth/fanout profile, label histogram) -- the cost model's input.
    stats: Optional[DocumentStats] = None
    registered_at: float = field(default_factory=time.time)

    @property
    def nodes(self) -> int:
        return len(self.tree)

    def describe(self) -> dict:
        """A JSON-friendly summary (used by the HTTP front end and the CLI)."""
        return {
            "doc": self.doc_id,
            "nodes": self.nodes,
            "labels": len(self.tree.alphabet()),
            "source": self.source,
        }


class DocumentStore:
    """Registered trees with resident indexes and explicit eviction.

    Parameters
    ----------
    capacity:
        Optional LRU bound on the number of resident documents.  Registering
        beyond it evicts the least recently used document (use counts as a
        touch).  ``None`` means unbounded -- eviction is entirely explicit.
    accel_backend:
        Optional :class:`~repro.backends.sqlite.SQLiteBackend` every
        registered tree is mirrored into (via ``ensure_document``, so
        re-registering an unchanged document is a no-op).  A file-backed
        mirror makes registered documents queryable out-of-core and across
        restarts; eviction from the in-memory store never drops accel rows.
    """

    def __init__(self, capacity: Optional[int] = None, accel_backend=None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.accel_backend = accel_backend
        self._documents: "OrderedDict[str, StoredDocument]" = OrderedDict()
        self._accel_only: dict[str, int] = {}  # doc id -> node count
        self._lock = threading.RLock()
        self._registered = 0
        self._evicted = 0
        self._hits = 0
        self._misses = 0

    # -- registration ----------------------------------------------------------

    def register_tree(self, doc_id: str, tree: Tree, source: str = "tree") -> StoredDocument:
        """Register a finalised tree and warm its evaluation artifacts."""
        if not doc_id:
            raise ValueError("document id must be a non-empty string")
        structure = TreeStructure(tree)
        structure.index  # force the O(n) interval index build at registration
        for label in tree.alphabet():
            structure.unary_member_set(label)  # warm the label inverted index
        document = StoredDocument(doc_id, tree, structure, source, stats=DocumentStats.of_tree(tree))
        if self.accel_backend is not None:
            self.accel_backend.ensure_document(doc_id, tree)
        with self._lock:
            if doc_id in self._documents:
                # Re-registration replaces the resident artifacts in place.
                del self._documents[doc_id]
            # A resident registration upgrades a previously accel-only doc.
            self._accel_only.pop(doc_id, None)
            self._documents[doc_id] = document
            self._registered += 1
            if self.capacity is not None:
                while len(self._documents) > self.capacity:
                    evicted_id, _ = self._documents.popitem(last=False)
                    self._evicted += 1
        return document

    def register_tree_accel_only(self, doc_id: str, tree: Tree, source: str = "tree") -> dict:
        """Register a tree into the accel backend only: the out-of-core path.

        The tree is written to SQLite (rows + labels + rank columns) and
        nothing is kept resident -- callers typically discard the in-memory
        ``Tree`` right after, so a document far larger than RAM stays
        queryable through the SQL engine's streamed answers.  Returns the
        JSON-friendly summary :meth:`describe` would report.
        """
        if not doc_id:
            raise ValueError("document id must be a non-empty string")
        if self.accel_backend is None:
            raise ValueError("accel-only registration requires an accel backend")
        self.accel_backend.ensure_document(doc_id, tree)
        nodes = len(tree)
        with self._lock:
            self._accel_only[doc_id] = nodes
            self._registered += 1
        return {"doc": doc_id, "nodes": nodes, "source": source, "accel_only": True}

    def register_xml(self, doc_id: str, text: str) -> StoredDocument:
        """Parse an XML string and register the resulting tree."""
        return self.register_tree(doc_id, from_xml(text), source="xml")

    def register_xml_file(self, doc_id: str, path: str) -> StoredDocument:
        """Parse an XML file and register the resulting tree."""
        return self.register_tree(doc_id, from_xml_file(path), source=path)

    def register_sexpr(self, doc_id: str, text: str) -> StoredDocument:
        """Parse an s-expression tree and register it."""
        return self.register_tree(doc_id, parse_sexpr(text), source="sexpr")

    def register_payload(self, payload: dict, allow_files: bool = False) -> StoredDocument:
        """Register from a JSON payload (the HTTP and JSONL wire format).

        ``{"doc": id, "xml": text}`` or ``{"doc": id, "sexpr": text}``; with
        ``allow_files`` also ``{"doc": id, "xml_file": path}``.  File
        registration is opt-in because a path names a *server-side* resource
        -- the HTTP front end must not let remote clients read the server's
        filesystem, while the CLI (same trust domain) may.
        """
        doc_id = payload.get("doc")
        if not isinstance(doc_id, str) or not doc_id:
            raise ValueError("registration needs a non-empty 'doc' document id")
        allowed = ("xml", "xml_file", "sexpr") if allow_files else ("xml", "sexpr")
        sources = [key for key in allowed if payload.get(key) is not None]
        if len(sources) != 1:
            choices = ", ".join(f"'{key}'" for key in allowed)
            raise ValueError(f"provide exactly one of {choices}")
        source = sources[0]
        text = payload[source]
        if not isinstance(text, str):
            raise ValueError(f"'{source}' must be a string")
        if source == "xml":
            return self.register_xml(doc_id, text)
        if source == "xml_file":
            return self.register_xml_file(doc_id, text)
        return self.register_sexpr(doc_id, text)

    # -- lookup ----------------------------------------------------------------

    def get(self, doc_id: str) -> StoredDocument:
        """The resident document for ``doc_id`` (an LRU touch); raises otherwise."""
        with self._lock:
            document = self._documents.get(doc_id)
            if document is None:
                self._misses += 1
                STORE_LOOKUPS.inc(result="miss")
                raise DocumentNotFound(doc_id)
            self._documents.move_to_end(doc_id)
            self._hits += 1
            STORE_LOOKUPS.inc(result="hit")
            return document

    def stats_for(self, doc_id: str) -> DocumentStats:
        """Planner statistics for a document, wherever it lives.

        Resident documents return the exact registration-time statistics.
        Accel-only documents only have a node count in the registry (the tree
        itself was dropped), so they get the approximate profile --
        ``DocumentStats.approximate_from_nodes`` -- which the estimators treat
        conservatively (unknown labels fall back to full domains).
        """
        with self._lock:
            document = self._documents.get(doc_id)
            if document is not None:
                if document.stats is None:  # documents stored before stats existed
                    document.stats = DocumentStats.of_tree(document.tree)
                return document.stats
        residency = self.residency(doc_id)
        if residency == "resident":  # registered between the two lookups
            return self.stats_for(doc_id)
        if residency == "accel":
            with self._lock:
                nodes = self._accel_only.get(doc_id, 0)
            if not nodes and self.accel_backend is not None:
                nodes = self.accel_backend.document_nodes(doc_id) or 0
            return DocumentStats.approximate_from_nodes(max(nodes, 1))
        raise DocumentNotFound(doc_id)

    def residency(self, doc_id: str) -> Optional[str]:
        """Where a document lives: ``"resident"``, ``"accel"`` or ``None``.

        Documents present in the accel backend but never registered through
        this store (e.g. a file-backed database populated by another process
        or a previous run) attach lazily: the first lookup records them in
        the accel-only registry, so shards sharing one database file agree on
        residency without any registration broadcast.
        """
        with self._lock:
            if doc_id in self._documents:
                return "resident"
            if doc_id in self._accel_only:
                return "accel"
        if self.accel_backend is not None:
            nodes = self.accel_backend.document_nodes(doc_id)
            if nodes is not None:
                with self._lock:
                    if doc_id not in self._documents:
                        self._accel_only.setdefault(doc_id, nodes)
                        return "accel"
                return "resident"
        return None

    def accel_only(self, doc_id: str) -> bool:
        """True iff the document is queryable only through the accel backend."""
        return self.residency(doc_id) == "accel"

    def __contains__(self, doc_id: str) -> bool:
        return self.residency(doc_id) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents) + len(
                [doc for doc in self._accel_only if doc not in self._documents]
            )

    def doc_ids(self) -> list[str]:
        with self._lock:
            resident = list(self._documents)
            return resident + [doc for doc in self._accel_only if doc not in self._documents]

    def describe(self) -> list[dict]:
        with self._lock:
            described = [document.describe() for document in self._documents.values()]
            accel_only = {
                doc: nodes for doc, nodes in self._accel_only.items() if doc not in self._documents
            }
        backend = self.accel_backend
        for doc, nodes in accel_only.items():
            described.append(
                {
                    "doc": doc,
                    "nodes": nodes,
                    "labels": backend.document_label_count(doc) if backend is not None else 0,
                    "source": "accel",
                    "accel_only": True,
                }
            )
        return described

    # -- eviction --------------------------------------------------------------

    def evict(self, doc_id: str) -> bool:
        """Drop one document (and its artifacts); ``True`` iff it was resident."""
        with self._lock:
            if doc_id in self._documents:
                del self._documents[doc_id]
                self._evicted += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every resident document."""
        with self._lock:
            self._evicted += len(self._documents)
            self._documents.clear()

    # -- statistics ------------------------------------------------------------

    def refresh_metrics(self) -> None:
        """Push point-in-time levels into the metrics registry (pre-scrape)."""
        with self._lock:
            DOCUMENTS_RESIDENT.set(len(self._documents))

    def stats(self) -> dict:
        with self._lock:
            return {
                "documents": len(self._documents),
                "accel_only_documents": len(
                    [doc for doc in self._accel_only if doc not in self._documents]
                ),
                "resident_nodes": sum(d.nodes for d in self._documents.values()),
                "capacity": self.capacity,
                "registered": self._registered,
                "evicted": self._evicted,
                "hits": self._hits,
                "misses": self._misses,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocumentStore({self.doc_ids()!r})"


def preload(store: DocumentStore, documents: Iterable[tuple[str, str]]) -> list[StoredDocument]:
    """Register ``(doc_id, xml_path)`` pairs (the CLI's ``--document`` flags)."""
    return [store.register_xml_file(doc_id, path) for doc_id, path in documents]
