"""Section 7: succinctness of conjunctive queries vs APQs."""

from .blowup import (
    BlowupPoint,
    apq_matches_diamond_on_ps,
    diamond_true_on_all_ps,
    measure_blowup,
    render_blowup_table,
)
from .diamonds import diamond_alphabet, diamond_query, x_label, x_prime_label, y_label
from .path_structures import (
    all_ps_structures,
    lemma73_structure,
    ps_structure,
    variable_label_paths,
)

__all__ = [
    "BlowupPoint",
    "all_ps_structures",
    "apq_matches_diamond_on_ps",
    "diamond_alphabet",
    "diamond_query",
    "diamond_true_on_all_ps",
    "lemma73_structure",
    "measure_blowup",
    "ps_structure",
    "render_blowup_table",
    "variable_label_paths",
    "x_label",
    "x_prime_label",
    "y_label",
]
