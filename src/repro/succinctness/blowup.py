"""Measuring the CQ -> APQ blow-up (Theorem 7.1 / Figure 9 experiment).

Theorem 7.1 states that no family of polynomial-size APQs is equivalent to the
n-diamond queries ``D_n``.  The reproduction cannot of course verify a lower
bound for *all* conceivable APQs, but it measures two things that together
track the paper's claim:

1. the size of the APQ produced by the Lemma 6.5 / Theorem 6.6 rewriting of
   ``D_n`` grows exponentially with ``n`` (the translation's upper bound is
   tight on this family), and
2. ``D_n`` is true on all ``2^n`` structures of ``PS(n, p)``, and the Lemma
   7.3 construction produces, for suitable label choices, a path structure
   that satisfies a candidate small ABCQ but not ``D_n`` (the separation at
   the heart of the lower-bound proof; Example 7.8 is the n = 2 case).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..evaluation.planner import evaluate_on_tree
from ..queries.apq import UnionQuery
from ..rewriting.to_apq import to_apq
from .diamonds import diamond_query
from .path_structures import all_ps_structures


@dataclass(frozen=True)
class BlowupPoint:
    """One measured point of the succinctness experiment."""

    n: int
    query_size: int
    apq_disjuncts: int
    apq_size: int
    rewrite_seconds: float

    @property
    def blowup_factor(self) -> float:
        return self.apq_size / self.query_size if self.query_size else float("inf")


def measure_blowup(max_n: int, max_disjuncts: int = 200_000) -> list[BlowupPoint]:
    """Rewrite ``D_1 .. D_max_n`` to APQs and record the size growth."""
    points: list[BlowupPoint] = []
    for n in range(1, max_n + 1):
        query = diamond_query(n)
        start = time.perf_counter()
        apq = to_apq(query, max_disjuncts=max_disjuncts)
        elapsed = time.perf_counter() - start
        points.append(
            BlowupPoint(
                n=n,
                query_size=query.size(),
                apq_disjuncts=len(apq),
                apq_size=apq.size(),
                rewrite_seconds=elapsed,
            )
        )
    return points


def diamond_true_on_all_ps(n: int, pad: int) -> bool:
    """Check that ``D_n`` is true on every structure of ``PS(n, pad)``."""
    query = diamond_query(n)
    for _choices, tree in all_ps_structures(n, pad):
        if not evaluate_on_tree(query, tree):
            return False
    return True


def apq_matches_diamond_on_ps(apq: UnionQuery, n: int, pad: int) -> bool:
    """Check that an APQ agrees with ``D_n`` on every structure of ``PS(n, pad)``."""
    query = diamond_query(n)
    for _choices, tree in all_ps_structures(n, pad):
        if bool(evaluate_on_tree(query, tree)) != bool(evaluate_on_tree(apq, tree)):
            return False
    return True


def render_blowup_table(points: list[BlowupPoint]) -> str:
    """A textual table of the measured blow-up (used by EXPERIMENTS.md)."""
    header = (
        f"{'n':>3} {'|D_n|':>7} {'APQ disjuncts':>14} "
        f"{'APQ size':>10} {'factor':>8} {'seconds':>9}"
    )
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.n:>3} {point.query_size:>7} {point.apq_disjuncts:>14} "
            f"{point.apq_size:>10} {point.blowup_factor:>8.1f} {point.rewrite_seconds:>9.3f}"
        )
    return "\n".join(lines)
