"""The n-diamond queries ``D_n`` of Section 7 (Figure 9a).

``D_n`` is the Boolean conjunctive query

    D_n <- Y1(y1) and, for i = 1..n:
             Child+(y_i, x_i),  X_i(x_i),   Child+(x_i, y_{i+1}),
             Child+(y_i, x'_i), X'_i(x'_i), Child+(x'_i, y_{i+1}),
             Y_{i+1}(y_{i+1})

i.e. a chain of ``n`` "diamonds", each offering two Child+-paths (through the
``X_i``-labelled and through the ``X'_i``-labelled variable) from ``y_i`` to
``y_{i+1}``.  Theorem 7.1 shows no polynomial-size APQ is equivalent to
``D_n`` -- the succinctness gap the benchmarks measure.

Label naming: ``X'_i`` is written ``Xp{i}`` ("X prime"); ``Y_i``/``X_i`` keep
their obvious names.
"""

from __future__ import annotations

from ..queries.atoms import AxisAtom, LabelAtom
from ..queries.query import ConjunctiveQuery
from ..trees.axes import Axis


def x_label(i: int) -> str:
    """Label of the left diamond variable of level ``i`` (1-based)."""
    return f"X{i}"


def x_prime_label(i: int) -> str:
    """Label of the right diamond variable of level ``i`` (1-based)."""
    return f"Xp{i}"


def y_label(i: int) -> str:
    """Label of the i-th junction variable (1-based, up to ``n + 1``)."""
    return f"Y{i}"


def diamond_alphabet(n: int) -> tuple[str, ...]:
    """The labelling alphabet used by ``D_n`` and by ``PS(n, p)``."""
    labels: list[str] = []
    labels.extend(y_label(i) for i in range(1, n + 2))
    labels.extend(x_label(i) for i in range(1, n + 1))
    labels.extend(x_prime_label(i) for i in range(1, n + 1))
    return tuple(labels)


def diamond_query(n: int) -> ConjunctiveQuery:
    """Build the Boolean n-diamond query ``D_n``."""
    if n < 1:
        raise ValueError("D_n is defined for n >= 1")
    atoms: list = [LabelAtom(y_label(1), "y1")]
    for i in range(1, n + 1):
        yi, yi1 = f"y{i}", f"y{i + 1}"
        xi, xpi = f"x{i}", f"xp{i}"
        atoms.append(AxisAtom(Axis.CHILD_PLUS, yi, xi))
        atoms.append(LabelAtom(x_label(i), xi))
        atoms.append(AxisAtom(Axis.CHILD_PLUS, xi, yi1))
        atoms.append(AxisAtom(Axis.CHILD_PLUS, yi, xpi))
        atoms.append(LabelAtom(x_prime_label(i), xpi))
        atoms.append(AxisAtom(Axis.CHILD_PLUS, xpi, yi1))
        atoms.append(LabelAtom(y_label(i + 1), yi1))
    return ConjunctiveQuery((), tuple(atoms), name=f"D{n}")
