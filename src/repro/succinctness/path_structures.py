"""Path structures for the succinctness argument (Section 7, Figure 9b).

Two constructions are provided:

* :func:`ps_structure` / :func:`all_ps_structures` -- the family
  ``PS(n, p)`` of p-scattered path structures matched by the regular
  expression (Figure 9b)::

      s.Y1.s.(X1.s.X'1 | X'1.s.X1).s.Y2.s. ... .s.Yn+1.s

  where ``s`` is a run of ``p`` unlabelled nodes.  Each of the ``2^n``
  structures chooses, per level, whether ``X_i`` appears above or below
  ``X'_i``; the diamond query ``D_n`` is true on every one of them.

* :func:`variable_label_paths` / :func:`lemma73_structure` -- the label-path
  machinery and the path-structure construction of Lemma 7.3, which separates
  two DABCQs whose label-path sets differ (used in Example 7.8 / the tests to
  witness non-containment in ``D_n``).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Sequence

from ..queries.graph import QueryGraph
from ..queries.query import ConjunctiveQuery
from ..trees.generators import path_structure
from ..trees.tree import Tree
from .diamonds import x_label, x_prime_label, y_label


def ps_structure(n: int, pad: int, choices: Sequence[bool]) -> Tree:
    """One member of ``PS(n, pad)``.

    ``choices[i]`` (for level ``i + 1``) selects the branch of the regular
    expression: ``False`` puts ``X_{i+1}`` above ``X'_{i+1}`` (the
    ``X.s.X'`` alternative), ``True`` the other way around.
    """
    if len(choices) != n:
        raise ValueError("one choice per diamond level is required")
    if pad < 1:
        raise ValueError("the padding length must be at least 1")
    spacer: list[tuple[str, ...]] = [()] * pad
    labels: list[tuple[str, ...]] = []
    labels.extend(spacer)
    for level in range(1, n + 1):
        labels.append((y_label(level),))
        labels.extend(spacer)
        first, second = (
            (x_prime_label(level), x_label(level))
            if choices[level - 1]
            else (x_label(level), x_prime_label(level))
        )
        labels.append((first,))
        labels.extend(spacer)
        labels.append((second,))
        labels.extend(spacer)
    labels.append((y_label(n + 1),))
    labels.extend(spacer)
    return path_structure(labels)


def all_ps_structures(n: int, pad: int) -> Iterator[tuple[tuple[bool, ...], Tree]]:
    """All ``2^n`` structures of ``PS(n, pad)`` with their choice vectors."""
    for choices in product((False, True), repeat=n):
        yield choices, ps_structure(n, pad, choices)


# ---------------------------------------------------------------------------
# Label paths and the Lemma 7.3 separating structure.
# ---------------------------------------------------------------------------


def variable_label_paths(query: ConjunctiveQuery) -> list[list[frozenset[str]]]:
    """The label-paths ``LP(Pi_Q)`` of a DABCQ (Section 7).

    Each maximal variable-path of the (directed-cycle-free) query graph is
    mapped to the sequence of label sets of its variables.
    """
    graph = QueryGraph(query)
    paths = graph.variable_paths()
    return [
        [query.labels_of(variable) for variable in path]
        for path in paths
    ]


def _path_contains_all(label_path: list[frozenset[str]], labels: Iterable[str]) -> bool:
    present: set[str] = set()
    for label_set in label_path:
        present |= label_set
    return all(label in present for label in labels)


def _path_contains(label_path: list[frozenset[str]], label: str) -> bool:
    return any(label in label_set for label_set in label_path)


def lemma73_structure(
    query: ConjunctiveQuery, ordered_labels: Sequence[str]
) -> Tree:
    """The separating path structure ``M`` of Lemma 7.3.

    ``M`` is the concatenation, for ``j = 1..m``, of the label-paths of the
    query that contain all of ``E_1 .. E_{j-1}`` but not ``E_j`` (in a fixed
    deterministic order).  When no label-path of ``query`` contains *all* of
    ``ordered_labels``, ``M`` is a model of ``query``; any DABCQ that does
    have such a path (e.g. ``D_n`` for a suitable choice of labels) is false
    on ``M``.
    """
    if not ordered_labels:
        raise ValueError("at least one separating label is required")
    label_paths = variable_label_paths(query)
    segments: list[list[frozenset[str]]] = []
    for j, forbidden in enumerate(ordered_labels):
        required = ordered_labels[:j]
        selected = [
            path
            for path in label_paths
            if _path_contains_all(path, required) and not _path_contains(path, forbidden)
        ]
        selected.sort(key=_path_sort_key)
        for path in selected:
            segments.append(path)
    flattened: list[tuple[str, ...]] = []
    for path in segments:
        flattened.extend(tuple(sorted(label_set)) for label_set in path)
    if not flattened:
        # Degenerate but legal: a single unlabelled node.
        flattened = [()]
    return path_structure(flattened)


def _path_sort_key(path: list[frozenset[str]]) -> tuple:
    return tuple(tuple(sorted(labels)) for labels in path)
