"""Tree substrate: unranked ordered labelled trees, axes, orders, generators."""

from .axes import (
    AX,
    Axis,
    AxisOracle,
    axis_from_name,
    holds,
    materialise,
    pairs,
    predecessors,
    successors,
)
from .builders import chain, from_nested, parse_sexpr, to_sexpr
from .generators import (
    all_trees,
    is_scattered,
    path_structure,
    random_binary_tree,
    random_path,
    random_tree,
    scattered_path_structure,
)
from .index import AxisIndex, DomainView, nodes_in_pre_range, range_any, range_count
from .node import Node
from .orders import ALL_ORDERS, Order, less, minimum, rank, sorted_nodes
from .structure import TAU, Signature, TreeStructure, structure
from .tree import Tree
from .xmlio import XMLParseError, from_xml, from_xml_file, to_xml

__all__ = [
    "AX",
    "ALL_ORDERS",
    "Axis",
    "AxisIndex",
    "AxisOracle",
    "DomainView",
    "Node",
    "Order",
    "Signature",
    "TAU",
    "Tree",
    "TreeStructure",
    "XMLParseError",
    "all_trees",
    "axis_from_name",
    "chain",
    "from_nested",
    "from_xml",
    "from_xml_file",
    "holds",
    "is_scattered",
    "less",
    "materialise",
    "minimum",
    "nodes_in_pre_range",
    "pairs",
    "parse_sexpr",
    "path_structure",
    "predecessors",
    "range_any",
    "range_count",
    "random_binary_tree",
    "random_path",
    "random_tree",
    "rank",
    "scattered_path_structure",
    "sorted_nodes",
    "structure",
    "successors",
    "to_sexpr",
    "to_xml",
]
