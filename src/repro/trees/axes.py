"""Axis relations over trees (Section 2 of the paper).

The set ``Ax`` of the paper is::

    Child, Child+, Child*, NextSibling, NextSibling+, NextSibling*, Following

with the XPath correspondences Child+ = Descendant, Child* = Descendant-or-self
and NextSibling+ = Following-sibling.  Following is defined (Eq. (1)) by

    Following(x, y) = exists z1 z2 . Child*(z1, x) & NextSibling+(z1, z2) & Child*(z2, y)

which over a tree is equivalent to "x's subtree closes before y's subtree
opens": pre(x) < pre(y) and post(x) < post(y).

Each axis supports three operations used by the evaluation algorithms:

* :meth:`Axis.holds`          -- O(1) membership test ``R(u, v)``,
* :meth:`Axis.successors`     -- enumerate ``{v | R(u, v)}``,
* :meth:`Axis.predecessors`   -- enumerate ``{u | R(u, v)}``.

The extra relations ``DocumentOrder`` (``<pre``) and ``SuccPre`` ("next node in
document order") from the end of Section 4 are provided as well, together with
inverse axes (Parent, Ancestor, ...), which the paper notes are redundant for
conjunctive queries (swap the variable pair) but are convenient for the XPath
translator.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator

from .tree import Tree


class Axis(str, Enum):
    """Names of the binary tree relations used throughout the reproduction."""

    CHILD = "Child"
    CHILD_PLUS = "Child+"
    CHILD_STAR = "Child*"
    NEXT_SIBLING = "NextSibling"
    NEXT_SIBLING_PLUS = "NextSibling+"
    NEXT_SIBLING_STAR = "NextSibling*"
    FOLLOWING = "Following"
    # Extra relations discussed at the end of Section 4.
    DOCUMENT_ORDER = "DocumentOrder"      # <pre, strict
    SUCC_PRE = "SuccPre"                  # successor in document order
    # Inverse axes (redundant in CQs, used by the XPath translator).
    PARENT = "Parent"
    ANCESTOR = "Ancestor"                 # (Child+)^-1
    ANCESTOR_OR_SELF = "AncestorOrSelf"   # (Child*)^-1
    PREVIOUS_SIBLING = "PreviousSibling"
    PRECEDING_SIBLING = "PrecedingSibling"  # (NextSibling+)^-1
    PRECEDING = "Preceding"               # Following^-1
    SELF = "Self"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The paper's axis set ``Ax``.
AX: frozenset[Axis] = frozenset(
    {
        Axis.CHILD,
        Axis.CHILD_PLUS,
        Axis.CHILD_STAR,
        Axis.NEXT_SIBLING,
        Axis.NEXT_SIBLING_PLUS,
        Axis.NEXT_SIBLING_STAR,
        Axis.FOLLOWING,
    }
)

#: Axes whose relation is reflexive on some pairs (x, x).
REFLEXIVE_AXES: frozenset[Axis] = frozenset(
    {Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR, Axis.ANCESTOR_OR_SELF, Axis.SELF}
)

#: Forward XPath axis names -> Axis (used by the XPath translator).
XPATH_AXIS_NAMES: dict[str, Axis] = {
    "child": Axis.CHILD,
    "descendant": Axis.CHILD_PLUS,
    "descendant-or-self": Axis.CHILD_STAR,
    "following-sibling": Axis.NEXT_SIBLING_PLUS,
    "following": Axis.FOLLOWING,
    "self": Axis.SELF,
    "parent": Axis.PARENT,
    "ancestor": Axis.ANCESTOR,
    "ancestor-or-self": Axis.ANCESTOR_OR_SELF,
    "preceding-sibling": Axis.PRECEDING_SIBLING,
    "preceding": Axis.PRECEDING,
}

#: Inverse axis of each axis (swapping the argument pair).
INVERSE: dict[Axis, Axis] = {
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.CHILD_PLUS: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.CHILD_PLUS,
    Axis.CHILD_STAR: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.CHILD_STAR,
    Axis.NEXT_SIBLING: Axis.PREVIOUS_SIBLING,
    Axis.PREVIOUS_SIBLING: Axis.NEXT_SIBLING,
    Axis.NEXT_SIBLING_PLUS: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.NEXT_SIBLING_PLUS,
    Axis.NEXT_SIBLING_STAR: Axis.NEXT_SIBLING_STAR,  # handled by swapping args
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.SELF: Axis.SELF,
}


def holds(tree: Tree, axis: Axis, u: int, v: int) -> bool:
    """Membership test ``axis(u, v)`` on ``tree`` in O(1)."""
    if axis is Axis.CHILD:
        return tree.parent[v] == u
    if axis is Axis.CHILD_PLUS:
        return tree.is_descendant(u, v)
    if axis is Axis.CHILD_STAR:
        return u == v or tree.is_descendant(u, v)
    if axis is Axis.NEXT_SIBLING:
        return (
            tree.parent[u] == tree.parent[v]
            and tree.parent[u] >= 0
            and tree.sibling_index[v] == tree.sibling_index[u] + 1
        )
    if axis is Axis.NEXT_SIBLING_PLUS:
        return (
            tree.parent[u] == tree.parent[v]
            and tree.parent[u] >= 0
            and tree.sibling_index[v] > tree.sibling_index[u]
        )
    if axis is Axis.NEXT_SIBLING_STAR:
        if u == v:
            return True
        return holds(tree, Axis.NEXT_SIBLING_PLUS, u, v)
    if axis is Axis.FOLLOWING:
        return tree.pre[u] < tree.pre[v] and tree.post[u] < tree.post[v]
    if axis is Axis.DOCUMENT_ORDER:
        return u < v
    if axis is Axis.SUCC_PRE:
        return v == u + 1
    if axis is Axis.SELF:
        return u == v
    inverse = INVERSE.get(axis)
    if inverse is not None and inverse is not axis:
        return holds(tree, inverse, v, u)
    if axis is Axis.NEXT_SIBLING_STAR:  # pragma: no cover - unreachable
        return holds(tree, Axis.NEXT_SIBLING_STAR, v, u)
    raise ValueError(f"unknown axis: {axis}")


def successors(tree: Tree, axis: Axis, u: int) -> Iterator[int]:
    """Enumerate ``{v | axis(u, v)}``."""
    if axis is Axis.CHILD:
        yield from tree.children(u)
    elif axis is Axis.CHILD_PLUS:
        yield from tree.descendants(u)
    elif axis is Axis.CHILD_STAR:
        yield u
        yield from tree.descendants(u)
    elif axis is Axis.NEXT_SIBLING:
        sibling = tree.next_sibling(u)
        if sibling is not None:
            yield sibling
    elif axis is Axis.NEXT_SIBLING_PLUS:
        yield from tree.siblings_after(u)
    elif axis is Axis.NEXT_SIBLING_STAR:
        yield u
        yield from tree.siblings_after(u)
    elif axis is Axis.FOLLOWING:
        yield from tree.following(u)
    elif axis is Axis.DOCUMENT_ORDER:
        yield from range(u + 1, len(tree))
    elif axis is Axis.SUCC_PRE:
        if u + 1 < len(tree):
            yield u + 1
    elif axis is Axis.SELF:
        yield u
    else:
        inverse = INVERSE.get(axis)
        if inverse is None:
            raise ValueError(f"unknown axis: {axis}")
        yield from predecessors(tree, inverse, u)


def predecessors(tree: Tree, axis: Axis, v: int) -> Iterator[int]:
    """Enumerate ``{u | axis(u, v)}``."""
    if axis is Axis.CHILD:
        parent = tree.parent_of(v)
        if parent is not None:
            yield parent
    elif axis is Axis.CHILD_PLUS:
        yield from tree.path_to_root(v)[1:]
    elif axis is Axis.CHILD_STAR:
        yield from tree.path_to_root(v)
    elif axis is Axis.NEXT_SIBLING:
        parent = tree.parent_of(v)
        if parent is not None and tree.sibling_index[v] > 0:
            yield tree.children(parent)[tree.sibling_index[v] - 1]
    elif axis is Axis.NEXT_SIBLING_PLUS:
        parent = tree.parent_of(v)
        if parent is not None:
            yield from tree.children(parent)[: tree.sibling_index[v]]
    elif axis is Axis.NEXT_SIBLING_STAR:
        yield v
        parent = tree.parent_of(v)
        if parent is not None:
            yield from tree.children(parent)[: tree.sibling_index[v]]
    elif axis is Axis.FOLLOWING:
        for u in range(v):
            if tree.post[u] < tree.post[v]:
                yield u
    elif axis is Axis.DOCUMENT_ORDER:
        yield from range(v)
    elif axis is Axis.SUCC_PRE:
        if v - 1 >= 0:
            yield v - 1
    elif axis is Axis.SELF:
        yield v
    else:
        inverse = INVERSE.get(axis)
        if inverse is None:
            raise ValueError(f"unknown axis: {axis}")
        yield from successors(tree, inverse, v)


def pairs(tree: Tree, axis: Axis) -> Iterator[tuple[int, int]]:
    """Enumerate the full relation (used by X-property checks and tests)."""
    for u in tree.node_ids():
        for v in successors(tree, axis, u):
            yield (u, v)


def materialise(tree: Tree, axis: Axis) -> frozenset[tuple[int, int]]:
    """Materialise the relation as a frozenset (ablation baseline / tests)."""
    return frozenset(pairs(tree, axis))


def is_irreflexive(axis: Axis) -> bool:
    """True iff the axis relation can never contain a pair (x, x)."""
    return axis not in REFLEXIVE_AXES


def axis_from_name(name: str) -> Axis:
    """Parse an axis name as used in queries (e.g. ``"Child+"``)."""
    for axis in Axis:
        if axis.value == name:
            return axis
    # Accept a few common aliases.
    aliases = {
        "Descendant": Axis.CHILD_PLUS,
        "DescendantOrSelf": Axis.CHILD_STAR,
        "Descendant-or-self": Axis.CHILD_STAR,
        "FollowingSibling": Axis.NEXT_SIBLING_PLUS,
        "Following-sibling": Axis.NEXT_SIBLING_PLUS,
        "ChildPlus": Axis.CHILD_PLUS,
        "ChildStar": Axis.CHILD_STAR,
        "NextSiblingPlus": Axis.NEXT_SIBLING_PLUS,
        "NextSiblingStar": Axis.NEXT_SIBLING_STAR,
    }
    if name in aliases:
        return aliases[name]
    raise ValueError(f"unknown axis name: {name!r}")


class AxisOracle:
    """Cached axis access bound to one tree.

    Evaluators construct a single oracle per (tree, query) evaluation so that
    repeated ``successors`` / ``predecessors`` enumerations of the same
    (axis, node) pair are answered from a cache.  ``holds`` stays uncached --
    it is answered in O(1) from the tree's pre/post rank arrays (see
    :mod:`repro.trees.index`); the module-level :func:`holds` remains the
    traversal-based reference implementation used for cross-checks.
    """

    def __init__(self, tree: Tree):
        self.tree = tree
        self._succ_cache: dict[tuple[Axis, int], tuple[int, ...]] = {}
        self._pred_cache: dict[tuple[Axis, int], tuple[int, ...]] = {}

    def holds(self, axis: Axis, u: int, v: int) -> bool:
        return self.tree.index.holds(axis, u, v)

    def successors(self, axis: Axis, u: int) -> tuple[int, ...]:
        key = (axis, u)
        cached = self._succ_cache.get(key)
        if cached is None:
            cached = tuple(successors(self.tree, axis, u))
            self._succ_cache[key] = cached
        return cached

    def predecessors(self, axis: Axis, v: int) -> tuple[int, ...]:
        key = (axis, v)
        cached = self._pred_cache.get(key)
        if cached is None:
            cached = tuple(predecessors(self.tree, axis, v))
            self._pred_cache[key] = cached
        return cached
