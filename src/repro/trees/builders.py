"""Builders: convenient textual / nested-structure constructors for trees.

Two notations are supported:

* **Nested tuples / lists** -- ``("S", [("NP", []), ("VP", [("V", [])])])``.
  A node is ``(labels, children)`` where ``labels`` is a string or an iterable
  of strings, and ``children`` a list of nodes.  A bare string is a leaf.
* **S-expressions** -- ``"(S (NP) (VP (V)))"``, the classic bracketed treebank
  notation.  Multiple labels are written ``(A|B ...)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from .node import Node
from .tree import Tree

NestedSpec = Union[str, tuple, list]


def node_from_nested(spec: NestedSpec) -> Node:
    """Build a :class:`Node` (sub)tree from the nested notation."""
    if isinstance(spec, str):
        return Node((spec,) if spec else ())
    if isinstance(spec, (tuple, list)):
        if len(spec) == 0:
            return Node()
        labels = spec[0]
        rest: Sequence[NestedSpec] = spec[1] if len(spec) > 1 else []
        if isinstance(labels, str):
            label_set: Iterable[str] = (labels,) if labels else ()
        else:
            label_set = labels
        node = Node(label_set)
        for child_spec in rest:
            node.add_child(node_from_nested(child_spec))
        return node
    raise TypeError(f"cannot build a tree node from {spec!r}")


def from_nested(spec: NestedSpec) -> Tree:
    """Build a finalised :class:`Tree` from the nested notation."""
    return Tree(node_from_nested(spec))


def parse_sexpr(text: str) -> Tree:
    """Parse an s-expression tree, e.g. ``"(S (NP) (VP (V)))"``.

    Labels may be alphanumeric (plus ``_``, ``-``, ``.``); a node with several
    labels separates them with ``|``; an unlabelled node is written ``(.)`` or
    ``(* ...)``.
    """
    tokens = _tokenise(text)
    pos = 0

    def parse_node() -> Node:
        nonlocal pos
        if tokens[pos] != "(":
            raise ValueError(f"expected '(' at token {pos}: {tokens[pos]!r}")
        pos += 1
        if pos >= len(tokens):
            raise ValueError("unexpected end of input after '('")
        head = tokens[pos]
        if head in ("(", ")"):
            raise ValueError("every node needs a label token (use '.' or '*' for none)")
        pos += 1
        if head in (".", "*"):
            node = Node()
        else:
            node = Node(head.split("|"))
        while pos < len(tokens) and tokens[pos] == "(":
            node.add_child(parse_node())
        if pos >= len(tokens) or tokens[pos] != ")":
            raise ValueError("missing ')'")
        pos += 1
        return node

    root = parse_node()
    if pos != len(tokens):
        raise ValueError(f"trailing tokens after tree: {tokens[pos:]}")
    return Tree(root)


def to_sexpr(tree: Tree) -> str:
    """Serialise a tree back into the s-expression notation."""

    def rec(node_id: int) -> str:
        labels = sorted(tree.labels_of[node_id])
        head = "|".join(labels) if labels else "."
        kids = "".join(" " + rec(child) for child in tree.children(node_id))
        return f"({head}{kids})"

    return rec(0)


def chain(labels: Sequence[Union[str, Iterable[str]]]) -> Tree:
    """Build a path tree (each node the single child of the previous one).

    ``labels[i]`` gives the labels of the node at depth ``i``; an empty string
    or empty iterable means the node is unlabelled.
    """
    if not labels:
        raise ValueError("a chain needs at least one node")

    def as_labels(item: Union[str, Iterable[str]]) -> Iterable[str]:
        if isinstance(item, str):
            return (item,) if item else ()
        return item

    root = Node(as_labels(labels[0]))
    current = root
    for item in labels[1:]:
        current = current.add(as_labels(item))
    return Tree(root)


def _tokenise(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        else:
            j = i
            while j < len(text) and not text[j].isspace() and text[j] not in "()":
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens
