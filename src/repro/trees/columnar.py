"""Columnar axis kernels: staircase sweeps over sorted rank columns.

The per-candidate witness primitives of :mod:`repro.trees.index` answer "does
``u`` have an axis witness in ``S``?" one ``u`` at a time -- two bisections
plus a method dispatch per candidate.  When an arc-consistency revise pass or
an AC-4 counter initialisation asks that question for *every* candidate of a
domain, the per-call constant dominates: the work is a pure function of two
sorted integer columns and can run as a handful of fused C-level passes
instead of |domain| interpreted loop iterations.

This module holds those bulk kernels.  Everything is plain stdlib -- the
``array`` module for contiguous columns, ``bytearray`` masks,
``itertools.accumulate``/``compress`` and ``map`` over bound C methods -- so
each kernel touches Python-level bytecode O(1) times regardless of input
size.

The central object is the *cumulative membership column* of a support set
``S`` over a tree with ``n`` nodes:

    ``cum[j] = |{s in S : s < j}|``        (length ``n + 1``)

With ``end = subtree_end`` (descendants of ``u`` are exactly the pre-order
range ``(u, end(u)]``), the interval-axis support counts become closed-form
column lookups:

* descendants of ``u`` in ``S``:       ``cum[end(u) + 1] - cum[u + 1]``
* descendants-or-self:                 ``cum[end(u) + 1] - cum[u]``
* strict ancestors of ``u`` in ``S``:  ``cum[u] - cum_end[u]`` where
  ``cum_end[j] = |{s in S : end(s) < j}|`` -- because ``s`` is a strict
  ancestor of ``u`` iff ``s < u <= end(s)``, the ancestor count is
  "elements before ``u``" minus "elements whose subtree closed before ``u``".
* ``Following(u, v)`` iff ``v > end(u)`` and ``DocumentOrder(u, v)`` iff
  ``v > u`` stay single threshold comparisons against the support extremum.

The kernels are cross-checked against the bisection primitives
(:func:`repro.trees.index.range_count` et al.) by the hypothesis suite in
``tests/test_columnar.py``; the speedups they buy are measured and pinned by
``benchmarks/bench_columnar.py``.
"""

from __future__ import annotations

from array import array
from itertools import accumulate, compress
from operator import add, not_, sub
from typing import Iterable, Sequence

#: The array typecode used for all rank columns (signed, at least 32 bits).
COLUMN_TYPECODE = "l"


def as_column(ids: Iterable[int]) -> array:
    """Materialise node ids as a contiguous ``array``-module column."""
    return array(COLUMN_TYPECODE, ids)


# ---------------------------------------------------------------------------
# Cumulative membership columns.
# ---------------------------------------------------------------------------


def cumulative_membership(sorted_ids: Sequence[int], n: int) -> list[int]:
    """The column ``cum[j] = |{s in sorted_ids : s < j}|`` (length ``n + 1``).

    Built as a 0/1 byte mask shifted by one position and prefix-summed --
    both passes run inside the interpreter's C loops.  Ids must be distinct
    (they are node ids) and lie in ``range(n)``.
    """
    mask = bytearray(n + 1)
    for node_id in sorted_ids:
        mask[node_id + 1] = 1
    return list(accumulate(mask))


def cumulative_end_membership(
    sorted_ids: Sequence[int], subtree_end: Sequence[int], n: int
) -> list[int]:
    """The column ``cum[j] = |{s in sorted_ids : subtree_end[s] < j}|``.

    Distinct nodes may share a ``subtree_end`` (every ancestor on the
    rightmost path to a deepest leaf closes at that leaf), so this histogram
    uses integer buckets rather than a byte mask.
    """
    buckets = [0] * (n + 1)
    for node_id in sorted_ids:
        buckets[subtree_end[node_id] + 1] += 1
    return list(accumulate(buckets))


def membership_mask(sorted_ids: Sequence[int], n: int) -> bytearray:
    """A 0/1 byte mask of the support set, for or-self count corrections."""
    mask = bytearray(n)
    for node_id in sorted_ids:
        mask[node_id] = 1
    return mask


# ---------------------------------------------------------------------------
# Interval-axis support counts (one fused pass per column).
# ---------------------------------------------------------------------------


def descendant_counts(
    candidates: Sequence[int],
    subtree_end_plus1: Sequence[int],
    cum: Sequence[int],
    include_self: bool,
) -> list[int]:
    """Per candidate ``u``: how many support nodes lie in ``u``'s subtree.

    ``Child+`` counts over ``(u, end(u)]``; ``include_self`` (``Child*``)
    widens to ``[u, end(u)]``.  ``cum`` is the support's cumulative
    membership column; ``subtree_end_plus1[u] = subtree_end[u] + 1`` is the
    index-cached shifted column, so the whole computation is three ``map``
    pipelines over bound C methods.
    """
    upper = map(cum.__getitem__, map(subtree_end_plus1.__getitem__, candidates))
    if include_self:
        lower = map(cum.__getitem__, candidates)
    else:
        lower = map(cum.__getitem__, map((1).__add__, candidates))
    return list(map(sub, upper, lower))


def ancestor_counts(
    candidates: Sequence[int],
    cum: Sequence[int],
    cum_end: Sequence[int],
    self_mask: Sequence[int] | None = None,
) -> list[int]:
    """Per candidate ``u``: how many support nodes are ancestors of ``u``.

    Uses the closed form ``cum[u] - cum_end[u]`` (strict ancestors are the
    support nodes opening before ``u`` whose subtree has not closed before
    ``u``).  Passing the support's :func:`membership_mask` as ``self_mask``
    adds 1 for candidates that are support members themselves (``Child*``).
    """
    strict = map(sub, map(cum.__getitem__, candidates), map(cum_end.__getitem__, candidates))
    if self_mask is None:
        return list(strict)
    return list(map(add, strict, map(self_mask.__getitem__, candidates)))


# ---------------------------------------------------------------------------
# Survivor / casualty selection.
# ---------------------------------------------------------------------------


def survivors(candidates: Sequence[int], counts: Sequence[int]) -> list[int]:
    """The candidates whose support count is non-zero (one C pass)."""
    return list(compress(candidates, counts))


def casualties(candidates: Sequence[int], counts: Sequence[int]) -> list[int]:
    """The candidates whose support count is zero (one C pass)."""
    return list(compress(candidates, map(not_, counts)))


def threshold_casualties_by_end(
    candidates: Sequence[int], subtree_end: Sequence[int], bound: int
) -> list[int]:
    """Candidates ``u`` with ``subtree_end[u] >= bound``.

    The ``Following``-forward staircase: ``u`` keeps a witness iff some
    support node opens after ``u``'s subtree closes, i.e. iff
    ``subtree_end[u] < max(support)``.  With ``bound = max(support) `` this
    selects exactly the unsupported candidates.
    """
    return list(compress(candidates, map(bound.__le__, map(subtree_end.__getitem__, candidates))))
