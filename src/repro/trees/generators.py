"""Tree generators: random trees, path structures, scattered paths.

These generators provide the synthetic data used by the tests, benchmarks and
experiments:

* :func:`random_tree` -- random unranked labelled trees with controllable size,
  branching factor and alphabet (the generic workload for the polynomial-time
  and rewriting experiments),
* :func:`random_binary_tree`, :func:`random_path` -- degenerate shapes useful
  as edge cases,
* :func:`path_structure` -- a tree whose ``Child`` graph is a path (Section 7's
  "path-structure"),
* :func:`scattered_path_structure` -- a k-scattered path structure (Section 7),
* :func:`all_trees` -- exhaustive enumeration of small labelled trees, used by
  the equivalence checker to compare queries on *all* trees up to a size bound.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Iterable, Iterator, Optional, Sequence

from .node import Node
from .tree import Tree


def random_tree(
    size: int,
    alphabet: Sequence[str] = ("A", "B", "C"),
    max_children: int = 4,
    multi_label_probability: float = 0.0,
    unlabeled_probability: float = 0.0,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Tree:
    """Generate a uniformly-ish random tree with ``size`` nodes.

    Nodes are attached one by one to a random existing node whose fan-out is
    still below ``max_children`` (falling back to any node when all are full).
    Labels are drawn uniformly from ``alphabet``; with
    ``multi_label_probability`` a second distinct label is added and with
    ``unlabeled_probability`` the node gets no label at all.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    rng = rng or random.Random(seed)

    def draw_labels() -> tuple[str, ...]:
        if alphabet and rng.random() < unlabeled_probability:
            return ()
        if not alphabet:
            return ()
        first = rng.choice(alphabet)
        if len(alphabet) > 1 and rng.random() < multi_label_probability:
            second = rng.choice([label for label in alphabet if label != first])
            return (first, second)
        return (first,)

    root = Node(draw_labels())
    nodes = [root]
    for _ in range(size - 1):
        eligible = [node for node in nodes if len(node.children) < max_children]
        parent = rng.choice(eligible) if eligible else rng.choice(nodes)
        nodes.append(parent.add(draw_labels()))
    return Tree(root)


def random_binary_tree(
    size: int,
    alphabet: Sequence[str] = ("A", "B"),
    seed: Optional[int] = None,
) -> Tree:
    """A random tree where every node has at most two children."""
    return random_tree(size, alphabet=alphabet, max_children=2, seed=seed)


def random_path(
    size: int,
    alphabet: Sequence[str] = ("A", "B", "C"),
    seed: Optional[int] = None,
) -> Tree:
    """A random path (chain) tree: every node has exactly one child."""
    rng = random.Random(seed)
    root = Node((rng.choice(alphabet),))
    current = root
    for _ in range(size - 1):
        current = current.add((rng.choice(alphabet),))
    return Tree(root)


def path_structure(labels: Sequence[Iterable[str]]) -> Tree:
    """Build a path-structure from per-node label sets (Section 7).

    ``labels[i]`` is the (possibly empty) label collection of the i-th node
    from the root.
    """
    if not labels:
        raise ValueError("a path structure needs at least one node")

    def as_set(item: Iterable[str]) -> tuple[str, ...]:
        if isinstance(item, str):
            return (item,) if item else ()
        return tuple(item)

    root = Node(as_set(labels[0]))
    current = root
    for item in labels[1:]:
        current = current.add(as_set(item))
    return Tree(root)


def scattered_path_structure(
    k: int,
    labels: Sequence[str],
    gap: Optional[int] = None,
    leading: Optional[int] = None,
    trailing: Optional[int] = None,
) -> Tree:
    """Build a k-scattered path structure containing ``labels`` in order.

    A path structure is *k-scattered* (Section 7) if it has at least ``k``
    nodes, each node has at most one label, no two nodes share a label, and
    any two labelled nodes -- as well as a labelled node and the topmost or
    bottommost node -- are at distance at least ``k``.

    The default layout places ``k`` unlabelled nodes before the first label,
    between consecutive labels, and after the last label.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(set(labels)) != len(labels):
        raise ValueError("labels of a scattered path structure must be distinct")
    gap = k if gap is None else gap
    leading = k if leading is None else leading
    trailing = k if trailing is None else trailing
    if gap < k or leading < k or trailing < k:
        raise ValueError("gaps must be at least k for the structure to be k-scattered")

    sequence: list[tuple[str, ...]] = [()] * leading
    for position, label in enumerate(labels):
        if position > 0:
            sequence.extend([()] * gap)
        sequence.append((label,))
    sequence.extend([()] * trailing)
    return path_structure(sequence)


def is_scattered(tree: Tree, k: int) -> bool:
    """Check the four conditions of k-scatteredness for a path structure."""
    n = len(tree)
    if n < k:
        return False
    # Must be a path structure.
    if any(len(tree.children(node_id)) > 1 for node_id in tree.node_ids()):
        return False
    seen_labels: set[str] = set()
    labelled_depths: list[int] = []
    for node_id in tree.node_ids():
        labels = tree.labels_of[node_id]
        if len(labels) > 1:
            return False
        if labels:
            label = next(iter(labels))
            if label in seen_labels:
                return False
            seen_labels.add(label)
            labelled_depths.append(tree.depth[node_id])
    endpoints = [0, n - 1]
    for depth in labelled_depths:
        for other in labelled_depths:
            if other != depth and abs(depth - other) < k:
                return False
        for endpoint in endpoints:
            if depth != endpoint and abs(depth - endpoint) < k:
                return False
    return True


def all_trees(max_size: int, alphabet: Sequence[str] = ("A", "B")) -> Iterator[Tree]:
    """Enumerate *all* ordered labelled trees with at most ``max_size`` nodes.

    Every node carries exactly one label from ``alphabet``.  This is used by
    the exhaustive equivalence checker; the count grows quickly
    (Catalan(size) * |alphabet|^size), so keep ``max_size`` small (<= 4 or 5).
    """
    for size in range(1, max_size + 1):
        for shape in _tree_shapes(size):
            for labelling in product(alphabet, repeat=size):
                labelled = _apply_labels(shape, list(labelling))
                yield Tree(labelled)


def _tree_shapes(size: int) -> Iterator[Node]:
    """All ordered tree shapes (unlabelled) with exactly ``size`` nodes."""
    if size == 1:
        yield Node()
        return
    # Root plus an ordered forest of total size size-1.
    for forest in _forests(size - 1):
        root = Node()
        for subtree in forest:
            root.add_child(subtree)
        yield root


def _forests(size: int) -> Iterator[list[Node]]:
    """All ordered forests with exactly ``size`` nodes."""
    if size == 0:
        yield []
        return
    for first_size in range(1, size + 1):
        for first in _tree_shapes(first_size):
            for rest in _forests(size - first_size):
                yield [_clone(first)] + [_clone(node) for node in rest]


def _clone(node: Node) -> Node:
    copy = Node(node.labels)
    for child in node.children:
        copy.add_child(_clone(child))
    return copy


def _apply_labels(shape: Node, labels: list[str]) -> Node:
    """Clone ``shape`` assigning ``labels`` in pre-order."""
    iterator = iter(labels)

    def rec(node: Node) -> Node:
        copy = Node((next(iterator),))
        for child in node.children:
            copy.add_child(rec(child))
        return copy

    return rec(shape)
