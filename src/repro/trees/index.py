"""Pre/post-order interval index for axis evaluation (the "accelerator" view).

Every axis in the paper's set ``Ax`` (Section 2) has a *constant-size
characterization* in pre/post-order coordinates.  Writing ``pre(u)`` for the
pre-order (document-order) rank and ``post(u)`` for the post-order rank:

==================  =====================================================
Axis                pre/post characterization
==================  =====================================================
``Child+(u, v)``    ``pre(u) < pre(v)`` and ``post(v) < post(u)``
``Child*(u, v)``    ``u = v`` or ``Child+(u, v)``
``Following(u,v)``  ``pre(u) < pre(v)`` and ``post(u) < post(v)``
``Child(u, v)``     ``parent(v) = u``
``NextSibling``     same parent, sibling rank differs by one
``NextSibling+``    same parent, sibling rank strictly increases
``NextSibling*``    ``u = v`` or ``NextSibling+(u, v)``
==================  =====================================================

The ``Following`` row is exactly the paper's Eq. (1),

    ``Following(x, y) = exists z1 z2 . Child*(z1, x) & NextSibling+(z1, z2)
    & Child*(z2, y)``,

unfolded over a tree: ``x``'s subtree closes before ``y``'s subtree opens.
This is the encoding used by XPath-on-RDBMS "accelerator" systems, and it
turns every axis test into a comparison of a constant number of integer ranks.

:class:`AxisIndex` packages, per tree,

* the rank arrays ``pre`` (identity on node ids), ``post``, ``bflr``,
* the local-structure arrays ``parent``, ``first_child``, ``next_sibling``,
  ``prev_sibling``, ``sibling_index``, ``subtree_end``,
* per-label sorted node lists,

and answers the two questions the evaluation algorithms actually ask:

* ``holds(axis, u, v)`` -- the O(1) rank-comparison membership test;
* ``has_successor_in(axis, u, view)`` / ``has_predecessor_in(axis, v, view)``
  -- "does ``u`` have an axis witness inside a candidate set ``S``?", answered
  in O(1) or O(log n) against a :class:`DomainView` (a sorted-array view of
  ``S`` with lazily built companion aggregates) instead of enumerating the
  axis relation.

The witness primitives are what make one arc-consistency revise step
O((|S| + |T|) log n) instead of O(|S| * n) (see
:mod:`repro.evaluation.arc_consistency`), closing most of the gap to the
O(||A|| * |Q|) bound of Proposition 3.1.

Interval reasoning used by the witness tests (``end`` = ``subtree_end``):

* descendants of ``u`` are exactly the pre-range ``(u, end(u)]`` -- so a
  ``Child+`` witness is one :func:`range_any` bisection;
* ancestors of ``v`` are the ``u < v`` with ``end(u) >= v`` -- so an ancestor
  witness is a prefix-maximum of ``end`` over the sorted view;
* ``Following(u, v)`` iff ``v > end(u)`` -- so a ``Following`` witness is a
  single comparison against ``max(S)`` resp. ``min over S of end``;
* ``NextSibling+`` witnesses reduce to per-parent extrema of sibling ranks.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from itertools import accumulate
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .axes import INVERSE, Axis
from .columnar import (
    COLUMN_TYPECODE,
    cumulative_end_membership,
    cumulative_membership,
    membership_mask,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (Tree builds us lazily)
    from .tree import Tree


# ---------------------------------------------------------------------------
# Bisect primitives over sorted integer arrays.
# ---------------------------------------------------------------------------


def range_count(sorted_ids: Sequence[int], lo: int, hi: int) -> int:
    """Number of elements of ``sorted_ids`` in the half-open range ``[lo, hi)``."""
    if hi <= lo:
        return 0
    return bisect_left(sorted_ids, hi) - bisect_left(sorted_ids, lo)


def range_any(sorted_ids: Sequence[int], lo: int, hi: int) -> bool:
    """True iff ``sorted_ids`` has an element in the half-open range ``[lo, hi)``."""
    position = bisect_left(sorted_ids, lo)
    return position < len(sorted_ids) and sorted_ids[position] < hi


def nodes_in_pre_range(sorted_ids: Sequence[int], lo: int, hi: int) -> Sequence[int]:
    """The slice of ``sorted_ids`` with pre-order ranks in ``[lo, hi)``."""
    return sorted_ids[bisect_left(sorted_ids, lo) : bisect_left(sorted_ids, hi)]


# ---------------------------------------------------------------------------
# Sorted-array views of candidate sets.
# ---------------------------------------------------------------------------


class DomainView:
    """A candidate node set ``S`` as a sorted array plus lazy aggregates.

    The evaluation algorithms manipulate domains as plain ``set`` objects;
    a ``DomainView`` is the companion representation the index queries run
    against.  Construction is O(|S| log |S|) (one sort); each aggregate is
    built on first use in O(|S|) and cached:

    * :attr:`prefix_max_end` -- running maximum of ``subtree_end`` in pre
      order, for ancestor (``Child+`` predecessor) witnesses;
    * :attr:`min_end` -- minimum ``subtree_end`` over ``S``, for ``Following``
      predecessor witnesses;
    * :attr:`max_sibling_rank` / :attr:`min_sibling_rank` -- per-parent
      extrema of sibling ranks, for ``NextSibling+`` witnesses;
    * :attr:`cum_pre` / :attr:`cum_end` / :attr:`live_mask` -- the cumulative
      membership columns consumed by the bulk kernels of
      :mod:`repro.trees.columnar`.

    ``array`` is a contiguous ``array``-module column (pre-order sorted), so
    bulk consumers slice and scan it at C speed; it supports the same
    bisection/iteration protocol the previous list representation did.
    """

    __slots__ = (
        "index",
        "array",
        "members",
        "_prefix_max_end",
        "_min_end",
        "_max_sibling_rank",
        "_min_sibling_rank",
        "_cum_pre",
        "_cum_end",
        "_live_mask",
    )

    def __init__(self, index: "AxisIndex", nodes: Iterable[int]):
        self.index = index
        # Snapshot: a view must stay internally consistent even if the caller
        # later mutates the set it was built from.
        self.members = frozenset(nodes)
        self.array: array = array(COLUMN_TYPECODE, sorted(self.members))
        self._prefix_max_end: list[int] | None = None
        self._min_end: int | None = None
        self._max_sibling_rank: dict[int, int] | None = None
        self._min_sibling_rank: dict[int, int] | None = None
        self._cum_pre: list[int] | None = None
        self._cum_end: list[int] | None = None
        self._live_mask: bytearray | None = None

    def __len__(self) -> int:
        return len(self.array)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.members

    @property
    def prefix_max_end(self) -> list[int]:
        """``prefix_max_end[i] = max(subtree_end[array[j]] for j <= i)``."""
        if self._prefix_max_end is None:
            end = self.index.subtree_end
            self._prefix_max_end = list(accumulate(map(end.__getitem__, self.array), max))
        return self._prefix_max_end

    @property
    def min_end(self) -> int:
        """Minimum ``subtree_end`` over the view (``n`` when empty)."""
        if self._min_end is None:
            end = self.index.subtree_end
            self._min_end = min(map(end.__getitem__, self.array), default=len(end))
        return self._min_end

    @property
    def cum_pre(self) -> list[int]:
        """Cumulative membership column ``cum_pre[j] = |{s in S : s < j}|``."""
        if self._cum_pre is None:
            self._cum_pre = cumulative_membership(self.array, self.index.n)
        return self._cum_pre

    @property
    def cum_end(self) -> list[int]:
        """``cum_end[j] = |{s in S : subtree_end[s] < j}|`` (ancestor kernel)."""
        if self._cum_end is None:
            self._cum_end = cumulative_end_membership(
                self.array, self.index.subtree_end, self.index.n
            )
        return self._cum_end

    @property
    def live_mask(self) -> bytearray:
        """0/1 byte mask of the members, for or-self kernel corrections."""
        if self._live_mask is None:
            self._live_mask = membership_mask(self.array, self.index.n)
        return self._live_mask

    @property
    def max_sibling_rank(self) -> dict[int, int]:
        """Per parent id, the maximum sibling rank of a view member under it."""
        if self._max_sibling_rank is None:
            parent = self.index.parent
            rank = self.index.sibling_index
            extrema: dict[int, int] = {}
            for node_id in self.array:
                parent_id = parent[node_id]
                if parent_id >= 0:
                    node_rank = rank[node_id]
                    if extrema.get(parent_id, -1) < node_rank:
                        extrema[parent_id] = node_rank
            self._max_sibling_rank = extrema
        return self._max_sibling_rank

    @property
    def min_sibling_rank(self) -> dict[int, int]:
        """Per parent id, the minimum sibling rank of a view member under it."""
        if self._min_sibling_rank is None:
            parent = self.index.parent
            rank = self.index.sibling_index
            extrema: dict[int, int] = {}
            for node_id in self.array:
                parent_id = parent[node_id]
                if parent_id >= 0:
                    node_rank = rank[node_id]
                    if extrema.get(parent_id, len(rank)) > node_rank:
                        extrema[parent_id] = node_rank
            self._min_sibling_rank = extrema
        return self._min_sibling_rank


class MutableDomainView:
    """A delete-aware candidate set: sorted array with lazy compaction.

    The AC-4 propagation engine (:mod:`repro.evaluation.ac4`) shrinks domains
    one node at a time; rebuilding a :class:`DomainView` per deletion (or per
    revise pass, as AC-3 does) costs O(|S| log |S|) each time.  A
    ``MutableDomainView`` instead supports

    * :meth:`discard` -- O(1) amortized deletion (the sorted array keeps dead
      entries until more than half are dead, then compacts in one O(|S|)
      sweep, so scans pay at most a 2x overhead);
    * :meth:`iter_live_range` -- the live members with ids in ``[lo, hi)``;
    * membership (``in``) and ``len`` against the *live* set.

    It implements the same read protocol as :class:`DomainView` (``array``,
    ``members``, and the lazy aggregates), so
    :meth:`AxisIndex.has_successor_in` / :meth:`AxisIndex.has_predecessor_in`
    accept either: after propagation reaches its fixpoint, the maintained
    views are handed directly to the acyclic enumerator and the backtracking
    forward checker instead of being rebuilt.  Accessing :attr:`array` or an
    aggregate first compacts away dead entries; aggregates are invalidated by
    every deletion and rebuilt on next use.
    """

    __slots__ = (
        "index",
        "members",
        "_array",
        "_dead",
        "_prefix_max_end",
        "_min_end",
        "_max_sibling_rank",
        "_min_sibling_rank",
        "_cum_pre",
        "_cum_end",
        "_live_mask",
    )

    def __init__(self, index: "AxisIndex", nodes: Iterable[int]):
        self.index = index
        self.members: set[int] = set(nodes)
        self._array: array = array(COLUMN_TYPECODE, sorted(self.members))
        self._dead = 0
        self._invalidate()

    def _invalidate(self) -> None:
        self._prefix_max_end: list[int] | None = None
        self._min_end: int | None = None
        self._max_sibling_rank: dict[int, int] | None = None
        self._min_sibling_rank: dict[int, int] | None = None
        self._cum_pre: list[int] | None = None
        self._cum_end: list[int] | None = None
        self._live_mask: bytearray | None = None

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.members

    # -- mutation --------------------------------------------------------------

    def discard(self, node_id: int) -> bool:
        """Remove ``node_id`` from the live set; True iff it was a member."""
        if node_id not in self.members:
            return False
        self.members.discard(node_id)
        self._dead += 1
        self._invalidate()
        if self._dead * 2 >= len(self._array):
            self._compact()
        return True

    def _compact(self) -> None:
        members = self.members
        self._array = array(
            COLUMN_TYPECODE, (node_id for node_id in self._array if node_id in members)
        )
        self._dead = 0

    # -- reads -----------------------------------------------------------------

    @property
    def array(self) -> array:
        """The live members as a sorted column (compacts dead entries first)."""
        if self._dead:
            self._compact()
        return self._array

    @property
    def unpruned_array(self) -> array:
        """The sorted backing array, possibly still containing dead entries.

        For hot scan loops that tolerate (or liveness-check) dead nodes; the
        compaction policy bounds the dead fraction below one half.
        """
        return self._array

    def iter_live_range(self, lo: int, hi: int) -> Iterator[int]:
        """Live members with ids in the half-open range ``[lo, hi)``."""
        array = self._array
        members = self.members
        for position in range(bisect_left(array, lo), bisect_left(array, hi)):
            node_id = array[position]
            if node_id in members:
                yield node_id

    # -- DomainView-protocol aggregates (for post-fixpoint consumers) ----------

    @property
    def prefix_max_end(self) -> list[int]:
        """``prefix_max_end[i] = max(subtree_end[array[j]] for j <= i)``."""
        if self._prefix_max_end is None:
            end = self.index.subtree_end
            self._prefix_max_end = list(accumulate(map(end.__getitem__, self.array), max))
        return self._prefix_max_end

    @property
    def min_end(self) -> int:
        """Minimum ``subtree_end`` over the live members (``n`` when empty)."""
        if self._min_end is None:
            end = self.index.subtree_end
            self._min_end = min(map(end.__getitem__, self.array), default=len(end))
        return self._min_end

    @property
    def cum_pre(self) -> list[int]:
        """Cumulative membership column over the live members (see kernels)."""
        if self._cum_pre is None:
            self._cum_pre = cumulative_membership(self.array, self.index.n)
        return self._cum_pre

    @property
    def cum_end(self) -> list[int]:
        """``cum_end[j] = |{live s : subtree_end[s] < j}|`` (ancestor kernel)."""
        if self._cum_end is None:
            self._cum_end = cumulative_end_membership(
                self.array, self.index.subtree_end, self.index.n
            )
        return self._cum_end

    @property
    def live_mask(self) -> bytearray:
        """0/1 byte mask of the live members, for or-self kernel corrections."""
        if self._live_mask is None:
            self._live_mask = membership_mask(self.array, self.index.n)
        return self._live_mask

    @property
    def max_sibling_rank(self) -> dict[int, int]:
        """Per parent id, the maximum sibling rank of a live member under it."""
        if self._max_sibling_rank is None:
            parent = self.index.parent
            rank = self.index.sibling_index
            extrema: dict[int, int] = {}
            for node_id in self.array:
                parent_id = parent[node_id]
                if parent_id >= 0:
                    node_rank = rank[node_id]
                    if extrema.get(parent_id, -1) < node_rank:
                        extrema[parent_id] = node_rank
            self._max_sibling_rank = extrema
        return self._max_sibling_rank

    @property
    def min_sibling_rank(self) -> dict[int, int]:
        """Per parent id, the minimum sibling rank of a live member under it."""
        if self._min_sibling_rank is None:
            parent = self.index.parent
            rank = self.index.sibling_index
            extrema: dict[int, int] = {}
            for node_id in self.array:
                parent_id = parent[node_id]
                if parent_id >= 0:
                    node_rank = rank[node_id]
                    if extrema.get(parent_id, len(rank)) > node_rank:
                        extrema[parent_id] = node_rank
            self._min_sibling_rank = extrema
        return self._min_sibling_rank

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MutableDomainView(live={len(self.members)}, dead={self._dead})"


# ---------------------------------------------------------------------------
# The index proper.
# ---------------------------------------------------------------------------

#: Axes answered by delegating to the opposite witness of their inverse.
_INVERSE_AXES = frozenset(
    {
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.PREVIOUS_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.PRECEDING,
    }
)


class AxisIndex:
    """Per-tree rank arrays and interval-based axis primitives.

    Construction is O(n); everything is derived from the arrays the
    :class:`~repro.trees.tree.Tree` already carries (node ids *are* pre-order
    ranks, so ``pre`` is the identity).  Use :meth:`view` to wrap a candidate
    set once, then ask :meth:`has_successor_in` / :meth:`has_predecessor_in`
    per node.
    """

    def __init__(self, tree: "Tree"):
        self.tree = tree
        n = len(tree)
        self.n = n
        # Rank arrays are shared with the (immutable) tree, not copied.
        self.pre: list[int] = tree.pre
        self.post: list[int] = tree.post
        self.bflr: list[int] = tree.bflr
        self.parent: list[int] = tree.parent
        self.sibling_index: list[int] = tree.sibling_index
        self.subtree_end: list[int] = tree.subtree_end
        #: ``subtree_end[u] + 1`` precomputed once, so the columnar kernels'
        #: upper-bound lookups run as a single fused ``map`` pipeline.
        self.subtree_end_plus1: list[int] = [end + 1 for end in tree.subtree_end]
        self.first_child: list[int] = [
            children[0] if children else -1 for children in tree.children_of
        ]
        next_sibling = [-1] * n
        prev_sibling = [-1] * n
        for children in tree.children_of:
            for left, right in zip(children, children[1:]):
                next_sibling[left] = right
                prev_sibling[right] = left
        self.next_sibling: list[int] = next_sibling
        self.prev_sibling: list[int] = prev_sibling
        #: Node ids sorted by post-order rank (the inverse permutation of post).
        self.nodes_by_post: list[int] = sorted(range(n), key=self.post.__getitem__)

    # -- per-label sorted node lists ------------------------------------------

    def label_nodes(self, label: str) -> Sequence[int]:
        """Sorted (pre-order) node ids carrying ``label``."""
        return self.tree.nodes_with_label(label)

    # -- O(1) membership from rank arrays -------------------------------------

    def holds(self, axis: Axis, u: int, v: int) -> bool:
        """Membership test ``axis(u, v)`` by rank comparison (O(1))."""
        if axis is Axis.CHILD:
            return self.parent[v] == u
        if axis is Axis.CHILD_PLUS:
            return u < v and self.post[v] < self.post[u]
        if axis is Axis.CHILD_STAR:
            return u == v or (u < v and self.post[v] < self.post[u])
        if axis is Axis.NEXT_SIBLING:
            return (
                self.parent[u] >= 0
                and self.parent[u] == self.parent[v]
                and self.sibling_index[v] == self.sibling_index[u] + 1
            )
        if axis is Axis.NEXT_SIBLING_PLUS:
            return (
                self.parent[u] >= 0
                and self.parent[u] == self.parent[v]
                and self.sibling_index[v] > self.sibling_index[u]
            )
        if axis is Axis.NEXT_SIBLING_STAR:
            return u == v or self.holds(Axis.NEXT_SIBLING_PLUS, u, v)
        if axis is Axis.FOLLOWING:
            return u < v and self.post[u] < self.post[v]
        if axis is Axis.DOCUMENT_ORDER:
            return u < v
        if axis is Axis.SUCC_PRE:
            return v == u + 1
        if axis is Axis.SELF:
            return u == v
        inverse = INVERSE.get(axis)
        if inverse is not None and inverse is not axis:
            return self.holds(inverse, v, u)
        raise NotImplementedError(f"axis not supported by the index: {axis}")

    # -- sorted-array views ----------------------------------------------------

    def view(self, nodes: Iterable[int]) -> DomainView:
        """Wrap a candidate set in a :class:`DomainView` bound to this index."""
        return DomainView(self, nodes)

    def mutable_view(self, nodes: Iterable[int]) -> MutableDomainView:
        """Wrap a candidate set in a delete-aware :class:`MutableDomainView`."""
        return MutableDomainView(self, nodes)

    # -- witness tests ---------------------------------------------------------

    def has_successor_in(self, axis: Axis, u: int, view: DomainView) -> bool:
        """Is there a ``v`` in the view with ``axis(u, v)``?"""
        array = view.array
        if not array:
            return False
        if axis is Axis.CHILD:
            return self._child_witness(u, view)
        if axis is Axis.CHILD_PLUS:
            return range_any(array, u + 1, self.subtree_end[u] + 1)
        if axis is Axis.CHILD_STAR:
            return range_any(array, u, self.subtree_end[u] + 1)
        if axis is Axis.NEXT_SIBLING:
            sibling = self.next_sibling[u]
            return sibling >= 0 and sibling in view.members
        if axis is Axis.NEXT_SIBLING_PLUS:
            parent_id = self.parent[u]
            if parent_id < 0:
                return False
            return view.max_sibling_rank.get(parent_id, -1) > self.sibling_index[u]
        if axis is Axis.NEXT_SIBLING_STAR:
            return u in view.members or self.has_successor_in(Axis.NEXT_SIBLING_PLUS, u, view)
        if axis is Axis.FOLLOWING:
            # Following(u, v) iff v opens after u's subtree closes.
            return array[-1] > self.subtree_end[u]
        if axis is Axis.DOCUMENT_ORDER:
            return array[-1] > u
        if axis is Axis.SUCC_PRE:
            return (u + 1) in view.members
        if axis is Axis.SELF:
            return u in view.members
        if axis in _INVERSE_AXES:
            return self.has_predecessor_in(INVERSE[axis], u, view)
        raise NotImplementedError(f"axis not supported by the index: {axis}")

    def has_predecessor_in(self, axis: Axis, v: int, view: DomainView) -> bool:
        """Is there a ``u`` in the view with ``axis(u, v)``?"""
        array = view.array
        if not array:
            return False
        if axis is Axis.CHILD:
            parent_id = self.parent[v]
            return parent_id >= 0 and parent_id in view.members
        if axis is Axis.CHILD_PLUS:
            return self._ancestor_witness(v, view)
        if axis is Axis.CHILD_STAR:
            return v in view.members or self._ancestor_witness(v, view)
        if axis is Axis.NEXT_SIBLING:
            sibling = self.prev_sibling[v]
            return sibling >= 0 and sibling in view.members
        if axis is Axis.NEXT_SIBLING_PLUS:
            parent_id = self.parent[v]
            if parent_id < 0:
                return False
            return view.min_sibling_rank.get(parent_id, self.n) < self.sibling_index[v]
        if axis is Axis.NEXT_SIBLING_STAR:
            return v in view.members or self.has_predecessor_in(Axis.NEXT_SIBLING_PLUS, v, view)
        if axis is Axis.FOLLOWING:
            # Following(u, v) iff u's subtree closes strictly before v opens.
            return view.min_end < v
        if axis is Axis.DOCUMENT_ORDER:
            return array[0] < v
        if axis is Axis.SUCC_PRE:
            return (v - 1) in view.members
        if axis is Axis.SELF:
            return v in view.members
        if axis in _INVERSE_AXES:
            return self.has_successor_in(INVERSE[axis], v, view)
        raise NotImplementedError(f"axis not supported by the index: {axis}")

    # -- witness enumeration ---------------------------------------------------

    def successors_in(self, axis: Axis, u: int, view: DomainView) -> Iterator[int]:
        """Enumerate the ``v`` in the view with ``axis(u, v)``, ascending.

        The interval axes are contiguous pre-order ranges of the sorted view
        (``Child+``: ``(u, end(u)]``, ``Following``: ``(end(u), n)``, ...), so
        enumeration costs O(log |S| + answers) -- this is what lets the
        decomposition engine materialize its bags in output-proportional time
        instead of |S| membership tests per node.  Local axes walk the tree's
        child/sibling pointer arrays; anything else falls back to scanning the
        view with :meth:`holds`.
        """
        array = view.array
        if not array:
            return
        if axis is Axis.CHILD_PLUS:
            yield from nodes_in_pre_range(array, u + 1, self.subtree_end[u] + 1)
        elif axis is Axis.CHILD_STAR:
            yield from nodes_in_pre_range(array, u, self.subtree_end[u] + 1)
        elif axis is Axis.FOLLOWING:
            yield from array[bisect_left(array, self.subtree_end[u] + 1) :]
        elif axis is Axis.DOCUMENT_ORDER:
            yield from array[bisect_left(array, u + 1) :]
        elif axis is Axis.CHILD:
            members = view.members
            children = self.tree.children_of[u]
            lo = bisect_left(array, u + 1)
            hi = bisect_left(array, self.subtree_end[u] + 1)
            if hi - lo < len(children):
                parent = self.parent
                yield from (array[i] for i in range(lo, hi) if parent[array[i]] == u)
            else:
                yield from (child for child in children if child in members)
        elif axis is Axis.NEXT_SIBLING:
            sibling = self.next_sibling[u]
            if sibling >= 0 and sibling in view.members:
                yield sibling
        elif axis is Axis.NEXT_SIBLING_PLUS or axis is Axis.NEXT_SIBLING_STAR:
            members = view.members
            if axis is Axis.NEXT_SIBLING_STAR and u in members:
                yield u
            sibling = self.next_sibling[u]
            while sibling >= 0:
                if sibling in members:
                    yield sibling
                sibling = self.next_sibling[sibling]
        elif axis is Axis.SUCC_PRE:
            if (u + 1) in view.members:
                yield u + 1
        elif axis is Axis.SELF:
            if u in view.members:
                yield u
        elif axis in _INVERSE_AXES:
            yield from self.predecessors_in(INVERSE[axis], u, view)
        else:
            yield from (v for v in array if self.holds(axis, u, v))

    def predecessors_in(self, axis: Axis, v: int, view: DomainView) -> Iterator[int]:
        """Enumerate the ``u`` in the view with ``axis(u, v)``, ascending.

        ``Child+`` predecessors (ancestors) walk the parent chain, so they
        cost O(depth); ``Following`` predecessors filter the view's prefix
        before ``v`` by ``subtree_end < v`` (the set is not an interval in
        pre-order, so O(prefix) is the honest bound).
        """
        array = view.array
        if not array:
            return
        if axis is Axis.CHILD_PLUS or axis is Axis.CHILD_STAR:
            members = view.members
            ancestors = []
            if axis is Axis.CHILD_STAR and v in members:
                ancestors.append(v)
            node = self.parent[v]
            while node >= 0:
                if node in members:
                    ancestors.append(node)
                node = self.parent[node]
            yield from sorted(ancestors)
        elif axis is Axis.FOLLOWING:
            end = self.subtree_end
            hi = bisect_left(array, v)
            yield from (array[i] for i in range(hi) if end[array[i]] < v)
        elif axis is Axis.DOCUMENT_ORDER:
            yield from array[: bisect_left(array, v)]
        elif axis is Axis.CHILD:
            parent_id = self.parent[v]
            if parent_id >= 0 and parent_id in view.members:
                yield parent_id
        elif axis is Axis.NEXT_SIBLING:
            sibling = self.prev_sibling[v]
            if sibling >= 0 and sibling in view.members:
                yield sibling
        elif axis is Axis.NEXT_SIBLING_PLUS or axis is Axis.NEXT_SIBLING_STAR:
            members = view.members
            earlier = []
            sibling = self.prev_sibling[v]
            while sibling >= 0:
                if sibling in members:
                    earlier.append(sibling)
                sibling = self.prev_sibling[sibling]
            if axis is Axis.NEXT_SIBLING_STAR and v in members:
                earlier.append(v)
            yield from sorted(earlier)
        elif axis is Axis.SUCC_PRE:
            if v - 1 >= 0 and (v - 1) in view.members:
                yield v - 1
        elif axis is Axis.SELF:
            if v in view.members:
                yield v
        elif axis in _INVERSE_AXES:
            yield from self.successors_in(INVERSE[axis], v, view)
        else:
            yield from (u for u in array if self.holds(axis, u, v))

    # -- helpers ---------------------------------------------------------------

    def _child_witness(self, u: int, view: DomainView) -> bool:
        """Does the view contain a child of ``u``?  O(min(deg, |S cap range|))."""
        children = self.tree.children_of[u]
        if not children:
            return False
        array = view.array
        lo = bisect_left(array, children[0])
        hi = bisect_right(array, children[-1])
        if len(children) <= hi - lo:
            members = view.members
            return any(child in members for child in children)
        parent = self.parent
        return any(parent[array[i]] == u for i in range(lo, hi))

    def _ancestor_witness(self, v: int, view: DomainView) -> bool:
        """Does the view contain a strict ancestor of ``v``?  O(log |S|).

        Ancestors of ``v`` are exactly the ``u < v`` whose subtree interval
        ``(u, subtree_end[u]]`` still covers ``v``, so a prefix maximum of
        ``subtree_end`` over the sorted view decides existence.
        """
        position = bisect_left(view.array, v)
        return position > 0 and view.prefix_max_end[position - 1] >= v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AxisIndex(n={self.n})"
