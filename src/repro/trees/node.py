"""Tree nodes for unranked, ordered, multi-labelled trees.

The paper (Section 2) models documents, parse trees etc. as *unranked* trees:
each node may have an unbounded number of children, children are ordered, and
a node may carry several labels.  ``Node`` is the mutable building block used
while constructing a tree; once a :class:`repro.trees.tree.Tree` is built the
node positions (pre-order, post-order, breadth-first order, depth, sibling
index) are frozen and used for O(1) axis tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class Node:
    """A single node of an unranked ordered tree.

    Parameters
    ----------
    labels:
        Iterable of label strings.  Multiple labels are allowed (the paper's
        tractability results support them; the hardness constructions use them
        too, e.g. the Figure 4 data tree).
    children:
        Child nodes in left-to-right order.
    """

    __slots__ = ("labels", "children", "parent", "_index")

    def __init__(self, labels: Iterable[str] = (), children: Iterable["Node"] = ()):
        if isinstance(labels, str):
            labels = (labels,)
        self.labels: frozenset[str] = frozenset(labels)
        self.children: list[Node] = list(children)
        self.parent: Optional[Node] = None
        self._index: Optional[int] = None
        for child in self.children:
            child.parent = self

    # -- construction helpers -------------------------------------------------

    def add_child(self, child: "Node") -> "Node":
        """Append ``child`` as the rightmost child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def add(self, labels: Iterable[str] = ()) -> "Node":
        """Create a new node with ``labels``, append it as a child, return it."""
        return self.add_child(Node(labels))

    # -- inspection -----------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def index(self) -> int:
        """Pre-order index assigned when the owning tree is finalised."""
        if self._index is None:
            raise RuntimeError("node does not belong to a finalised Tree yet")
        return self._index

    def iter_subtree(self) -> Iterator["Node"]:
        """Yield this node and all its descendants in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def label(self) -> Optional[str]:
        """Return the unique label of the node, or ``None`` if unlabelled.

        Raises ``ValueError`` if the node has more than one label; use
        ``labels`` directly for multi-labelled nodes.
        """
        if not self.labels:
            return None
        if len(self.labels) > 1:
            raise ValueError(f"node has multiple labels: {sorted(self.labels)}")
        return next(iter(self.labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ",".join(sorted(self.labels)) or "-"
        return f"Node({labels}, children={len(self.children)})"
