"""Total orders on tree nodes (Section 2) and order-related relations.

The paper works with three total orders on the nodes of an ordered tree:

* ``pre``  -- depth-first left-to-right (document order / opening tags),
* ``post`` -- bottom-up left-to-right (closing tags),
* ``bflr`` -- breadth-first left-to-right.

These orders are the backbone of the X-property framework (Section 3/4): an
axis that has the X-property w.r.t. one of them admits the minimum-valuation
polynomial-time evaluation of Theorem 3.5.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Sequence

from .tree import Tree


class Order(str, Enum):
    """The three total orders considered in the paper."""

    PRE = "pre"
    POST = "post"
    BFLR = "bflr"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ALL_ORDERS: tuple[Order, ...] = (Order.PRE, Order.POST, Order.BFLR)


def rank(tree: Tree, order: Order) -> Sequence[int]:
    """Return ``rank[v]`` = position of node ``v`` in ``order``."""
    if order is Order.PRE:
        return tree.pre
    if order is Order.POST:
        return tree.post
    if order is Order.BFLR:
        return tree.bflr
    raise ValueError(f"unknown order: {order}")


def key_function(tree: Tree, order: Order) -> Callable[[int], int]:
    """A key function usable with ``min``/``sorted`` for the given order."""
    ranks = rank(tree, order)
    return lambda node_id: ranks[node_id]


def less(tree: Tree, order: Order, u: int, v: int) -> bool:
    """``u < v`` in the given order."""
    ranks = rank(tree, order)
    return ranks[u] < ranks[v]


def sorted_nodes(tree: Tree, order: Order) -> list[int]:
    """All node ids sorted ascending by ``order``."""
    ranks = rank(tree, order)
    return sorted(tree.node_ids(), key=lambda node_id: ranks[node_id])


def minimum(tree: Tree, order: Order, nodes: Sequence[int]) -> int:
    """The ``order``-minimal node of a non-empty collection.

    This is the ingredient of the *minimum valuation* of Lemma 3.4.
    """
    if not nodes:
        raise ValueError("minimum() of an empty node collection")
    ranks = rank(tree, order)
    return min(nodes, key=lambda node_id: ranks[node_id])
