"""Relational-structure view of a tree (Section 2).

The paper represents a tree as a relational structure ``A`` with

* domain ``A = |A|`` (the nodes),
* unary relations ``Label_a`` for each label ``a`` of the alphabet,
* binary axis relations taken from ``Ax``.

:class:`TreeStructure` packages a :class:`~repro.trees.tree.Tree` together with
a *signature* (the set of axes allowed to appear in queries) and optional
additional unary relations (e.g. the singleton relations ``X_i = {a_i}`` used
to reduce k-ary query answering to Boolean evaluation, Theorem 3.5's
discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from .axes import AX, Axis, AxisOracle
from .index import AxisIndex, DomainView
from .tree import Tree


@dataclass(frozen=True)
class Signature:
    """A set of axis relations (a ``tau`` of the paper, minus the labels)."""

    axes: frozenset[Axis]

    @classmethod
    def of(cls, *axis_list: Axis) -> "Signature":
        return cls(frozenset(axis_list))

    def __contains__(self, axis: Axis) -> bool:
        return axis in self.axes

    def __iter__(self):
        return iter(sorted(self.axes, key=lambda axis: axis.value))

    def __len__(self) -> int:
        return len(self.axes)

    def union(self, other: "Signature") -> "Signature":
        return Signature(self.axes | other.axes)

    def restricted_to_ax(self) -> "Signature":
        return Signature(self.axes & AX)

    def __str__(self) -> str:
        return "{" + ", ".join(axis.value for axis in self) + "}"


#: The signatures named in the paper (tau_1 ... tau_17 plus full Ax).
TAU: dict[str, Signature] = {
    "tau1": Signature.of(Axis.CHILD_PLUS, Axis.CHILD_STAR),
    "tau2": Signature.of(Axis.FOLLOWING),
    "tau3": Signature.of(
        Axis.CHILD, Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_STAR, Axis.NEXT_SIBLING_PLUS
    ),
    "tau4": Signature.of(Axis.CHILD, Axis.CHILD_PLUS),
    "tau5": Signature.of(Axis.CHILD, Axis.CHILD_STAR),
    "tau6": Signature.of(Axis.CHILD, Axis.FOLLOWING),
    "tau7": Signature.of(Axis.CHILD_PLUS, Axis.FOLLOWING),
    "tau8": Signature.of(Axis.CHILD_STAR, Axis.FOLLOWING),
    "tau9": Signature.of(Axis.CHILD_STAR, Axis.NEXT_SIBLING_PLUS),
    "tau10": Signature.of(Axis.CHILD_STAR, Axis.NEXT_SIBLING),
    "tau11": Signature.of(Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR),
    "tau12": Signature.of(Axis.CHILD_PLUS, Axis.NEXT_SIBLING),
    "tau13": Signature.of(Axis.CHILD_PLUS, Axis.NEXT_SIBLING_PLUS),
    "tau14": Signature.of(Axis.CHILD_PLUS, Axis.NEXT_SIBLING_STAR),
    "tau15": Signature.of(Axis.FOLLOWING, Axis.NEXT_SIBLING),
    "tau16": Signature.of(Axis.FOLLOWING, Axis.NEXT_SIBLING_PLUS),
    "tau17": Signature.of(Axis.FOLLOWING, Axis.NEXT_SIBLING_STAR),
    "ax": Signature(AX),
}


class TreeStructure:
    """A tree together with its relational signature and extra unary relations.

    Parameters
    ----------
    tree:
        The underlying finalised tree.
    signature:
        Axis relations available to queries.  Defaults to the full ``Ax``.
    extra_unary:
        Additional unary relations beyond the labels, given as a mapping from
        relation name to a collection of node ids.  Names must not clash with
        tree labels.
    """

    def __init__(
        self,
        tree: Tree,
        signature: Optional[Signature] = None,
        extra_unary: Optional[Mapping[str, Iterable[int]]] = None,
    ):
        self.tree = tree
        self.signature = signature if signature is not None else Signature(AX)
        self.oracle = AxisOracle(tree)
        self._extra_unary: dict[str, frozenset[int]] = {}
        self._unary_sets: dict[str, frozenset[int]] = {}
        if extra_unary:
            for name, members in extra_unary.items():
                self.add_unary(name, members)

    # -- unary relations -------------------------------------------------------

    def add_unary(self, name: str, members: Iterable[int]) -> None:
        """Register an extra unary relation (e.g. a singleton ``X_i``)."""
        member_set = frozenset(members)
        for node_id in member_set:
            if not (0 <= node_id < len(self.tree)):
                raise ValueError(f"node id {node_id} outside the domain")
        self._extra_unary[name] = member_set
        self._unary_sets.pop(name, None)

    def with_singletons(self, assignment: Mapping[str, int]) -> "TreeStructure":
        """Return a copy with fresh singleton unary relations.

        This is the construction used to reduce answering a k-ary query to a
        Boolean query (discussion after Theorem 3.5): for each pinned variable
        we add a relation holding exactly one node.
        """
        copy = TreeStructure(self.tree, self.signature, None)
        copy._extra_unary = dict(self._extra_unary)
        copy._unary_sets = dict(self._unary_sets)
        for name, node_id in assignment.items():
            copy.add_unary(name, (node_id,))
        return copy

    def unary_members(self, name: str) -> Sequence[int]:
        """All nodes in the unary relation ``name`` (label or extra relation)."""
        if name in self._extra_unary:
            return sorted(self._extra_unary[name])
        return self.tree.nodes_with_label(name)

    def unary_member_set(self, name: str) -> frozenset[int]:
        """The unary relation ``name`` as a resident frozenset (memoized).

        This is the initial-domain artifact the serving layer keeps warm: the
        per-label candidate sets every evaluation starts from.  Memoizing them
        on the structure means repeated queries over a resident document never
        rebuild them; :meth:`with_singletons` copies share the memo for
        relations the pinning does not shadow.
        """
        cached = self._unary_sets.get(name)
        if cached is None:
            if name in self._extra_unary:
                cached = self._extra_unary[name]
            else:
                cached = frozenset(self.tree.nodes_with_label(name))
                if not cached:
                    # Unknown names are client-controlled (query labels that do
                    # not occur in the tree); never memoize them, or a resident
                    # structure's cache would grow unboundedly under adversarial
                    # traffic.  The empty set is trivial to recompute anyway.
                    return cached
            self._unary_sets[name] = cached
        return cached

    def unary_holds(self, name: str, node_id: int) -> bool:
        if name in self._extra_unary:
            return node_id in self._extra_unary[name]
        return self.tree.has_label(node_id, name)

    def unary_names(self) -> frozenset[str]:
        return self.tree.alphabet() | frozenset(self._extra_unary)

    def extra_unary_relations(self) -> Mapping[str, frozenset[int]]:
        """The extra (non-label) unary relations, name -> member set.

        These shadow same-named tree labels (matching :meth:`unary_holds`);
        out-of-core backends need them explicitly because only the labels are
        materialised in the accel store.
        """
        return dict(self._extra_unary)

    # -- binary relations ------------------------------------------------------

    def axis_holds(self, axis: Axis, u: int, v: int) -> bool:
        return self.oracle.holds(axis, u, v)

    def axis_successors(self, axis: Axis, u: int) -> Sequence[int]:
        return self.oracle.successors(axis, u)

    def axis_predecessors(self, axis: Axis, v: int) -> Sequence[int]:
        return self.oracle.predecessors(axis, v)

    # -- interval index --------------------------------------------------------

    @property
    def index(self) -> AxisIndex:
        """The tree's lazily built pre/post interval index (shared per tree)."""
        return self.tree.index

    def domain_view(self, nodes: Iterable[int]) -> DomainView:
        """Wrap a candidate node set in a sorted-array view for witness tests."""
        return self.tree.index.view(nodes)

    def axis_has_successor_in(self, axis: Axis, u: int, view: DomainView) -> bool:
        """Does ``u`` have an ``axis`` successor inside the viewed set?"""
        return self.tree.index.has_successor_in(axis, u, view)

    def axis_has_predecessor_in(self, axis: Axis, v: int, view: DomainView) -> bool:
        """Does ``v`` have an ``axis`` predecessor inside the viewed set?"""
        return self.tree.index.has_predecessor_in(axis, v, view)

    # -- sizes -----------------------------------------------------------------

    @property
    def domain_size(self) -> int:
        return len(self.tree)

    def domain(self) -> range:
        return self.tree.node_ids()

    def size(self) -> int:
        """``||A||`` -- structure size under a reasonable encoding."""
        extra = sum(len(members) for members in self._extra_unary.values())
        return self.tree.structure_size() + extra

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeStructure(n={len(self.tree)}, signature={self.signature})"


def structure(tree: Tree, *axis_list: Axis) -> TreeStructure:
    """Convenience constructor: ``structure(tree, Axis.CHILD, Axis.FOLLOWING)``."""
    signature = Signature(frozenset(axis_list)) if axis_list else None
    return TreeStructure(tree, signature)
