"""The :class:`Tree` class: a finalised unranked ordered labelled tree.

A ``Tree`` freezes a root :class:`~repro.trees.node.Node` and precomputes, for
every node, the numberings the paper uses throughout:

* ``pre``  -- the pre-order (document order, sequence of opening tags),
* ``post`` -- the post-order (sequence of closing tags),
* ``bflr`` -- breadth-first left-to-right order,
* ``depth``, ``parent``, ``sibling index``.

Nodes are identified by their pre-order index (an ``int`` in ``range(n)``),
which is what evaluation algorithms operate on.  All axis relations of the
paper are answered in O(1) per pair from these numberings (see
:mod:`repro.trees.axes`).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from .node import Node


class Tree:
    """An immutable view of a finalised tree.

    Node identity: after construction every node is referred to by its
    pre-order index (0 = root).  The original :class:`Node` objects remain
    reachable through :attr:`nodes`.
    """

    def __init__(self, root: Node):
        self.root = root
        self._index = None
        self.nodes: list[Node] = []
        self.parent: list[int] = []
        self.depth: list[int] = []
        self.children_of: list[list[int]] = []
        self.sibling_index: list[int] = []
        self.pre: list[int] = []
        self.post: list[int] = []
        self.bflr: list[int] = []
        self.labels_of: list[frozenset[str]] = []
        self._finalise()

    # -- construction ----------------------------------------------------------

    def _finalise(self) -> None:
        # Pre-order traversal assigns identities.
        order: list[Node] = []
        stack: list[tuple[Node, Optional[int], int, int]] = [(self.root, None, 0, 0)]
        # Iterative pre-order keeping parent ids, depth and sibling index.
        # We need parents processed before children, so a stack of
        # (node, parent_id, depth, sibling_index) works if we push children in
        # reverse order.
        while stack:
            node, parent_id, depth, sib = stack.pop()
            node_id = len(order)
            node._index = node_id
            order.append(node)
            self.parent.append(parent_id if parent_id is not None else -1)
            self.depth.append(depth)
            self.sibling_index.append(sib)
            self.children_of.append([])
            self.labels_of.append(node.labels)
            if parent_id is not None:
                self.children_of[parent_id].append(node_id)
            for child_sib, child in reversed(list(enumerate(node.children))):
                stack.append((child, node_id, depth + 1, child_sib))
        self.nodes = order
        n = len(order)
        self.pre = list(range(n))

        # Post-order numbering.
        self.post = [0] * n
        counter = 0
        visit: list[tuple[int, bool]] = [(0, False)]
        while visit:
            node_id, expanded = visit.pop()
            if expanded:
                self.post[node_id] = counter
                counter += 1
                continue
            visit.append((node_id, True))
            for child in reversed(self.children_of[node_id]):
                visit.append((child, False))

        # Breadth-first left-to-right numbering.
        self.bflr = [0] * n
        queue = [0]
        counter = 0
        while queue:
            next_queue: list[int] = []
            for node_id in queue:
                self.bflr[node_id] = counter
                counter += 1
                next_queue.extend(self.children_of[node_id])
            queue = next_queue

        # Subtree extent in pre-order: descendants of v are exactly the ids in
        # (v, subtree_end[v]].  Used for fast descendant enumeration.
        self.subtree_end = [0] * n
        for node_id in range(n - 1, -1, -1):
            end = node_id
            for child in self.children_of[node_id]:
                end = max(end, self.subtree_end[child])
            self.subtree_end[node_id] = end

        # Label index: label -> sorted list of node ids.
        self._label_index: dict[str, list[int]] = {}
        for node_id, labels in enumerate(self.labels_of):
            for label in labels:
                self._label_index.setdefault(label, []).append(node_id)

    # -- basic accessors -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def size(self) -> int:
        """Number of nodes (the paper's |A|)."""
        return len(self.nodes)

    def node_ids(self) -> range:
        return range(len(self.nodes))

    def labels(self, node_id: int) -> frozenset[str]:
        return self.labels_of[node_id]

    def has_label(self, node_id: int, label: str) -> bool:
        return label in self.labels_of[node_id]

    def nodes_with_label(self, label: str) -> Sequence[int]:
        """All node ids carrying ``label`` (ascending pre-order)."""
        return self._label_index.get(label, [])

    def alphabet(self) -> frozenset[str]:
        """The labelling alphabet actually used in this tree."""
        return frozenset(self._label_index)

    def children(self, node_id: int) -> Sequence[int]:
        return self.children_of[node_id]

    def parent_of(self, node_id: int) -> Optional[int]:
        parent = self.parent[node_id]
        return None if parent < 0 else parent

    def descendants(self, node_id: int) -> range:
        """Strict descendants of ``node_id`` as a range of pre-order ids."""
        return range(node_id + 1, self.subtree_end[node_id] + 1)

    def is_descendant(self, ancestor: int, descendant: int) -> bool:
        """True iff ``descendant`` is a *strict* descendant of ``ancestor``."""
        return ancestor < descendant <= self.subtree_end[ancestor]

    def next_sibling(self, node_id: int) -> Optional[int]:
        parent = self.parent[node_id]
        if parent < 0:
            return None
        siblings = self.children_of[parent]
        index = self.sibling_index[node_id]
        if index + 1 < len(siblings):
            return siblings[index + 1]
        return None

    def siblings_after(self, node_id: int) -> Sequence[int]:
        parent = self.parent[node_id]
        if parent < 0:
            return []
        siblings = self.children_of[parent]
        return siblings[self.sibling_index[node_id] + 1:]

    def following(self, node_id: int) -> Iterator[int]:
        """All nodes y with Following(node_id, y), ascending in pre-order."""
        post = self.post
        for other in range(self.subtree_end[node_id] + 1, len(self.nodes)):
            if post[other] > post[node_id]:
                yield other

    # -- interval index --------------------------------------------------------

    @property
    def index(self):
        """The lazily built :class:`~repro.trees.index.AxisIndex` of this tree.

        Built on first access and shared by every :class:`TreeStructure`
        wrapping this tree; the tree is immutable, so the index never needs
        invalidation.
        """
        if self._index is None:
            from .index import AxisIndex

            self._index = AxisIndex(self)
        return self._index

    # -- convenience -----------------------------------------------------------

    def path_to_root(self, node_id: int) -> list[int]:
        path = [node_id]
        while self.parent[path[-1]] >= 0:
            path.append(self.parent[path[-1]])
        return path

    def structure_size(self) -> int:
        """A reasonable ``||A||``: nodes + edges + label occurrences."""
        edges = len(self.nodes) - 1
        label_occurrences = sum(len(labels) for labels in self.labels_of)
        return len(self.nodes) + edges + label_occurrences

    def to_nested(self) -> object:
        """Serialise to the nested-tuple format understood by ``from_nested``."""

        def rec(node_id: int) -> object:
            labels = sorted(self.labels_of[node_id])
            label: object = labels[0] if len(labels) == 1 else tuple(labels)
            kids = [rec(child) for child in self.children_of[node_id]]
            return (label, kids) if kids else (label, [])

        return rec(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(n={len(self.nodes)}, alphabet={sorted(self.alphabet())})"


def tree_from_node(root: Node) -> Tree:
    """Finalise a node-built tree."""
    return Tree(root)
