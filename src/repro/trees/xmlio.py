"""A small XML reader/writer for trees.

XML documents are one of the motivating applications (Section 1).  This module
converts a (namespace-free, attribute-light) XML document into a
:class:`~repro.trees.tree.Tree` and back:

* element tags become node labels,
* attributes become children labelled ``@name`` with a single child labelled
  with the attribute value (mirroring the paper's remark that typed child axes
  such as ``attribute`` are redundant with ``Child`` plus unary relations),
* text content is ignored (conjunctive queries over trees are label/structure
  queries).

It deliberately relies only on the standard library.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from .node import Node
from .tree import Tree


class XMLParseError(ValueError):
    """Raised when a document is not well-formed XML.

    Wraps :class:`xml.etree.ElementTree.ParseError` so callers (the CLI and
    the serving layer's document registration) can surface one stable
    exception type -- and a useful message with line/column -- instead of
    leaking the stdlib parser's internals.
    """


def from_xml(text: str, include_attributes: bool = True) -> Tree:
    """Parse an XML string into a :class:`Tree`."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as error:
        raise XMLParseError(f"not well-formed XML: {error}") from error
    return Tree(_convert(element, include_attributes))


def from_xml_file(path: str, include_attributes: bool = True) -> Tree:
    """Parse an XML file into a :class:`Tree`."""
    try:
        element = ET.parse(path).getroot()
    except ET.ParseError as error:
        raise XMLParseError(f"{path}: not well-formed XML: {error}") from error
    return Tree(_convert(element, include_attributes))


def to_xml(tree: Tree) -> str:
    """Serialise a tree to XML.

    Multi-labelled nodes are emitted with the lexicographically first label as
    tag and the remaining labels in a ``labels`` attribute; unlabelled nodes
    use the tag ``node``.
    """

    def rec(node_id: int) -> ET.Element:
        labels = sorted(tree.labels_of[node_id])
        tag = labels[0] if labels else "node"
        element = ET.Element(_sanitise(tag))
        if len(labels) > 1:
            element.set("labels", " ".join(labels))
        for child in tree.children(node_id):
            element.append(rec(child))
        return element

    return ET.tostring(rec(0), encoding="unicode")


def _convert(element: ET.Element, include_attributes: bool) -> Node:
    node = Node((element.tag,))
    if include_attributes:
        for name, value in sorted(element.attrib.items()):
            attribute_node = node.add((f"@{name}",))
            attribute_node.add((value,))
    for child in element:
        node.add_child(_convert(child, include_attributes))
    return node


def _sanitise(tag: str) -> str:
    """Make a label usable as an XML tag."""
    cleaned = "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in tag)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "n_" + cleaned
    return cleaned
