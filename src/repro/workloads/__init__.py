"""Application workloads: linguistics corpora, XML documents, dominance constraints."""

from .dominance import (
    DominanceParseError,
    is_satisfiable_over,
    parse_dominance_constraints,
    solved_forms,
)
from .linguistics import (
    PHRASE_LABELS,
    WORD_LABELS,
    coordinated_sentences_query,
    figure1_query,
    np_with_pp_modifier_query,
    random_corpus,
    random_sentence_tree,
    verb_with_object_query,
)
from .xmlgen import (
    auction_document,
    busy_auction_query,
    described_items_query,
    items_with_payment_query,
)

__all__ = [
    "DominanceParseError",
    "PHRASE_LABELS",
    "WORD_LABELS",
    "auction_document",
    "busy_auction_query",
    "coordinated_sentences_query",
    "described_items_query",
    "figure1_query",
    "is_satisfiable_over",
    "items_with_payment_query",
    "np_with_pp_modifier_query",
    "parse_dominance_constraints",
    "random_corpus",
    "random_sentence_tree",
    "solved_forms",
    "verb_with_object_query",
]
