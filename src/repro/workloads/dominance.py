"""Dominance constraints (Section 1's computational-linguistics application).

A *dominance constraint* is a conjunction of atoms over node variables of the
forms ``x <* y`` ("x dominates y", i.e. ``Child*(x, y)``) and label atoms; the
paper observes these are exactly the Boolean conjunctive queries over trees
and that rewriting them into *solved forms* corresponds to producing acyclic
queries.

This module provides a tiny textual syntax for dominance constraints, their
translation into Boolean conjunctive queries, a satisfiability check against a
given (or generated) tree, and a "solved form" computation that reuses the
Section 6 rewriting (an APQ whose disjuncts are the solved forms).
"""

from __future__ import annotations

import re
from typing import Iterable

from ..queries.apq import UnionQuery
from ..queries.atoms import AxisAtom, LabelAtom
from ..queries.query import ConjunctiveQuery
from ..rewriting.to_apq import to_apq
from ..trees.axes import Axis

#: Textual operators of the constraint language -> axes.
_OPERATORS: dict[str, Axis] = {
    "<*": Axis.CHILD_STAR,   # dominance (reflexive)
    "<+": Axis.CHILD_PLUS,   # proper dominance
    "<":  Axis.CHILD,        # immediate dominance
    "<<": Axis.FOLLOWING,    # precedence (disjoint subtrees)
}

_CONSTRAINT = re.compile(
    r"^\s*(?P<left>\w+)\s*(?P<op><\*|<\+|<<|<)\s*(?P<right>\w+)\s*$"
)
_LABELLING = re.compile(r"^\s*(?P<variable>\w+)\s*:\s*(?P<label>\w+)\s*$")


class DominanceParseError(ValueError):
    """Raised when a constraint line cannot be parsed."""


def parse_dominance_constraints(
    lines: Iterable[str] | str, name: str = "Dominance"
) -> ConjunctiveQuery:
    """Parse a dominance constraint set into a Boolean conjunctive query.

    Each line is either a binary constraint ``x <* y`` / ``x <+ y`` / ``x < y``
    / ``x << y`` or a labelling ``x : Label``.  Blank lines and ``#`` comments
    are ignored.
    """
    if isinstance(lines, str):
        lines = lines.splitlines()
    atoms: list = []
    for raw_line in lines:
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        constraint = _CONSTRAINT.match(line)
        if constraint:
            axis = _OPERATORS[constraint.group("op")]
            atoms.append(
                AxisAtom(axis, constraint.group("left"), constraint.group("right"))
            )
            continue
        labelling = _LABELLING.match(line)
        if labelling:
            atoms.append(
                LabelAtom(labelling.group("label"), labelling.group("variable"))
            )
            continue
        raise DominanceParseError(f"cannot parse constraint line: {raw_line!r}")
    return ConjunctiveQuery((), tuple(atoms), name)


def solved_forms(constraints: ConjunctiveQuery) -> UnionQuery:
    """Solved forms of a dominance constraint set.

    Following the paper's observation that solved forms correspond to acyclic
    queries, we return the APQ produced by the Section 6 rewriting: each
    disjunct is an acyclic ("solved") constraint set, and the union is
    equivalent to the input.  The empty union means the constraints are
    unsatisfiable over trees.
    """
    return to_apq(constraints)


def is_satisfiable_over(constraints: ConjunctiveQuery, tree) -> bool:
    """Can the constraint set be embedded into the given tree?"""
    from ..evaluation.planner import evaluate_on_tree

    return bool(evaluate_on_tree(constraints, tree))
