"""Synthetic Penn-Treebank-style linguistic workload (Section 1, Figure 1).

The paper motivates conjunctive queries over trees with searches over parsed
natural-language corpora such as the Penn Treebank [LDC 1999].  The Treebank
itself is proprietary, so this module generates synthetic parse trees with the
same label inventory (S, NP, VP, PP, ...) and fan-out/depth characteristics,
plus the queries the paper mentions:

* :func:`figure1_query` -- the Figure 1 query "prepositional phrases following
  noun phrases in the same sentence",
* :func:`np_with_pp_modifier_query`, :func:`verb_with_object_query` -- further
  linguistically flavoured queries used by the examples and benchmarks,
* :func:`random_sentence_tree` / :func:`random_corpus` -- the corpus generator.
"""

from __future__ import annotations

import random
from typing import Optional

from ..queries.query import ConjunctiveQuery, QueryBuilder
from ..trees.node import Node
from ..trees.tree import Tree

#: Phrase-level and word-level labels (a compact Penn-Treebank-like tagset).
PHRASE_LABELS = ("S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP")
WORD_LABELS = ("DT", "NN", "NNS", "VB", "VBD", "IN", "JJ", "RB", "PRP", "CC")


def figure1_query() -> ConjunctiveQuery:
    """The Figure 1 query.

    ``Q(z) <- S(x), Descendant(x, y), NP(y), Descendant(x, z), PP(z),
    Following(y, z)`` -- prepositional phrases following noun phrases within
    the same sentence.
    """
    return (
        QueryBuilder("Figure1")
        .label("S", "x")
        .descendant("x", "y")
        .label("NP", "y")
        .descendant("x", "z")
        .label("PP", "z")
        .following("y", "z")
        .select("z")
        .build()
    )


def np_with_pp_modifier_query() -> ConjunctiveQuery:
    """Noun phrases that directly dominate a prepositional phrase."""
    return (
        QueryBuilder("NPwithPP")
        .label("NP", "np")
        .child("np", "pp")
        .label("PP", "pp")
        .select("np")
        .build()
    )


def verb_with_object_query() -> ConjunctiveQuery:
    """Verbs whose VP parent also dominates a following NP (a direct object)."""
    return (
        QueryBuilder("VerbObject")
        .label("VP", "vp")
        .child("vp", "v")
        .label("VB", "v")
        .child("vp", "np")
        .label("NP", "np")
        .following("v", "np")
        .select("v")
        .build()
    )


def coordinated_sentences_query() -> ConjunctiveQuery:
    """Sentences containing a coordination (CC) with NPs on both sides.

    This query is *cyclic* (the two NPs and the sentence variable form an
    undirected cycle with the Following atoms), making it a natural showcase
    for the CQ -> APQ rewriting on linguistic data.
    """
    return (
        QueryBuilder("Coordination")
        .label("S", "s")
        .descendant("s", "left")
        .label("NP", "left")
        .descendant("s", "cc")
        .label("CC", "cc")
        .descendant("s", "right")
        .label("NP", "right")
        .following("left", "cc")
        .following("cc", "right")
        .select("s")
        .build()
    )


def random_sentence_tree(
    max_depth: int = 5,
    max_children: int = 4,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Tree:
    """One random parse tree rooted at an ``S`` node."""
    rng = rng or random.Random(seed)

    def expand(label: str, depth: int) -> Node:
        node = Node((label,))
        if depth >= max_depth or label in WORD_LABELS:
            return node
        fanout = rng.randint(1, max_children)
        for _ in range(fanout):
            if depth + 1 >= max_depth - 1 or rng.random() < 0.35:
                child_label = rng.choice(WORD_LABELS)
            else:
                child_label = rng.choice(PHRASE_LABELS[1:])
            node.add_child(expand(child_label, depth + 1))
        return node

    return Tree(expand("S", 0))


def random_corpus(
    num_sentences: int,
    max_depth: int = 5,
    seed: Optional[int] = None,
) -> Tree:
    """A corpus: a ``CORPUS`` root with ``num_sentences`` parse trees below it."""
    rng = random.Random(seed)
    root = Node(("CORPUS",))
    for _ in range(num_sentences):
        sentence = random_sentence_tree(max_depth=max_depth, rng=rng)
        root.add_child(_reroot(sentence))
    return Tree(root)


def _reroot(tree: Tree) -> Node:
    """Rebuild a finalised tree as a fresh Node subtree (for corpus assembly)."""

    def rec(node_id: int) -> Node:
        node = Node(tree.labels_of[node_id])
        for child in tree.children(node_id):
            node.add_child(rec(child))
        return node

    return rec(0)
