"""Synthetic XML document workload (the data-extraction / XQuery motivation).

Generates auction-site-like XML documents reminiscent of the XMark benchmark
(regions, items, people, bids) -- entirely synthetic, standard-library only --
and the navigational queries the paper's introduction associates with XML:
XPath-style acyclic queries plus a cyclic "join" query that needs the full
conjunctive-query machinery.
"""

from __future__ import annotations

import random
from typing import Optional

from ..queries.query import ConjunctiveQuery, QueryBuilder
from ..trees.node import Node
from ..trees.tree import Tree

REGIONS = ("africa", "asia", "europe", "namerica", "samerica")


def auction_document(
    num_items: int = 20,
    num_people: int = 10,
    num_bids: int = 30,
    seed: Optional[int] = None,
) -> Tree:
    """A synthetic auction document.

    Structure::

        site
          regions
            <region>        (one of REGIONS)
              item*
                name, payment?, description
                  parlist?
                    listitem*
          people
            person*
              name, profile?
                interest*
          open_auctions
            open_auction*
              bidder*
                increase
              itemref, seller
    """
    rng = random.Random(seed)
    site = Node(("site",))

    regions = site.add(("regions",))
    region_nodes = [regions.add((region,)) for region in REGIONS]
    for index in range(num_items):
        region = rng.choice(region_nodes)
        item = region.add(("item",))
        item.add(("name",))
        if rng.random() < 0.5:
            item.add(("payment",))
        description = item.add(("description",))
        if rng.random() < 0.6:
            parlist = description.add(("parlist",))
            for _ in range(rng.randint(1, 3)):
                parlist.add(("listitem",))

    people = site.add(("people",))
    for _ in range(num_people):
        person = people.add(("person",))
        person.add(("name",))
        if rng.random() < 0.7:
            profile = person.add(("profile",))
            for _ in range(rng.randint(0, 3)):
                profile.add(("interest",))

    auctions = site.add(("open_auctions",))
    for _ in range(num_bids):
        auction = auctions.add(("open_auction",))
        for _ in range(rng.randint(0, 4)):
            bidder = auction.add(("bidder",))
            bidder.add(("increase",))
        auction.add(("itemref",))
        auction.add(("seller",))

    return Tree(site)


def items_with_payment_query() -> ConjunctiveQuery:
    """XPath-like: items that offer a payment element (acyclic, monadic)."""
    return (
        QueryBuilder("ItemsWithPayment")
        .label("item", "item")
        .child("item", "payment")
        .label("payment", "payment")
        .select("item")
        .build()
    )


def described_items_query() -> ConjunctiveQuery:
    """Items whose description contains a list item somewhere below."""
    return (
        QueryBuilder("DescribedItems")
        .label("item", "item")
        .child("item", "description")
        .label("description", "description")
        .descendant("description", "entry")
        .label("listitem", "entry")
        .select("item")
        .build()
    )


def busy_auction_query() -> ConjunctiveQuery:
    """Open auctions with two bidders, one following the other (cyclic join).

    The two bidder variables, their shared auction ancestor and the Following
    atom form an undirected cycle, so the query exercises the rewriting /
    generic evaluation machinery rather than plain XPath navigation.
    """
    return (
        QueryBuilder("BusyAuction")
        .label("open_auction", "auction")
        .child("auction", "first")
        .label("bidder", "first")
        .child("auction", "second")
        .label("bidder", "second")
        .following("first", "second")
        .select("auction")
        .build()
    )
