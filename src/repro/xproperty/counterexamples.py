"""The counterexamples of Example 4.5 / Figure 3.

The inclusions between axes and node orders listed at the start of Section 4
do *not* all extend to the X-property.  Figure 3 exhibits two witnesses:

* (a) ``Following`` does **not** have the X-property with respect to ``<pre``:
  on a 6-node tree there are crossing arcs ``Following(2, 6)`` and
  ``Following(3, 4)`` (paper numbering) whose underbar ``Following(2, 4)`` is
  missing.
* (b) ``Descendant^-1`` (and ``Descendant-or-self^-1``) do **not** have the
  X-property with respect to ``<post``: on a 5-node tree,
  ``Descendant^-1(1, 5)`` and ``Descendant^-1(3, 4)`` hold but
  ``Descendant^-1(1, 4)`` does not.

The functions below build exactly these trees and return the violation found
by the generic checker, so that the figure can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..trees.axes import Axis
from ..trees.builders import from_nested
from ..trees.orders import Order
from ..trees.tree import Tree
from .definition import XPropertyViolation, find_axis_violation


@dataclass(frozen=True)
class Counterexample:
    """A tree, the axis/order pair, and the violation it witnesses."""

    description: str
    tree: Tree
    axis: Axis
    order: Order
    violation: Optional[XPropertyViolation]

    @property
    def confirms_failure(self) -> bool:
        """True when the X-property indeed fails on this witness."""
        return self.violation is not None


def figure3a_tree() -> Tree:
    """The 6-node tree of Figure 3(a).

    Pre-order ids (0-based) correspond to the paper's node numbers minus one:
    the root (1) has children 2 and 5; node 2 has children 3 and 4; node 5 has
    child 6.
    """
    return from_nested(("r", [("a", [("b", []), ("c", [])]), ("d", [("e", [])])]))


def figure3a() -> Counterexample:
    """Following does not have the X-property w.r.t. the pre-order."""
    tree = figure3a_tree()
    violation = find_axis_violation(tree, Axis.FOLLOWING, Order.PRE)
    return Counterexample(
        description=(
            "Following(2,6) and Following(3,4) hold with 2 <pre 3 and 4 <pre 6, "
            "but Following(2,4) does not (paper numbering)"
        ),
        tree=tree,
        axis=Axis.FOLLOWING,
        order=Order.PRE,
        violation=violation,
    )


def figure3b_tree() -> Tree:
    """The 5-node tree of Figure 3(b).

    The root has two children; each child has one leaf child.  Post-order
    numbers (1-based) are: left leaf 1, left child 2, right leaf 3, right
    child 4, root 5.
    """
    return from_nested(("r", [("a", [("b", [])]), ("c", [("d", [])])]))


def figure3b(axis: Axis = Axis.ANCESTOR) -> Counterexample:
    """Descendant^-1 (= Ancestor) lacks the X-property w.r.t. the post-order.

    Pass ``Axis.ANCESTOR_OR_SELF`` to confirm the same for
    Descendant-or-self^-1.
    """
    if axis not in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        raise ValueError("figure3b concerns the inverse descendant axes")
    tree = figure3b_tree()
    violation = find_axis_violation(tree, axis, Order.POST)
    return Counterexample(
        description=(
            "Descendant^-1(1,5) and Descendant^-1(3,4) hold with 1 <post 3 and "
            "4 <post 5, but Descendant^-1(1,4) does not (paper numbering)"
        ),
        tree=tree,
        axis=axis,
        order=Order.POST,
        violation=violation,
    )


def all_counterexamples() -> list[Counterexample]:
    """Both counterexamples of Figure 3 (plus the or-self variant of (b))."""
    return [figure3a(), figure3b(Axis.ANCESTOR), figure3b(Axis.ANCESTOR_OR_SELF)]
