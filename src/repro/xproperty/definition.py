"""The X-property (Definition 3.2) and its specialised characterisations.

A binary relation R has the X-property with respect to a total order ``<`` iff
for all nodes ``n0 < n1`` and ``n2 < n3``::

    R(n1, n2) and R(n0, n3)  ==>  R(n0, n2)

(the "underbar" of two crossing arcs must be present).  Lemma 3.6 gives an
equivalent condition for relations contained in ``<=`` (and Lemma 3.7 the
symmetric condition for relations contained in ``>=``), which only needs to be
checked for ``n0 < n1 <= n2 < n3``.

The checkers below work on explicit relations (sets of pairs) or on axes of a
concrete tree; they are used to *verify Theorem 4.1 mechanically* on arbitrary
trees and to demonstrate the counterexamples of Example 4.5 / Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..trees.axes import Axis, materialise
from ..trees.orders import Order, rank
from ..trees.tree import Tree

Pair = tuple[int, int]


@dataclass(frozen=True)
class XPropertyViolation:
    """A witness that the X-property fails: the crossing arcs and missing arc."""

    n0: int
    n1: int
    n2: int
    n3: int
    missing: Pair

    def __str__(self) -> str:
        return (
            f"R({self.n1}, {self.n2}) and R({self.n0}, {self.n3}) hold with "
            f"{self.n0} < {self.n1} and {self.n2} < {self.n3}, but "
            f"R{self.missing} does not hold"
        )


def find_violation(
    relation: Iterable[Pair], order_rank: Sequence[int] | dict[int, int]
) -> Optional[XPropertyViolation]:
    """Search for an X-property violation of an explicit relation.

    ``order_rank`` maps each element to its position in the total order.
    The search is quadratic in the number of arcs: every pair of arcs
    ``(n1, n2)`` and ``(n0, n3)`` with ``n0 < n1`` and ``n2 < n3`` must be
    covered by the arc ``(n0, n2)``.
    """
    arcs = list(relation)
    arc_set = set(arcs)

    def position(node: int) -> int:
        return order_rank[node]

    for n1, n2 in arcs:
        for n0, n3 in arcs:
            if position(n0) < position(n1) and position(n2) < position(n3):
                if (n0, n2) not in arc_set:
                    return XPropertyViolation(n0, n1, n2, n3, (n0, n2))
    return None


def has_x_property_relation(
    relation: Iterable[Pair], order_rank: Sequence[int] | dict[int, int]
) -> bool:
    """Definition 3.2 for an explicit relation."""
    return find_violation(relation, order_rank) is None


def find_axis_violation(
    tree: Tree, axis: Axis, order: Order
) -> Optional[XPropertyViolation]:
    """Search for an X-property violation of an axis on a concrete tree."""
    return find_violation(materialise(tree, axis), rank(tree, order))


def has_x_property(tree: Tree, axis: Axis, order: Order) -> bool:
    """Does ``axis`` have the X-property w.r.t. ``order`` on this tree?

    Theorem 4.1 states this holds *for every tree* for the pairs
    (Child+, pre), (Child*, pre), (Following, post) and
    (Child / NextSibling / NextSibling* / NextSibling+, bflr); the checker lets
    tests confirm it on arbitrary sampled trees and exhibits counterexamples
    for the other pairs (Example 4.5).
    """
    return find_axis_violation(tree, axis, order) is None


def find_violation_lemma36(
    relation: Iterable[Pair], order_rank: Sequence[int] | dict[int, int]
) -> Optional[XPropertyViolation]:
    """The restricted check of Lemma 3.6, valid when R is a subset of ``<=``.

    Only quadruples with ``n0 < n1 <= n2 < n3`` need to be inspected.  The
    function does not verify the ``R subseteq <=`` precondition; callers that
    need it should check separately (see :func:`relation_subset_of_order`).
    """
    arcs = list(relation)
    arc_set = set(arcs)

    def position(node: int) -> int:
        return order_rank[node]

    for n1, n2 in arcs:
        if position(n1) > position(n2):
            continue
        for n0, n3 in arcs:
            if position(n0) < position(n1) and position(n2) < position(n3):
                if (n0, n2) not in arc_set:
                    return XPropertyViolation(n0, n1, n2, n3, (n0, n2))
    return None


def relation_subset_of_order(
    relation: Iterable[Pair], order_rank: Sequence[int] | dict[int, int]
) -> bool:
    """Is every arc (u, v) of the relation such that u <= v in the order?"""
    return all(order_rank[u] <= order_rank[v] for u, v in relation)


def axis_subset_of_order(tree: Tree, axis: Axis, order: Order) -> bool:
    """Check the inclusions listed at the start of Section 4 on a tree."""
    return relation_subset_of_order(materialise(tree, axis), rank(tree, order))
